"""Benchmark: regenerate Table 11 (systolic-array area breakdown at 22 nm)."""

from repro.experiments.tables_area import run_table11


def test_bench_table11_systolic_area(benchmark):
    result = benchmark(run_table11)
    ratios = result.ratios()
    benchmark.extra_info["area_ratios"] = ratios
    # Paper Table 11: the PEs dominate (96.3%); decoders are ~2.2% and ~1.5%.
    assert ratios["4-bit PE"] > 0.9
    assert ratios["4-bit decoder"] < 0.05
    assert ratios["8-bit decoder"] < 0.05
