"""Benchmark: draft-model speculative decoding vs plain greedy decode.

What is pinned
--------------
The pinned quantities are **deterministic** (seeded models, seeded prompts,
greedy decode), so this benchmark cannot flake on shared CI runners:

* **exactness** — the speculative token streams are identical to the
  non-speculative streams, request for request;
* **acceptance** — the draft's proposals are accepted at a rate ≥ 0.6;
* **modeled decode throughput** — ≥ 1.3× fewer target decode rounds per
  generated token.  On the paper's weight-streaming accelerator each decode
  round streams the packed target weights from DRAM once, so rounds/token is
  the memory-bound decode-throughput proxy this repo's methodology models
  (the same convention as the DRAM-byte accounting in ``repro.serve.stats``
  and the Fig. 9/10 simulators).  The draft adds **zero packed weight
  bytes**: it is the target's layer prefix, its packed streams are
  byte-identical subsets of the target's (asserted below), and its per-round
  reads reuse the round's resident weight working set.

Wall-clock numbers are also measured and reported (``extra_info`` and the
``BENCH_serve.json`` trajectory) but not pinned: at the zoo's hidden-64
scale, NumPy per-call overhead — not weight bandwidth — dominates a round,
which caps what any speculation scheme can show in wall time here.
"""

import time

import numpy as np

from repro.serve import (
    ContinuousBatchingScheduler,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    SpeculativeConfig,
    SpeculativeDecoder,
    WorkloadFamily,
)
from repro.serve.stats import ServingStats

MODEL = "gpt2-xl"
VOCAB = 96
NUM_SLOTS = 8
NUM_REQUESTS = 24       # 3× the slots: retired slots refill mid-flight
SEQ_LEN = 8
NEW_TOKENS = 48
CACHE = KVCacheConfig(bits=4, page_size=32, prefix_sharing=False)
SPEC = SpeculativeConfig(
    num_speculative_tokens=2,
    first_margin_threshold=2.0,
    margin_threshold=3.0,
)

MIN_STREAM_SPEEDUP = 1.3
MIN_ACCEPTANCE = 0.6


def _requests(seed=123):
    rng = np.random.default_rng(seed)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=SEQ_LEN),
            sampling=SamplingParams(max_new_tokens=NEW_TOKENS),
        )
        for _ in range(NUM_REQUESTS)
    ]


def _drain(repository, speculative=None):
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=NUM_SLOTS,
        cache_config=CACHE,
        stats=stats,
        speculative=speculative,
    )
    ids = [scheduler.submit(request) for request in _requests()]
    start = time.perf_counter()
    outputs = {r.request_id: list(r.output.token_ids) for r in scheduler.run_until_idle()}
    elapsed = time.perf_counter() - start
    return [outputs[request_id] for request_id in ids], stats.summary(), elapsed


def test_bench_speculative_decode(run_once, best_of, benchmark, serve_trajectory):
    repository = ModelRepository(bits=4, seed=0)
    target = repository.get(MODEL, WorkloadFamily.LM)
    decoder = SpeculativeDecoder(repository, SPEC, target_cache_config=CACHE)
    decoder.warm(MODEL)  # pack the draft + calibrate heads outside the timers
    draft = repository.get(f"{MODEL}@draft{SPEC.draft_layers}", WorkloadFamily.LM)

    # The draft streams no new packed bytes: every draft weight stream is a
    # byte-identical subset of the target's packed streams.
    assert set(draft.packed_weights) <= set(target.packed_weights)
    for name, stream in draft.packed_weights.items():
        np.testing.assert_array_equal(stream.data, target.packed_weights[name].data)

    plain_tokens, plain_summary, _ = _drain(repository)
    spec_tokens, spec_summary, _ = _drain(repository, speculative=decoder)

    # Exactness: speculative greedy decode is token-for-token the plain decode.
    assert spec_tokens == plain_tokens

    acceptance = spec_summary.draft_acceptance_rate
    assert acceptance >= MIN_ACCEPTANCE, (
        f"draft acceptance {acceptance:.3f} below {MIN_ACCEPTANCE}"
    )

    # Modeled weight-streaming decode throughput: one packed-target stream
    # per decode round, identical tokens generated on both sides.
    plain_rounds = plain_summary.decode_rounds
    spec_rounds = spec_summary.decode_rounds
    stream_speedup = plain_rounds / spec_rounds
    assert stream_speedup >= MIN_STREAM_SPEEDUP, (
        f"speculative decode used {spec_rounds} rounds vs {plain_rounds} "
        f"plain ({stream_speedup:.2f}x); needs ≥ {MIN_STREAM_SPEEDUP}x"
    )

    # Wall-clock (informational): best-of adjacent pairs, like bench_sampling.
    pairs = []
    for repeat in range(3):
        if repeat % 2 == 0:
            plain_s = best_of(lambda: _drain(repository), 1)
            spec_s = best_of(lambda: _drain(repository, speculative=decoder), 1)
        else:
            spec_s = best_of(lambda: _drain(repository, speculative=decoder), 1)
            plain_s = best_of(lambda: _drain(repository), 1)
        pairs.append((spec_s / plain_s, plain_s, spec_s))
    _, plain_seconds, spec_seconds = min(pairs)

    run_once(_drain, repository, decoder)
    generated = spec_summary.generated_tokens
    numbers = {
        "generated_tokens": generated,
        "draft_acceptance_rate": round(acceptance, 4),
        "draft_proposed_tokens": spec_summary.draft_proposed_tokens,
        "draft_accepted_tokens": spec_summary.draft_accepted_tokens,
        "plain_decode_rounds": plain_rounds,
        "speculative_decode_rounds": spec_rounds,
        "weight_stream_speedup": round(stream_speedup, 3),
        "target_packed_kib": round(target.packed_bytes / 1024, 1),
        "draft_packed_kib": round(draft.packed_bytes / 1024, 1),
        "plain_wall_ms": round(plain_seconds * 1e3, 1),
        "speculative_wall_ms": round(spec_seconds * 1e3, 1),
        "wall_ratio": round(plain_seconds / spec_seconds, 3),
    }
    benchmark.extra_info.update(numbers)
    serve_trajectory("speculative", **numbers)
