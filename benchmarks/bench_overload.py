"""Benchmark: overload resilience — bounded admission beats FIFO collapse.

Offered load is pinned at 2x slot capacity: a wave of long batch-class
requests saturates every slot, then short interactive requests arrive
mid-overload.  The unbounded FIFO baseline makes the interactive tail
wait behind the whole batch backlog; the resilient configuration (bounded
queue + priority admission + preemption) admits them immediately, at the
cost of shedding/queueing some batch traffic.

The headline number is **high-priority SLO attainment** — the fraction of
interactive requests finishing within an adaptive latency target derived
from the warm solo latency of the same request shape.  The acceptance
bar: attainment with the resilient policy strictly exceeds the unbounded
FIFO baseline under identical offered load, and the trajectory lands in
``BENCH_serve.json`` for the regression watchdog.
"""

import numpy as np

from repro.serve import (
    AdmissionPolicy,
    ContinuousBatchingScheduler,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    QueueFullError,
    SamplingParams,
    ServingStats,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
VOCAB = 96
NUM_SLOTS = 6
BATCH_REQUESTS = 8         # long jobs saturate every slot plus a backlog
INTERACTIVE_REQUESTS = 4   # arrive mid-overload; 12 offered over 6 slots = 2x
BATCH_TOKENS = 16
INTERACTIVE_TOKENS = 4
MAX_QUEUE_DEPTH = 6        # the resilient bound: excess batch load is shed


def _repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


def _cache_config():
    return KVCacheConfig(bits=4, page_size=8, prefix_sharing=True)


def _request(rng, slo_class, max_new_tokens):
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        rng.integers(0, VOCAB, size=12),
        sampling=SamplingParams(max_new_tokens=max_new_tokens, seed=0),
        slo_class=slo_class,
    )


def _offered_load(seed):
    rng = np.random.default_rng(seed)
    batch = [_request(rng, "batch", BATCH_TOKENS) for _ in range(BATCH_REQUESTS)]
    interactive = [
        _request(rng, "interactive", INTERACTIVE_TOKENS)
        for _ in range(INTERACTIVE_REQUESTS)
    ]
    return batch, interactive


def _drain(scheduler, limit=600):
    results = []
    for _ in range(limit):
        if not len(scheduler):
            return results
        results.extend(scheduler.step())
    raise AssertionError("overload scenario did not drain")


def _solo_latency(repository):
    """Warm per-request latency of the interactive shape with idle slots."""
    scheduler = ContinuousBatchingScheduler(
        repository, num_slots=NUM_SLOTS, cache_config=_cache_config()
    )
    rng = np.random.default_rng(99)
    latencies = []
    for _ in range(3):
        request = _request(rng, "interactive", INTERACTIVE_TOKENS)
        scheduler.submit(request)
        latencies.append(_drain(scheduler)[0].latency)
    return min(latencies)


def _run_overload(repository, admission, seed=7):
    """One overload wave; returns (interactive latencies, counters)."""
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=NUM_SLOTS,
        cache_config=_cache_config(),
        stats=stats,
        admission=admission,
    )
    batch, interactive = _offered_load(seed)
    rejected = 0
    for request in batch:
        try:
            scheduler.submit(request)
        except QueueFullError:
            rejected += 1
    # Saturate the slots before the interactive wave lands mid-overload.
    scheduler.step()
    for request in interactive:
        try:
            scheduler.submit(request)
        except QueueFullError:
            rejected += 1
    results = {r.request_id: r for r in _drain(scheduler)}
    latencies = [
        results[r.request_id].latency
        for r in interactive
        if r.request_id in results
    ]
    counters = {
        "rejected": rejected,
        "preempted": scheduler.preempted,
        "deadline_expired": scheduler.deadline_expired,
        "finished": len(results),
    }
    return latencies, counters


def _attainment(latencies, target, offered):
    within = sum(1 for latency in latencies if latency <= target)
    return within / offered


def test_bench_overload_bounded_priority_beats_fifo(
    run_once, benchmark, serve_trajectory
):
    repository = _repository()
    solo = _solo_latency(repository)
    # Adaptive target: headroom over the warm solo latency, so the bar
    # tracks machine speed instead of hard-coding milliseconds.  Under FIFO
    # the interactive wave waits out the whole 16-token batch generation
    # before a slot frees, far past any small multiple of solo latency.
    target = solo * 4.0

    fifo_latencies, fifo_counters = run_once(_run_overload, repository, None)
    resilient_policy = AdmissionPolicy(
        max_queue_depth=MAX_QUEUE_DEPTH,
        class_priority={"interactive": 10, "batch": 0},
        preempt=True,
    )
    resilient_latencies, resilient_counters = _run_overload(
        repository, resilient_policy
    )

    fifo_attainment = _attainment(fifo_latencies, target, INTERACTIVE_REQUESTS)
    resilient_attainment = _attainment(
        resilient_latencies, target, INTERACTIVE_REQUESTS
    )

    serve_trajectory(
        "overload",
        offered_over_capacity=(BATCH_REQUESTS + INTERACTIVE_REQUESTS) / NUM_SLOTS,
        solo_latency_ms=round(solo * 1e3, 3),
        target_latency_ms=round(target * 1e3, 3),
        high_attainment_fifo=round(fifo_attainment, 3),
        high_attainment_resilient=round(resilient_attainment, 3),
        preemptions=resilient_counters["preempted"],
        rejected=resilient_counters["rejected"],
    )
    benchmark.extra_info.update(
        {
            "fifo_attainment": fifo_attainment,
            "resilient_attainment": resilient_attainment,
            "fifo_counters": fifo_counters,
            "resilient_counters": resilient_counters,
        }
    )

    # Every interactive request finished somewhere (FIFO never rejects).
    assert len(fifo_latencies) == INTERACTIVE_REQUESTS
    assert fifo_counters["finished"] == BATCH_REQUESTS + INTERACTIVE_REQUESTS
    # The mechanisms actually engaged — the win is causal, not incidental:
    # the bounded queue shed excess batch load, and the interactive wave
    # preempted running batch slots instead of waiting behind them.
    assert resilient_counters["rejected"] > 0
    assert resilient_counters["preempted"] > 0
    # The acceptance bar: bounded + priority + preempt strictly beats FIFO
    # on high-priority attainment under identical 2x-capacity offered load.
    assert resilient_attainment > fifo_attainment, (
        f"resilient {resilient_attainment:.2f} must beat FIFO "
        f"{fifo_attainment:.2f} (target {target * 1e3:.1f} ms)"
    )
    assert resilient_attainment == 1.0
