"""Benchmark: regenerate Fig. 9 (GPU speedup and energy vs ANT, int8, GOBO)."""

from repro.experiments.fig9_gpu import run_fig9


def test_bench_fig9_gpu_speedup(benchmark):
    result = benchmark(run_fig9)
    speedups = result.speedups["geomean"]
    energies = result.energies["geomean"]
    benchmark.extra_info["geomean_speedup"] = speedups
    benchmark.extra_info["geomean_energy"] = energies
    # Paper Fig. 9: OliVe is the fastest and most energy-efficient design.
    assert speedups["olive"] > speedups["ant"] > speedups["gobo"]
    assert speedups["olive"] > speedups["int8"]
    assert energies["olive"] < energies["ant"] < energies["gobo"]
    assert energies["olive"] < energies["int8"]
    assert speedups["olive"] > 3.0
    assert energies["olive"] < 0.35
