"""Benchmark: regenerate Table 8 (SQuAD F1/EM under PTQ)."""

from repro.experiments.table8_squad import run_table8


def test_bench_table8_squad(run_once, benchmark):
    result = run_once(run_table8, models=("bert-base",), num_examples=32)
    benchmark.extra_info["scores"] = {
        f"{m}/{v}": s for (m, v), s in result.scores.items()
    }
    rows = list(result.scores.values())
    fp32_f1 = sum(r["fp32"][0] for r in rows) / len(rows)
    olive_f1 = sum(r["olive-4bit"][0] for r in rows) / len(rows)
    os6_f1 = sum(r["os-6bit"][0] for r in rows) / len(rows)
    # Paper Table 8: 4-bit OliVe is competitive with 6-bit Outlier Suppression
    # (better on the real checkpoints; within a few points on the fragile
    # span-argmax analogue) and both trail full precision.
    assert olive_f1 >= os6_f1 - 15.0
    assert fp32_f1 > olive_f1 > 30.0
