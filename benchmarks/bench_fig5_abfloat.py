"""Benchmark: regenerate Fig. 5 (abfloat configuration study)."""

from repro.experiments.fig5_abfloat_error import run_fig5


def test_bench_fig5_abfloat_rounding_error(run_once, benchmark):
    result = run_once(run_fig5)
    benchmark.extra_info["errors"] = result.errors
    # Paper Fig. 5: E2M1 gives the least error, motivating its adoption.
    assert result.best_overall() == "E2M1"
