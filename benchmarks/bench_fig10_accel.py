"""Benchmark: regenerate Fig. 10 (accelerator speedup and energy vs ANT, OLAccel, AdaFloat)."""

from repro.experiments.fig10_accel import run_fig10


def test_bench_fig10_accelerator_speedup(benchmark):
    result = benchmark(run_fig10)
    speedups = result.speedups["geomean"]
    energies = result.energies["geomean"]
    benchmark.extra_info["geomean_speedup"] = speedups
    benchmark.extra_info["geomean_energy"] = energies
    # Paper Fig. 10: OliVe ~4-5x over AdaFloat; ANT/OLAccel only marginally better.
    assert speedups["olive"] > 3.0
    assert 1.0 < speedups["ant"] < 2.0
    assert 1.0 < speedups["olaccel"] < 2.0
    assert energies["olive"] < energies["olaccel"] < energies["adafloat"]
