"""Benchmark: OVP-paged KV caches, incremental decode, continuous batching.

Three perf/memory properties guard the LM serving stack:

* incremental decode through a packed KV cache must beat full-prefix
  recomputation on long-prefix generation;
* a (mostly sealed) 4-bit OVP cache must be at least 4x smaller than the
  fp32 cache holding the same tokens;
* slot-level continuous batching must sustain higher generation throughput
  than whole-batch release on a mixed-length request stream.
"""

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    ServingEngine,
    WorkloadFamily,
)
from repro.serve.kvcache import cache_for_model

MODEL = "gpt2-xl"


def _generate_full_recompute(model, prompt, new_tokens):
    tokens = list(prompt)
    for _ in range(new_tokens):
        log_probs = model.log_probs(np.asarray(tokens)[None])[0, -1]
        tokens.append(int(np.argmax(log_probs)))
    return tokens[len(prompt):]


def _generate_incremental(model, prompt, new_tokens, config):
    cache = cache_for_model(model, config)
    log_probs = model.log_probs_incremental(np.asarray(prompt)[None], [cache])
    tokens = [int(np.argmax(log_probs[0, -1]))]
    for _ in range(new_tokens - 1):
        log_probs = model.log_probs_incremental(np.array([[tokens[-1]]]), [cache])
        tokens.append(int(np.argmax(log_probs[0, -1])))
    return tokens, cache


def test_bench_incremental_decode_beats_full_recompute(run_once, best_of, benchmark):
    repository = ModelRepository(bits=4)
    model = repository.get(MODEL, WorkloadFamily.LM).model
    prompt = np.random.default_rng(0).integers(0, 96, size=24)
    new_tokens = 32  # long prefix: sequence grows to 56 of 64 positions
    config = KVCacheConfig(bits=4, page_size=8)

    full_seconds = best_of(
        lambda: _generate_full_recompute(model, prompt, new_tokens), repeats=3
    )
    incremental_seconds = best_of(
        lambda: _generate_incremental(model, prompt, new_tokens, config), repeats=3
    )
    packed_tokens, cache = run_once(
        _generate_incremental, model, prompt, new_tokens, config
    )
    # The fp32-mode cache must reproduce full recompute token for token.
    fp_tokens, _ = _generate_incremental(
        model, prompt, new_tokens, KVCacheConfig(quantize=False)
    )
    assert fp_tokens == _generate_full_recompute(model, prompt, new_tokens)
    assert len(packed_tokens) == new_tokens

    speedup = full_seconds / incremental_seconds
    benchmark.extra_info.update(
        {
            "full_recompute_ms": round(full_seconds * 1e3, 2),
            "incremental_ms": round(incremental_seconds * 1e3, 2),
            "incremental_speedup": round(speedup, 2),
            "final_seq_len": int(cache.seq_len),
        }
    )
    assert speedup > 1.3, f"incremental decode only {speedup:.2f}x faster"


def test_bench_packed_cache_4x_smaller_than_fp32(run_once, benchmark):
    repository = ModelRepository(bits=4)
    model = repository.get(MODEL, WorkloadFamily.LM).model
    prompt = np.random.default_rng(1).integers(0, 96, size=32)
    config = KVCacheConfig(bits=4, page_size=8)

    # 32 prompt + 24 fed tokens = 56 cached steps = 7 fully sealed pages.
    _, cache = run_once(_generate_incremental, model, prompt, 25, config)
    summary = cache.memory_summary()
    compression = cache.compression_ratio
    benchmark.extra_info.update(
        {
            "kv_fp32_bytes": summary["kv_fp32_bytes"],
            "kv_cache_bytes": summary["kv_cache_bytes"],
            "kv_compression": round(compression, 2),
            "sealed_pages": summary["sealed_pages"],
        }
    )
    # 56 cached steps: 56 sealed (page 8) at 0.5 B/elem -> 8x; the bound
    # asserts >= 4x so a partially open page never flakes the build.
    assert summary["kv_cache_bytes"] * 4 <= summary["kv_fp32_bytes"], (
        f"packed KV cache only {compression:.2f}x smaller than fp32"
    )


def test_bench_continuous_beats_whole_batch_release(
    run_once, best_of, benchmark, serve_trajectory
):
    # Mixed-length stream: every wave of short generations rides with one
    # straggler, the worst case for whole-batch release.
    gens = [48, 4, 4, 4] * 4
    rng = np.random.default_rng(2)
    prompts = [rng.integers(0, 96, size=8) for _ in gens]
    repository = ModelRepository(bits=4)
    repository.get(MODEL, WorkloadFamily.LM)
    kv_config = KVCacheConfig(bits=4, page_size=8)

    def requests():
        return [
            InferenceRequest(MODEL, WorkloadFamily.LM, p, max_new_tokens=g)
            for p, g in zip(prompts, gens)
        ]

    continuous = ServingEngine(
        repository=repository, max_batch_size=4, max_wait=0.0,
        kv_cache_config=kv_config,
    )
    whole_batch = ServingEngine(
        repository=repository, max_batch_size=4, max_wait=0.0,
        kv_cache_config=kv_config, continuous_batching=False,
    )
    continuous_seconds = best_of(lambda: continuous.serve(requests()), repeats=3)
    whole_seconds = best_of(lambda: whole_batch.serve(requests()), repeats=3)
    results = run_once(continuous.serve, requests())

    generated = sum(len(r.output["generated_tokens"]) for r in results)
    assert generated == sum(gens)
    continuous_tps = generated / continuous_seconds
    whole_tps = generated / whole_seconds
    summary = continuous.stats.summary()
    benchmark.extra_info.update(
        {
            "continuous_tokens_per_s": round(continuous_tps, 0),
            "whole_batch_tokens_per_s": round(whole_tps, 0),
            "continuous_speedup": round(continuous_tps / whole_tps, 2),
            "mean_slot_occupancy": round(summary.mean_slot_occupancy, 3),
            "kv_compression_at_peak": round(summary.kv_compression, 2),
        }
    )
    serve_trajectory(
        "continuous_batching",
        tokens_per_second=round(continuous_tps, 0),
        whole_batch_tokens_per_second=round(whole_tps, 0),
        pool_hit_rate=round(summary.pool_hit_rate, 4),
        mean_slot_occupancy=round(summary.mean_slot_occupancy, 3),
    )
    assert continuous_tps > whole_tps, (
        f"continuous batching {continuous_tps:.0f} tok/s did not beat "
        f"whole-batch release {whole_tps:.0f} tok/s"
    )
