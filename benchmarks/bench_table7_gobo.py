"""Benchmark: regenerate Table 7 (weight-only comparison against GOBO)."""

from repro.experiments.table7_gobo import run_table7


def test_bench_table7_weight_only(run_once, benchmark):
    result = run_once(run_table7, tasks=("MNLI",), num_examples=48)
    benchmark.extra_info["scores"] = result.scores
    scores = result.scores["MNLI"]
    # Both weight-only schemes stay close to full precision on MNLI.
    assert scores["olive-4bit-weights"] > scores["fp32"] - 10
    assert scores["gobo"] > scores["fp32"] - 10
