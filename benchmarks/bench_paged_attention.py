"""Benchmark: decode-once page pool, prefix-shared prefill, bucketed attend.

Three perf properties guard the paged-attention decode hot path:

* a decode round over long cached histories must be ≥2× faster with the
  page pool's decoded-page LRU than the re-decode-every-round baseline
  (``pool_decoded_mb=0``) at 256+ cached tokens per slot;
* prefix-shared prefill of a common prompt must be ≥1.5× faster than cold
  prefill (the shared pages attach instead of re-running the model);
* the length-bucketed ragged attend must be no slower than the single-bucket
  padded attend on uniform lengths and faster on mixed lengths.

Every comparison also checks the fast path is *equivalent*: pool reuse is
bitwise identical, prefix sharing reproduces the cold path's greedy tokens,
and the bucketed kernel matches the padded oracle's outputs.
"""

import numpy as np

from repro.nn.attention import AttendScratch, MultiHeadAttention, attend_padding_waste
from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    WorkloadFamily,
)
from repro.serve.kvcache import LayerKVCache
from repro.serve.scheduler import ContinuousBatchingScheduler

MODEL = "gpt2-xl"
HEADS, DIM = 8, 32


def _filled_caches(lengths, config, rng):
    """One standalone layer cache per slot, sealed to the requested lengths."""
    caches = []
    for length in lengths:
        cache = LayerKVCache(HEADS, DIM, config)
        kv = rng.normal(size=(2, HEADS, length, DIM))
        cache.append(kv[0], kv[1])
        caches.append(cache)
    return caches


def test_bench_pool_decode_reuse_2x_over_redecode(
    run_once, best_of, benchmark, serve_trajectory
):
    """Decode rounds with the decoded-page LRU vs re-decoding every round."""
    lengths = [288, 288, 288, 288]  # 256+ cached tokens per slot, fully sealed
    rounds = 8

    def run(pool_decoded_mb):
        rng = np.random.default_rng(0)
        config = KVCacheConfig(bits=4, page_size=16, pool_decoded_mb=pool_decoded_mb)
        caches = _filled_caches(lengths, config, rng)

        def decode_rounds():
            for _ in range(rounds):
                kvs = LayerKVCache.kv_many(caches)
            return kvs

        seconds = best_of(decode_rounds, repeats=3)
        return seconds, decode_rounds(), caches

    pooled_seconds, pooled_kvs, pooled_caches = run(pool_decoded_mb=64.0)
    baseline_seconds, baseline_kvs, baseline_caches = run(pool_decoded_mb=0.0)
    # Equivalence: the cached decode must be bitwise what a fresh decode gives.
    for (k_a, v_a), (k_b, v_b) in zip(pooled_kvs, baseline_kvs):
        np.testing.assert_array_equal(k_a, k_b)
        np.testing.assert_array_equal(v_a, v_b)
    assert pooled_caches[0].pool.decode_hits > 0
    assert baseline_caches[0].pool.decode_hits == 0
    run_once(LayerKVCache.kv_many, pooled_caches)

    speedup = baseline_seconds / pooled_seconds
    cached_tokens = sum(lengths)
    benchmark.extra_info.update(
        {
            "cached_tokens": cached_tokens,
            "redecode_ms": round(baseline_seconds * 1e3, 2),
            "pooled_ms": round(pooled_seconds * 1e3, 2),
            "pool_speedup": round(speedup, 2),
        }
    )
    serve_trajectory(
        "pool_decode",
        cached_tokens=cached_tokens,
        pool_speedup=round(speedup, 2),
    )
    assert speedup >= 2.0, f"page pool only {speedup:.2f}x over re-decode"


def test_bench_prefix_shared_prefill_1_5x_over_cold(
    run_once, best_of, benchmark, serve_trajectory
):
    """Admitting a known prompt attaches sealed pages instead of re-prefilling."""
    repository = ModelRepository(bits=4)
    repository.get(MODEL, WorkloadFamily.LM)
    prompt = np.random.default_rng(1).integers(0, 96, size=60)

    def request():
        return InferenceRequest(MODEL, WorkloadFamily.LM, prompt, max_new_tokens=2)

    def make_scheduler(prefix_sharing):
        return ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=KVCacheConfig(
                bits=4, page_size=8, prefix_sharing=prefix_sharing
            ),
        )

    warm = make_scheduler(prefix_sharing=True)
    warm.submit(request())
    warm_tokens = warm.run_until_idle()[0].output["generated_tokens"]

    def serve_one(scheduler):
        scheduler.submit(request())
        return scheduler.run_until_idle()[0]

    cold = make_scheduler(prefix_sharing=False)
    shared_seconds = best_of(lambda: serve_one(warm), repeats=5)
    cold_seconds = best_of(lambda: serve_one(cold), repeats=5)

    # Equivalence: the shared path generates the cold path's greedy tokens.
    shared_result = run_once(serve_one, warm)
    cold_result = serve_one(cold)
    assert shared_result.output["generated_tokens"] == warm_tokens
    assert shared_result.output["generated_tokens"] == cold_result.output["generated_tokens"]
    # 60-token prompt, page 8: 7 pages = 56 tokens attach, 4 prefill.
    assert shared_result.output["kv_cache"]["prefix_shared_tokens"] == 56

    speedup = cold_seconds / shared_seconds
    benchmark.extra_info.update(
        {
            "prompt_tokens": int(prompt.size),
            "cold_prefill_ms": round(cold_seconds * 1e3, 2),
            "shared_prefill_ms": round(shared_seconds * 1e3, 2),
            "prefix_speedup": round(speedup, 2),
        }
    )
    serve_trajectory("prefix_sharing", prefix_speedup=round(speedup, 2))
    assert speedup >= 1.5, f"prefix-shared prefill only {speedup:.2f}x over cold"


def test_bench_bucketed_attend_vs_padded(run_once, best_of, benchmark, serve_trajectory):
    """Bucketed ragged attend: ~free on uniform lengths, faster on mixed."""
    mha = MultiHeadAttention(HEADS * DIM, HEADS, rng=np.random.default_rng(2))
    layers_per_round = 4

    def kernel_seconds(lengths, mode):
        # Fresh fixed-seed rng per call: both kernels see identical K/V and q.
        rng = np.random.default_rng(3)
        config = KVCacheConfig(quantize=False, page_size=16)
        caches = _filled_caches(lengths, config, rng)
        kvs = LayerKVCache.kv_many(caches)
        q = rng.normal(size=(len(lengths), HEADS, 1, DIM))

        def run():
            scratch = AttendScratch()  # one per round, shared across layers
            for _ in range(layers_per_round):
                if mode == "padded":
                    out = mha._padded_attend(q, kvs, lengths)
                else:
                    out = mha._bucketed_attend(q, kvs, lengths, scratch=scratch)
            return out

        return best_of(run, repeats=5), run()

    uniform = [384] * 8
    mixed = [16] * 6 + [384] * 2

    uniform_padded_s, uniform_padded = kernel_seconds(uniform, "padded")
    uniform_bucketed_s, uniform_bucketed = kernel_seconds(uniform, "bucketed")
    mixed_padded_s, mixed_padded = kernel_seconds(mixed, "padded")
    mixed_bucketed_s, mixed_bucketed = kernel_seconds(mixed, "bucketed")

    # Equivalence: same attended outputs (and the same winner per slot/head).
    np.testing.assert_allclose(uniform_bucketed, uniform_padded, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(mixed_bucketed, mixed_padded, rtol=1e-9, atol=1e-12)
    np.testing.assert_array_equal(
        mixed_bucketed.argmax(axis=-1), mixed_padded.argmax(axis=-1)
    )

    padded_waste, bucketed_waste = attend_padding_waste(mixed)
    mixed_speedup = mixed_padded_s / mixed_bucketed_s
    uniform_ratio = uniform_bucketed_s / uniform_padded_s
    benchmark.extra_info.update(
        {
            "uniform_padded_ms": round(uniform_padded_s * 1e3, 3),
            "uniform_bucketed_ms": round(uniform_bucketed_s * 1e3, 3),
            "mixed_padded_ms": round(mixed_padded_s * 1e3, 3),
            "mixed_bucketed_ms": round(mixed_bucketed_s * 1e3, 3),
            "mixed_speedup": round(mixed_speedup, 2),
            "padded_waste_fraction": round(padded_waste, 4),
            "bucketed_waste_fraction": round(bucketed_waste, 4),
        }
    )
    serve_trajectory(
        "bucketed_attend",
        mixed_speedup=round(mixed_speedup, 2),
        padded_waste_fraction=round(padded_waste, 4),
        bucketed_waste_fraction=round(bucketed_waste, 4),
    )
    # Uniform lengths collapse to one identical GEMM; allow scheduling noise.
    assert uniform_ratio <= 1.15, (
        f"bucketed attend {uniform_ratio:.2f}x slower on uniform lengths"
    )
    assert mixed_speedup > 1.0, (
        f"bucketed attend {mixed_speedup:.2f}x did not beat padded on mixed lengths"
    )
    assert bucketed_waste < padded_waste

    rng = np.random.default_rng(3)
    config = KVCacheConfig(quantize=False, page_size=16)
    caches = _filled_caches(mixed, config, rng)
    kvs = LayerKVCache.kv_many(caches)
    q = rng.normal(size=(len(mixed), HEADS, 1, DIM))
    run_once(mha._bucketed_attend, q, kvs, mixed)
