"""Benchmark: telemetry overhead and the traced-round phase breakdown.

Two perf properties guard the observability layer:

* **off means free** — serving with a disabled tracer (the instrumented hot
  path hitting ``tracer.enabled`` checks and the shared null span) must stay
  within 2% of serving with no tracer argument at all (``NULL_TRACER``);
* **on means cheap** — the fully-enabled tracer's overhead on a speculative
  serving run is reported informationally, and its phase report must name at
  least 90% of where the round wall-clock went (the report is useless if
  most of the round is unattributed).

The enabled run's phase breakdown is attached to ``BENCH_serve.json`` via the
``serve_phase_report`` fixture, so CI archives the round profile alongside
the throughput trajectory.
"""

import json

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
    Tracer,
    WorkloadFamily,
    validate_chrome_trace,
)

MODEL = "gpt2-xl"
VOCAB = 96

SPEC = SpeculativeConfig(
    num_speculative_tokens=2,
    calibration_sequences=6,
    calibration_tokens=12,
    calibration_prompt_len=4,
)


def lm_requests(seed, count=4, seq_len=8, max_new_tokens=12):
    rng = np.random.default_rng(seed)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
        )
        for _ in range(count)
    ]


def make_engine(repository, tracer=None):
    engine = ServingEngine(
        repository,
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=16),
        speculative=SPEC,
        tracer=tracer,
    )
    return engine


def test_bench_disabled_tracer_is_free(run_once, best_of, benchmark, serve_trajectory):
    """Serving with ``Tracer(enabled=False)`` must match no-tracer serving.

    Every instrumented call site pays only an ``enabled`` attribute check on
    the null path, so the regression budget is 2% (best-of-N paired runs on
    one warmed repository absorb machine noise).
    """
    repository = ModelRepository(bits=4, seed=0)
    absent = make_engine(repository)
    disabled = make_engine(repository, tracer=Tracer(enabled=False))
    for engine in (absent, disabled):
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.warm_speculative(MODEL)
        engine.serve(lm_requests(0))  # warm pools, caches, code paths

    absent_seconds = best_of(lambda: absent.serve(lm_requests(1)), repeats=9)
    disabled_seconds = best_of(lambda: disabled.serve(lm_requests(1)), repeats=9)
    ratio = disabled_seconds / absent_seconds

    results = run_once(disabled.serve, lm_requests(2))
    assert len(results) == 4
    assert disabled.tracer.num_spans == 0  # recorded nothing
    assert disabled.chrome_trace()["traceEvents"] == []

    benchmark.extra_info.update(
        {
            "absent_ms": round(absent_seconds * 1e3, 2),
            "disabled_ms": round(disabled_seconds * 1e3, 2),
            "disabled_over_absent": round(ratio, 4),
        }
    )
    serve_trajectory(
        "telemetry",
        disabled_over_absent=round(ratio, 4),
        absent_ms=round(absent_seconds * 1e3, 2),
        disabled_ms=round(disabled_seconds * 1e3, 2),
    )
    assert ratio <= 1.02, (
        f"disabled tracer costs {ratio:.3f}x over no tracer (budget 1.02x)"
    )


def test_bench_enabled_tracer_overhead_and_coverage(
    run_once, best_of, benchmark, serve_trajectory, serve_phase_report
):
    """Enabled-tracer overhead (informational) + phase-report coverage gate."""
    repository = ModelRepository(bits=4, seed=0)
    baseline = make_engine(repository)
    tracer = Tracer()
    traced = make_engine(repository, tracer=tracer)
    for engine in (baseline, traced):
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.warm_speculative(MODEL)
        engine.serve(lm_requests(0))

    baseline_seconds = best_of(lambda: baseline.serve(lm_requests(3)), repeats=5)

    def traced_serve():
        tracer.reset()
        traced.serve(lm_requests(3))

    enabled_seconds = best_of(traced_serve, repeats=5)
    enabled_ratio = enabled_seconds / baseline_seconds

    tracer.reset()
    results = run_once(traced.serve, lm_requests(4))
    assert [r.output.finish_reason for r in results] == ["length"] * 4

    report = traced.phase_report()
    assert report.rounds > 0
    assert report.coverage >= 0.9, (
        f"phase report names only {report.coverage:.1%} of the round wall"
    )
    counts = validate_chrome_trace(json.dumps(traced.chrome_trace()))
    assert counts["B"] == counts["E"] > 0

    benchmark.extra_info.update(
        {
            "enabled_over_absent": round(enabled_ratio, 3),
            "enabled_ms": round(enabled_seconds * 1e3, 2),
            "spans_per_serve": tracer.num_spans,
            "phase_coverage": round(report.coverage, 4),
            "round_ms": round(report.round_ms, 2),
        }
    )
    serve_trajectory(
        "telemetry",
        enabled_over_absent=round(enabled_ratio, 3),
        spans_per_serve=tracer.num_spans,
        phase_coverage=round(report.coverage, 4),
    )
    serve_phase_report("telemetry", report)
