"""Benchmark: telemetry overhead and the traced-round phase breakdown.

Two perf properties guard the observability layer:

* **off means free** — serving with a disabled tracer (the instrumented hot
  path hitting ``tracer.enabled`` checks and the shared null span) must stay
  within 2% of serving with no tracer argument at all (``NULL_TRACER``);
* **on means cheap** — the fully-enabled tracer's overhead on a speculative
  serving run is reported informationally, and its phase report must name at
  least 90% of where the round wall-clock went (the report is useless if
  most of the round is unattributed).

The enabled run's phase breakdown is attached to ``BENCH_serve.json`` via the
``serve_phase_report`` fixture, so CI archives the round profile alongside
the throughput trajectory.
"""

import json

import numpy as np

from repro.serve import (
    HealthConfig,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    ServingEngine,
    SLOClass,
    SpeculativeConfig,
    Tracer,
    WorkloadFamily,
    validate_chrome_trace,
)

MODEL = "gpt2-xl"
VOCAB = 96

SPEC = SpeculativeConfig(
    num_speculative_tokens=2,
    calibration_sequences=6,
    calibration_tokens=12,
    calibration_prompt_len=4,
)


def lm_requests(seed, count=4, seq_len=8, max_new_tokens=12):
    rng = np.random.default_rng(seed)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
        )
        for _ in range(count)
    ]


def make_engine(repository, tracer=None):
    engine = ServingEngine(
        repository,
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=16),
        speculative=SPEC,
        tracer=tracer,
    )
    return engine


def test_bench_disabled_tracer_is_free(run_once, paired_ratio, benchmark, serve_trajectory):
    """Serving with ``Tracer(enabled=False)`` must match no-tracer serving.

    Every instrumented call site pays only an ``enabled`` attribute check on
    the null path, so the regression budget is 2%.  Both engines also run
    with the health layer at its default (``health=None``), so the pin
    covers the disabled-health step path too.  The measurement is paired
    interleaved median-of-k trials (alternating order each trial): separate
    best-of-N runs sample noise independently and routinely report ratios
    like 0.94 — noise wider than the 1.02 gate itself.
    """
    repository = ModelRepository(bits=4, seed=0)
    absent = make_engine(repository)
    disabled = make_engine(repository, tracer=Tracer(enabled=False))
    for engine in (absent, disabled):
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.warm_speculative(MODEL)
        engine.serve(lm_requests(0))  # warm pools, caches, code paths

    ratio, disabled_seconds, absent_seconds = paired_ratio(
        lambda: disabled.serve(lm_requests(1)),
        lambda: absent.serve(lm_requests(1)),
        trials=9,
    )

    results = run_once(disabled.serve, lm_requests(2))
    assert len(results) == 4
    assert disabled.tracer.num_spans == 0  # recorded nothing
    assert disabled.chrome_trace()["traceEvents"] == []

    benchmark.extra_info.update(
        {
            "absent_ms": round(absent_seconds * 1e3, 2),
            "disabled_ms": round(disabled_seconds * 1e3, 2),
            "disabled_over_absent": round(ratio, 4),
        }
    )
    serve_trajectory(
        "telemetry",
        disabled_over_absent=round(ratio, 4),
        absent_ms=round(absent_seconds * 1e3, 2),
        disabled_ms=round(disabled_seconds * 1e3, 2),
    )
    assert ratio <= 1.02, (
        f"disabled tracer costs {ratio:.3f}x over no tracer (budget 1.02x)"
    )


def test_bench_health_monitor_overhead(run_once, paired_ratio, benchmark, serve_trajectory):
    """Continuous SLO evaluation cost, worst case (informational).

    The *default* path (``health=None``) is covered by the disabled-tracer
    pin above — both of its engines run health-disabled.  Here the monitor
    evaluates after **every** engine step (``evaluation_interval_seconds=0``,
    far more often than the 1 s production default) to bound what continuous
    evaluation costs; the number is recorded in the trajectory artifact, not
    pinned, because the serve under test is only a few milliseconds long.
    """
    repository = ModelRepository(bits=4, seed=0)
    plain = make_engine(repository)
    monitored = ServingEngine(
        repository,
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=16),
        speculative=SPEC,
        health=HealthConfig(
            classes=(SLOClass(),),
            evaluation_interval_seconds=0.0,
        ),
    )
    for engine in (plain, monitored):
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.warm_speculative(MODEL)
        engine.serve(lm_requests(0))

    ratio, monitored_seconds, plain_seconds = paired_ratio(
        lambda: monitored.serve(lm_requests(5)),
        lambda: plain.serve(lm_requests(5)),
        trials=9,
    )
    results = run_once(monitored.serve, lm_requests(6))
    assert len(results) == 4
    report = monitored.health_report()
    assert report["slo"]["default"]["availability"]["events"] > 0

    benchmark.extra_info.update(
        {
            "health_every_step_over_absent": round(ratio, 4),
            "monitored_ms": round(monitored_seconds * 1e3, 2),
            "plain_ms": round(plain_seconds * 1e3, 2),
            "status": report["status"],
        }
    )
    serve_trajectory(
        "health",
        health_every_step_over_absent=round(ratio, 4),
        monitored_ms=round(monitored_seconds * 1e3, 2),
    )


def test_bench_enabled_tracer_overhead_and_coverage(
    run_once, best_of, benchmark, serve_trajectory, serve_phase_report
):
    """Enabled-tracer overhead (informational) + phase-report coverage gate."""
    repository = ModelRepository(bits=4, seed=0)
    baseline = make_engine(repository)
    tracer = Tracer()
    traced = make_engine(repository, tracer=tracer)
    for engine in (baseline, traced):
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.warm_speculative(MODEL)
        engine.serve(lm_requests(0))

    baseline_seconds = best_of(lambda: baseline.serve(lm_requests(3)), repeats=5)

    def traced_serve():
        tracer.reset()
        traced.serve(lm_requests(3))

    enabled_seconds = best_of(traced_serve, repeats=5)
    enabled_ratio = enabled_seconds / baseline_seconds

    tracer.reset()
    results = run_once(traced.serve, lm_requests(4))
    assert [r.output.finish_reason for r in results] == ["length"] * 4

    report = traced.phase_report()
    assert report.rounds > 0
    assert report.coverage >= 0.9, (
        f"phase report names only {report.coverage:.1%} of the round wall"
    )
    counts = validate_chrome_trace(json.dumps(traced.chrome_trace()))
    assert counts["B"] == counts["E"] > 0

    benchmark.extra_info.update(
        {
            "enabled_over_absent": round(enabled_ratio, 3),
            "enabled_ms": round(enabled_seconds * 1e3, 2),
            "spans_per_serve": tracer.num_spans,
            "phase_coverage": round(report.coverage, 4),
            "round_ms": round(report.round_ms, 2),
        }
    )
    serve_trajectory(
        "telemetry",
        enabled_over_absent=round(enabled_ratio, 3),
        spans_per_serve=tracer.num_spans,
        phase_coverage=round(report.coverage, 4),
    )
    serve_phase_report("telemetry", report)
