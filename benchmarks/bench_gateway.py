"""Benchmark: multi-tenant gateway — chunked prefill keeps interactive SLOs.

The scenario is the one the gateway exists for: a long-document tenant
bursts 56-token prompts (the analogue models' position ceiling) while an
interactive tenant needs short-request latency.  Without chunked prefill,
every document burst injects a whole-prompt prefill round that interactive
requests wait out; with ``prefill_chunk_tokens=8`` the document absorbs one
page-aligned chunk per round and interactive latency stays near solo.  The
document tenant's ``max_concurrent`` quota bounds how many documents chunk
simultaneously, so chunked rounds stay short — the headline pin is
**interactive SLO attainment >= 0.9 with chunking + quotas**, against a
measurably degraded unchunked baseline under identical offered load.

Also pinned here, because they gate the same subsystem:

* chunked prefill is token-identical to unchunked (fp32 pages and packed
  pages), so the latency win never costs output quality;
* the document-QA pipeline answers every question at/above its per-question
  confidence floor, with the floors derived from a deterministic reference
  run of the same seeded models;
* a seeded multi-tenant trace replays through the gateway and its
  per-tenant SLO report lands in ``SLO_tenants.json`` next to
  ``BENCH_serve.json`` for CI to archive.
"""

import json
import os

import numpy as np

from repro.serve import (
    Gateway,
    GatewayConfig,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    ServingEngine,
    TenantConfig,
    WorkloadFamily,
)
from repro.serve.loadgen import (
    LoadRunner,
    TenantLoad,
    TraceConfig,
    VirtualClock,
    generate_trace,
)
from repro.serve.scheduler import ContinuousBatchingScheduler
from repro.workloads.docqa import (
    DocQAPipeline,
    ExpectedAnswer,
    Question,
    run_harness,
)

MODEL = "gpt2-xl"
VOCAB = 96
NUM_SLOTS = 6
DOC_TOKENS = 56            # the analogue models cap at 64 positions
DOC_NEW_TOKENS = 2
DOC_QUOTA = 2              # quota bounds concurrent chunking documents
INTERACTIVE_TOKENS = 7
INTERACTIVE_NEW_TOKENS = 2
CHUNK_TOKENS = 8           # page-aligned (page_size=8)
WAVES = 10                 # document bursts, one interactive probe each
TARGET_MULTIPLIER = 5.0    # adaptive: headroom over warm solo latency
SLO_REPORT_PATH = os.path.join(os.path.dirname(__file__), "SLO_tenants.json")

API_INTERACTIVE = "bench-key-interactive"
API_DOCUMENTS = "bench-key-documents"


def _repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


def _cache_config():
    return KVCacheConfig(bits=4, page_size=8, prefix_sharing=True)


def _gateway(repository, prefill_chunk_tokens, clock=None):
    config = GatewayConfig(
        tenants=(
            TenantConfig(
                name="interactive", api_key=API_INTERACTIVE, priority=10
            ),
            TenantConfig(
                name="documents",
                api_key=API_DOCUMENTS,
                priority=0,
                max_concurrent=DOC_QUOTA,
            ),
        ),
        max_queue_depth=32,
        preempt=True,
    )
    kwargs = {} if clock is None else {"clock": clock}
    engine = ServingEngine(
        repository,
        kv_cache_config=_cache_config(),
        num_slots=NUM_SLOTS,
        admission=config.admission_policy(),
        health=config.health_config(),
        prefill_chunk_tokens=prefill_chunk_tokens,
        **kwargs,
    )
    return Gateway(engine, config)


def _request(seq_len, max_new_tokens, seed):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        rng.integers(0, VOCAB, size=seq_len),
        max_new_tokens=max_new_tokens,
    )


def _await(gateway, request_id, limit=300):
    for _ in range(limit):
        gateway.step(force=True)
        envelope = gateway.poll(request_id)
        if envelope.status == 200:
            return envelope
        assert envelope.status == 202, envelope
    raise AssertionError(f"request {request_id} did not finish")


def _solo_latency(repository):
    """Warm interactive latency with idle slots (the adaptive baseline)."""
    gateway = _gateway(repository, None)
    latencies = []
    for seed in range(3):
        request = _request(INTERACTIVE_TOKENS, INTERACTIVE_NEW_TOKENS, 50 + seed)
        assert gateway.submit(API_INTERACTIVE, request).status == 202
        envelope = _await(gateway, request.request_id)
        latencies.append(envelope.body["latency_s"])
    return min(latencies)


def _document_waves(repository, prefill_chunk_tokens):
    """Interactive latency under repeated document bursts.

    Returns ``(interactive latencies, quota rejections)``: each wave bursts
    two 56-token documents, then probes with one interactive request and
    measures its settle latency.
    """
    gateway = _gateway(repository, prefill_chunk_tokens)
    latencies = []
    rejected = 0
    seed = 0
    for wave in range(WAVES):
        for _ in range(2):
            seed += 1
            envelope = gateway.submit(
                API_DOCUMENTS, _request(DOC_TOKENS, DOC_NEW_TOKENS, 1000 + seed)
            )
            if envelope.status != 202:
                assert envelope.status == 429, envelope
                rejected += 1
        probe = _request(INTERACTIVE_TOKENS, INTERACTIVE_NEW_TOKENS, 2000 + wave)
        assert gateway.submit(API_INTERACTIVE, probe).status == 202
        latencies.append(_await(gateway, probe.request_id).body["latency_s"])
    gateway.run_until_idle()
    return latencies, rejected


def _attainment(latencies, target):
    return sum(1 for latency in latencies if latency <= target) / len(latencies)


def test_bench_gateway_chunked_prefill_slo(run_once, benchmark, serve_trajectory):
    repository = _repository()
    solo = _solo_latency(repository)
    target = solo * TARGET_MULTIPLIER

    unchunked_latencies, unchunked_rejected = run_once(
        _document_waves, repository, None
    )
    chunked_latencies, chunked_rejected = _document_waves(
        repository, CHUNK_TOKENS
    )

    unchunked_attainment = _attainment(unchunked_latencies, target)
    chunked_attainment = _attainment(chunked_latencies, target)

    serve_trajectory(
        "gateway",
        solo_latency_ms=round(solo * 1e3, 3),
        target_latency_ms=round(target * 1e3, 3),
        interactive_attainment_chunked=round(chunked_attainment, 3),
        interactive_attainment_unchunked=round(unchunked_attainment, 3),
        doc_quota_rejections_chunked=chunked_rejected,
        doc_quota_rejections_unchunked=unchunked_rejected,
        chunk_tokens=CHUNK_TOKENS,
        doc_tokens=DOC_TOKENS,
    )
    benchmark.extra_info.update(
        {
            "chunked_attainment": chunked_attainment,
            "unchunked_attainment": unchunked_attainment,
            "chunked_latencies_ms": [round(l * 1e3, 2) for l in chunked_latencies],
            "unchunked_latencies_ms": [
                round(l * 1e3, 2) for l in unchunked_latencies
            ],
        }
    )

    # The acceptance bar: chunked prefill + quotas keep interactive traffic
    # within the adaptive target, and the unchunked baseline is measurably
    # degraded (not a tie the pin would pass by accident).
    assert chunked_attainment >= 0.9, (
        f"chunked attainment {chunked_attainment:.2f} < 0.9 "
        f"(target {target * 1e3:.1f} ms)"
    )
    assert chunked_attainment - unchunked_attainment >= 0.3, (
        f"unchunked baseline ({unchunked_attainment:.2f}) not measurably "
        f"worse than chunked ({chunked_attainment:.2f})"
    )


def test_bench_gateway_chunked_token_identity(benchmark, serve_trajectory):
    """Chunking is a latency feature only: greedy tokens never change."""
    repository = _repository()

    def outputs(cache_config, prefill_chunk_tokens):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=cache_config,
            prefill_chunk_tokens=prefill_chunk_tokens,
        )
        requests = [
            _request(DOC_TOKENS, 6, 300 + seed) for seed in range(2)
        ]
        for request in requests:
            scheduler.submit(request)
        generated = {}
        for _ in range(300):
            for result in scheduler.step():
                generated[result.request_id] = list(
                    result.output["generated_tokens"]
                )
            if not len(scheduler):
                break
        return [generated[r.request_id] for r in requests]

    packed = _cache_config()
    fp32 = KVCacheConfig(bits=4, page_size=8, quantize=False)
    identical = (
        outputs(packed, CHUNK_TOKENS) == outputs(packed, None)
        and outputs(fp32, CHUNK_TOKENS) == outputs(fp32, None)
        and outputs(fp32, 13) == outputs(fp32, None)  # unaligned fp32 chunk
    )
    serve_trajectory("gateway", chunked_token_identity=float(identical))
    benchmark.extra_info["chunked_token_identity"] = identical
    assert identical


def test_bench_docqa_confidence_floors(run_once, benchmark, serve_trajectory):
    """Document QA answers every question at/above its confidence floor."""
    repository = _repository()
    rng = np.random.default_rng(42)
    document = [int(t) for t in rng.integers(0, VOCAB, size=120)]
    questions = [
        Question(f"q{i}", tuple(int(t) for t in rng.integers(0, VOCAB, size=6)))
        for i in range(4)
    ]

    def fresh_pipeline():
        config = GatewayConfig(
            tenants=(
                TenantConfig(
                    name="docqa", api_key="bench-key-docqa", max_concurrent=64
                ),
            )
        )
        engine = ServingEngine(
            repository,
            kv_cache_config=_cache_config(),
            num_slots=NUM_SLOTS,
            admission=config.admission_policy(),
            health=config.health_config(),
        )
        gateway = Gateway(engine, config)
        return DocQAPipeline(
            gateway, "bench-key-docqa", chunk_tokens=48, overlap=8
        )

    # Deterministic reference run fixes the expectations: the floor is 90%
    # of the observed confidence, the expected span the observed span.
    reference = fresh_pipeline().ask(questions, document)
    expectations = [
        ExpectedAnswer(
            question_id=qid,
            min_confidence=round(result.confidence * 0.9, 6),
            expected_span=result.span,
        )
        for qid, result in reference.items()
    ]

    report = run_once(
        run_harness, fresh_pipeline(), questions, expectations, document
    )

    floors = [e.min_confidence for e in expectations]
    confidences = [
        entry["confidence"] for entry in report["questions"].values()
    ]
    serve_trajectory(
        "docqa",
        questions=len(questions),
        passed=float(report["passed"]),
        min_confidence_floor=round(min(floors), 6),
        min_confidence_observed=round(min(confidences), 6),
    )
    benchmark.extra_info["docqa_report"] = report
    assert report["passed"], report
    assert all(
        entry["confidence_ok"] and entry["span_ok"]
        for entry in report["questions"].values()
    )


def test_bench_gateway_trace_slo_report(run_once, benchmark, serve_trajectory):
    """A seeded trace replays through the gateway; the per-tenant SLO report
    is written next to BENCH_serve.json for CI to archive."""
    repository = _repository()
    clock = VirtualClock()
    gateway = _gateway(repository, CHUNK_TOKENS, clock=clock)
    trace = generate_trace(TraceConfig(
        tenants=(
            TenantLoad(
                name="interactive",
                arrivals_per_round=0.7,
                burst_rounds=3,
                idle_rounds=3,
                prompt_tokens=(6, 14),
                max_new_tokens=3,
                turns_range=(1, 3),
            ),
            TenantLoad(
                name="documents",
                arrivals_per_round=0.4,
                prompt_tokens=(40, DOC_TOKENS),
                max_new_tokens=DOC_NEW_TOKENS,
            ),
        ),
        rounds=24,
        seed=11,
    ))
    runner = LoadRunner(gateway, clock, model=MODEL, seconds_per_round=0.05)
    run_once(runner.run, trace)
    report = runner.report()
    with open(SLO_REPORT_PATH, "w") as handle:
        handle.write(runner.report_json())

    tenants = report["tenants"]
    total_submitted = sum(t["submitted"] for t in tenants.values())
    total_completed = sum(t["completed"] for t in tenants.values())
    serve_trajectory(
        "gateway",
        trace_events=len(trace),
        trace_submitted=total_submitted,
        trace_completed=total_completed,
        trace_availability=round(
            min(
                t["slo"]["availability"]["attainment"]
                for t in tenants.values()
                if "slo" in t
            ),
            4,
        ),
    )
    benchmark.extra_info["trace_report"] = report
    assert total_submitted == len(trace)
    assert total_completed > 0
    # Every accepted request settled: accepted = completed + failed.
    for tenant in tenants.values():
        assert tenant["accepted"] == tenant["completed"] + tenant["failed"]
