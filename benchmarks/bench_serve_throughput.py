"""Benchmark: serving throughput and the vectorized OVP codec hot path.

Three perf properties guard the serving subsystem:

* the vectorized codec must decode a 1M-element int4 tensor at least 20x
  faster than the scalar per-pair oracle (decode-on-demand viability);
* the quantizer's stacked candidate sweep must not lose to the per-candidate
  reference loop on serving-sized weight tensors (model-load/warm latency);
* the serving engine must sustain batched traffic across all three workload
  families and report latency/throughput stats.
"""

import time

import numpy as np

from repro.core.abfloat import ABFLOAT_E2M1
from repro.core.dtypes import INT4
from repro.core.ovp import OVPairCodec
from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer
from repro.serve import InferenceRequest, ServingEngine, WorkloadFamily


def test_bench_codec_decode_speedup(run_once, best_of, benchmark):
    codec = OVPairCodec(INT4, ABFLOAT_E2M1, bias=2)
    rng = np.random.default_rng(0)
    tensor = rng.normal(0.0, 2.5, size=1_000_000)
    tensor[::300] *= 15.0  # transformer-style outliers
    packed = codec.encode_tensor(tensor, scale=1.0, threshold=7.0)

    vec_seconds = best_of(lambda: codec.decode_tensor(packed), repeats=5)
    scalar_seconds = best_of(lambda: codec.decode_tensor_scalar(packed), repeats=2)
    speedup = scalar_seconds / vec_seconds
    decoded_gb_per_s = tensor.size * 8 / vec_seconds / 1e9  # float64 produced

    encode_vec = best_of(lambda: codec.encode_tensor(tensor, 1.0, 7.0), repeats=3)
    result = run_once(codec.decode_tensor, packed)
    np.testing.assert_array_equal(result, codec.decode_tensor_scalar(packed))

    benchmark.extra_info.update(
        {
            "decode_speedup_vs_scalar": round(speedup, 1),
            "decode_ms_1m_elements": round(vec_seconds * 1e3, 2),
            "decode_gb_per_s_f64_out": round(decoded_gb_per_s, 2),
            "encode_ms_1m_elements": round(encode_vec * 1e3, 2),
        }
    )
    assert speedup >= 20.0, f"vectorized decode only {speedup:.1f}x faster than scalar"


def test_bench_quantizer_fit_vectorized_sweep(run_once, best_of, benchmark):
    """The stacked threshold sweep must beat the per-candidate loop.

    The workload mirrors what ``warm()`` pays at model-load time: one MSE
    threshold search per serving-sized Linear weight.  Identical results are
    asserted alongside the timing so the fast path can never drift.
    """
    rng = np.random.default_rng(0)
    weights = [
        rng.normal(0.0, 1.0 / np.sqrt(shape[1]), size=shape).ravel()
        for shape in [(64, 64)] * 12 + [(128, 64), (64, 128), (96, 64), (160, 80)]
    ]
    quantizer = OVPTensorQuantizer(OVPQuantizerConfig(search_points=12))

    vectorized_seconds = best_of(
        lambda: [quantizer._fit_flat(w) for w in weights], repeats=7
    )
    reference_seconds = best_of(
        lambda: [quantizer._fit_flat_reference(w) for w in weights], repeats=7
    )
    fits = run_once(lambda: [quantizer._fit_flat(w) for w in weights])
    assert fits == [quantizer._fit_flat_reference(w) for w in weights]

    speedup = reference_seconds / vectorized_seconds
    engine = ServingEngine(max_batch_size=8)
    warm_start = time.perf_counter()
    entry = engine.warm("gpt2-xl", WorkloadFamily.LM)
    warm_seconds = time.perf_counter() - warm_start
    benchmark.extra_info.update(
        {
            "fit_sweep_speedup": round(speedup, 2),
            "fit_vectorized_ms": round(vectorized_seconds * 1e3, 2),
            "fit_reference_ms": round(reference_seconds * 1e3, 2),
            "warm_gpt2xl_ms": round(warm_seconds * 1e3, 1),
            "warm_quantize_ms": round(entry.quantize_seconds * 1e3, 1),
        }
    )
    assert speedup >= 1.05, f"stacked sweep only {speedup:.2f}x vs per-candidate loop"


def test_bench_serve_mixed_workloads(run_once, benchmark):
    engine = ServingEngine(max_batch_size=8, max_wait=0.002)
    models = {
        WorkloadFamily.CLASSIFY: "bert-base",
        WorkloadFamily.SPAN: "bert-base",
        WorkloadFamily.LM: "gpt2-xl",
    }
    for family, model in models.items():
        engine.warm(model, family)

    rng = np.random.default_rng(1)
    requests = [
        InferenceRequest(
            model=models[family],
            family=family,
            token_ids=rng.integers(0, 96, size=32),
        )
        for _ in range(16)
        for family in models
    ]

    results = run_once(engine.serve, requests)

    assert len(results) == len(requests)
    assert {r.family for r in results} == set(models)
    summary = engine.stats.summary()
    assert summary.requests == len(requests)
    assert summary.throughput_rps > 0
    assert summary.latency_p95_ms >= summary.latency_p50_ms > 0
    assert summary.mean_batch_fill > 0.5
    benchmark.extra_info.update(summary.as_dict())


def test_bench_repository_quantize_once(run_once, benchmark):
    engine = ServingEngine(max_batch_size=8, max_wait=0.0)
    entry = engine.warm("bert-base", WorkloadFamily.CLASSIFY)

    rng = np.random.default_rng(2)
    requests = [
        InferenceRequest("bert-base", WorkloadFamily.CLASSIFY, rng.integers(0, 96, 32))
        for _ in range(32)
    ]
    run_once(engine.serve, requests)

    stats = engine.repository.stats
    assert stats.misses == 1  # quantized exactly once
    assert stats.hits >= 4
    benchmark.extra_info.update(
        {
            "quantize_seconds": round(entry.quantize_seconds, 3),
            "decode_seconds": round(entry.decode_seconds, 4),
            "packed_kb": round(entry.packed_bytes / 1e3, 1),
            "compression_vs_fp32": round(entry.compression_ratio, 2),
            "cache_hit_rate": round(stats.hit_rate, 3),
        }
    )
