"""Benchmark: regenerate Table 2 (pair-type census of large-model analogues)."""

from repro.experiments.table2_pairs import run_table2


def test_bench_table2_pair_census(run_once, benchmark):
    result = run_once(run_table2)
    fractions = result.fractions()
    benchmark.extra_info.update(
        {model: {k: round(v, 5) for k, v in f.items()} for model, f in fractions.items()}
    )
    for per_model in fractions.values():
        assert per_model["normal-normal"] > 0.95
        assert per_model["outlier-outlier"] < 0.01
