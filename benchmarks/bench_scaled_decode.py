"""Benchmark: scaled-tier decode — the modeled speedups, in wall-clock.

The toy zoo pins speculation and bucketed attend *semantically* (token
identity, rounds/token) but cannot show them in wall time: at hidden 64 a
NumPy decode round is per-call-overhead-bound.  ``gpt2-xl-scaled`` (hidden
512, 4 layers, 8 heads, 1024 positions) is large enough that a round is
dominated by GEMMs and page decode, so the two serving optimisations this
repo models must — and here, must *provably* — pay for themselves:

* **speculative_wall_ratio** — plain greedy wall over speculative wall on
  the same workload, > 1.0 pinned.  The scaled tier's layer-convergent
  residual stream (``AnalogueConfig.residual_decay``) gives its 1-layer
  draft prefix the predictive power trained LMs give theirs, and the
  single-token speculation depth keeps the verify GEMMs in the
  weight-streaming regime where extra rows are nearly free.
* **bucketed_wall_ratio** — padded-attend wall over bucketed-attend wall on
  a bimodal-length batch (short chats next to long documents), > 1.0
  pinned.  Padding every slot to the round's longest KV length wastes
  attend GEMM rows and padded K/V copies exactly as modeled by the
  padded-waste stats; at 700+-token contexts the waste is wall-visible.

Both comparisons also assert token identity, so the speedups cannot come
from decoding different (shorter, easier) streams.  Ratios are medians of
paired interleaved trials (see ``paired_ratio``) and are recorded in the
``scaled_decode`` section of ``BENCH_serve.json``, where the regression
watchdog enforces the > 1.0 floors and flags drift.
"""

import statistics
import time

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.serve import (
    ContinuousBatchingScheduler,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SpeculativeConfig,
    SpeculativeDecoder,
    WorkloadFamily,
)
from repro.serve.stats import ServingStats

MODEL = "gpt2-xl-scaled"
VOCAB = 96
#: Long contexts thrash a small decoded-page LRU, which would hide the
#: attend-shape difference behind identical re-decode costs on both sides.
CACHE = KVCacheConfig(
    bits=4, page_size=32, prefix_sharing=False, pool_decoded_mb=512.0
)

# Speculation recipe for the scaled tier: the 1-layer draft keeps the
# proposal pass at ~a quarter of a target round, single-token depth keeps
# the verify batch narrow, and the low first-margin gate proposes on most
# rounds — acceptance comes from the calibrated head, not from gating.
SPEC = SpeculativeConfig(
    draft_layers=1,
    num_speculative_tokens=1,
    feature_width=0,
    calibration_sequences=24,
    calibration_tokens=40,
    calibration_prompt_len=8,
    first_margin_threshold=0.25,
    margin_threshold=1.0,
)

SPEC_SLOTS = 2
SPEC_REQUESTS = 4
SPEC_SEQ_LEN = 24
SPEC_NEW_TOKENS = 64

BUCKET_SLOTS = 8
BUCKET_LENGTHS = (16, 24, 24, 32, 700, 720, 740, 760)
BUCKET_NEW_TOKENS = 32

MIN_WALL_RATIO = 1.0
MIN_ACCEPTANCE = 0.6
MIN_STREAM_SPEEDUP = 1.3
PAIRED_TRIALS = 5


def _spec_requests():
    requests = []
    for index in range(SPEC_REQUESTS):
        rng = np.random.default_rng(100 + index)
        requests.append(
            InferenceRequest(
                MODEL,
                WorkloadFamily.LM,
                rng.integers(0, VOCAB, size=SPEC_SEQ_LEN),
                max_new_tokens=SPEC_NEW_TOKENS,
            )
        )
    return requests


def _drain(repository, speculative=None):
    """Serve the speculative workload; returns (ordered tokens, summary)."""
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=SPEC_SLOTS,
        cache_config=CACHE,
        stats=stats,
        speculative=speculative,
    )
    requests = _spec_requests()
    for request in requests:
        scheduler.submit(request)
    outputs = {
        r.request_id: list(r.output["generated_tokens"])
        for r in scheduler.run_until_idle()
    }
    return [outputs[request.request_id] for request in requests], stats.summary()


def _bucket_decode(repository, mode):
    """Prefill the bimodal batch untimed, then time the decode drain."""
    previous = MultiHeadAttention.ragged_attend
    MultiHeadAttention.ragged_attend = mode
    try:
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=BUCKET_SLOTS, cache_config=CACHE
        )
        requests = []
        for index, length in enumerate(BUCKET_LENGTHS):
            rng = np.random.default_rng(300 + index)
            requests.append(
                InferenceRequest(
                    MODEL,
                    WorkloadFamily.LM,
                    rng.integers(0, VOCAB, size=length),
                    max_new_tokens=BUCKET_NEW_TOKENS,
                )
            )
        for request in requests:
            scheduler.submit(request)
        scheduler.step()  # admit + prefill every slot outside the timer
        start = time.perf_counter()
        outputs = {
            r.request_id: list(r.output["generated_tokens"])
            for r in scheduler.run_until_idle()
        }
        elapsed = time.perf_counter() - start
        return [outputs[request.request_id] for request in requests], elapsed
    finally:
        MultiHeadAttention.ragged_attend = previous


def test_bench_scaled_decode(run_once, paired_ratio, benchmark, serve_trajectory):
    repository = ModelRepository(bits=4, seed=0)
    repository.get(MODEL, WorkloadFamily.LM)
    decoder = SpeculativeDecoder(repository, SPEC, target_cache_config=CACHE)
    decoder.warm(MODEL)  # pack the draft + calibrate heads outside the timers

    # ---------------- speculative decode, wall-clock ---------------- #
    plain_tokens, plain_summary = _drain(repository)
    spec_tokens, spec_summary = _drain(repository, speculative=decoder)
    assert spec_tokens == plain_tokens  # identical greedy streams

    acceptance = spec_summary.draft_acceptance_rate
    assert acceptance >= MIN_ACCEPTANCE, (
        f"draft acceptance {acceptance:.3f} below {MIN_ACCEPTANCE}"
    )
    stream_speedup = plain_summary.decode_rounds / spec_summary.decode_rounds
    assert stream_speedup >= MIN_STREAM_SPEEDUP

    spec_ratio, plain_seconds, spec_seconds = paired_ratio(
        lambda: _drain(repository),
        lambda: _drain(repository, speculative=decoder),
        trials=PAIRED_TRIALS,
    )
    assert spec_ratio > MIN_WALL_RATIO, (
        f"speculative decode is not wall-clock faster at the scaled tier: "
        f"plain {plain_seconds * 1e3:.0f}ms vs speculative "
        f"{spec_seconds * 1e3:.0f}ms ({spec_ratio:.3f}x)"
    )

    # ---------------- bucketed attend, wall-clock ---------------- #
    # The identity drains double as the warmup pair; the timed trials then
    # interleave the two attend modes (paired_ratio's scheme) but compare the
    # *decode-only* window `_bucket_decode` times internally — the bimodal
    # prefill is identical on both sides and would only dilute the ratio.
    bucketed_tokens, _ = _bucket_decode(repository, "bucketed")
    padded_tokens, _ = _bucket_decode(repository, "padded")
    assert bucketed_tokens == padded_tokens  # identical greedy streams

    padded_times, bucketed_times = [], []
    for trial in range(PAIRED_TRIALS):
        order = (("padded", padded_times), ("bucketed", bucketed_times))
        if trial % 2:
            order = order[::-1]
        for mode, sink in order:
            sink.append(_bucket_decode(repository, mode)[1])
    padded_seconds = statistics.median(padded_times)
    bucketed_seconds = statistics.median(bucketed_times)
    bucket_ratio = padded_seconds / bucketed_seconds
    assert bucket_ratio > MIN_WALL_RATIO, (
        f"bucketed attend is not wall-clock faster at the scaled tier: "
        f"padded {padded_seconds * 1e3:.0f}ms vs bucketed "
        f"{bucketed_seconds * 1e3:.0f}ms ({bucket_ratio:.3f}x)"
    )

    run_once(_drain, repository, decoder)
    generated = spec_summary.generated_tokens
    numbers = {
        "generated_tokens": generated,
        "draft_acceptance_rate": round(acceptance, 4),
        "plain_decode_rounds": plain_summary.decode_rounds,
        "speculative_decode_rounds": spec_summary.decode_rounds,
        "weight_stream_speedup": round(stream_speedup, 3),
        "plain_wall_ms": round(plain_seconds * 1e3, 1),
        "speculative_wall_ms": round(spec_seconds * 1e3, 1),
        "speculative_wall_ratio": round(spec_ratio, 3),
        "decode_tokens_per_s": round(generated / spec_seconds, 1),
        "padded_wall_ms": round(padded_seconds * 1e3, 1),
        "bucketed_wall_ms": round(bucketed_seconds * 1e3, 1),
        "bucketed_wall_ratio": round(bucket_ratio, 3),
    }
    benchmark.extra_info.update(numbers)
    serve_trajectory("scaled_decode", **numbers)
