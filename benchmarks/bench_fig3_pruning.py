"""Benchmark: regenerate Fig. 3 (clip outliers vs prune victims vs prune normals)."""

from repro.experiments.fig3_pruning import run_fig3


def test_bench_fig3_pruning_ablation(run_once, benchmark):
    result = run_once(run_fig3, tasks=("CoLA", "SST-2", "MNLI"), num_examples=48)
    benchmark.extra_info["scores"] = result.scores
    # Paper Fig. 3: clipping outliers is catastrophic, pruning victims is almost free.
    assert result.average_drop("clip-outlier") > result.average_drop("prune-victim")
