#!/usr/bin/env python
"""Bench-regression watchdog: diff BENCH_serve.json against a committed baseline.

The serving benchmarks write their headline trajectory numbers (tokens/s,
pool hit rate, overhead ratios, phase coverage, ...) to
``benchmarks/BENCH_serve.json`` on every run.  This script compares that
fresh artifact against the committed ``benchmarks/BENCH_baseline.json`` and
flags metrics that moved in the *bad* direction beyond a per-metric
tolerance.  Timing on shared CI runners is noisy, so the tolerances are
deliberately loose and the default exit status is always 0 — the watchdog
annotates, it does not gate.  Pass ``--strict`` to turn regressions into a
nonzero exit (useful locally on a quiet machine).

Direction and tolerance are inferred from the metric name:

========================  ============  =====================================
name pattern              direction     tolerance
========================  ============  =====================================
``*_over_absent``         lower better  +0.05 absolute (overhead ratios)
``*coverage``             higher better -0.02 absolute
``*_ms`` / ``*_wall_ms``  lower better  +25% relative (wall-clock noise)
``*waste_fraction``       lower better  +0.05 absolute
``*overhead_pct``         lower better  +5 absolute percentage points
``*speedup`` / ratios     higher better -20% relative
``*tokens_per_s*``        higher better -20% relative
``*hit_rate`` / rates     higher better -0.05 absolute
everything else           informational never flagged
========================  ============  =====================================

Two refinements on top of the name rules: per-section overrides widen the
noise bands for the ``scaled_decode`` wall-clock tier (real timing, shared
runners), and ``_FLOORS`` pins absolute exit criteria (the scaled-tier
speculative/bucketed wall ratios must stay above 1.0) that flag even when
the baseline has no entry yet.  Metrics present in the baseline but absent
from the current run warn — like missing sections — instead of silently
rotting in the diff table.

Usage::

    python benchmarks/regression_watchdog.py            # human-readable diff
    python benchmarks/regression_watchdog.py --annotate # GitHub ::warning:: lines
    python benchmarks/regression_watchdog.py --strict   # exit 1 on regression
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_CURRENT = os.path.join(HERE, "BENCH_serve.json")
DEFAULT_BASELINE = os.path.join(HERE, "BENCH_baseline.json")

LOWER = "lower"
HIGHER = "higher"
INFO = "info"

# (suffix-or-substring, match kind, direction, tolerance kind, tolerance).
# First matching rule wins; tolerance kind "abs" compares current vs
# baseline +/- tol, "rel" allows a fractional move of the baseline.
_RULES = (
    ("_over_absent", "suffix", LOWER, "abs", 0.05),
    ("coverage", "suffix", HIGHER, "abs", 0.02),
    ("waste_fraction", "suffix", LOWER, "abs", 0.05),
    ("overhead_pct", "suffix", LOWER, "abs", 5.0),
    ("_ms", "suffix", LOWER, "rel", 0.25),
    ("speedup", "suffix", HIGHER, "rel", 0.20),
    ("wall_ratio", "suffix", HIGHER, "rel", 0.20),
    ("tokens_per_s", "contains", HIGHER, "rel", 0.20),
    ("hit_rate", "suffix", HIGHER, "abs", 0.05),
    ("acceptance", "contains", HIGHER, "abs", 0.05),
    ("attainment", "contains", HIGHER, "abs", 0.05),
    ("occupancy", "suffix", HIGHER, "abs", 0.10),
    # Gateway / docqa correctness pins: identity and pass flags are 0/1 and
    # must never drop; confidence floors get a small absolute slack.
    ("token_identity", "contains", HIGHER, "abs", 0.0),
    ("passed", "suffix", HIGHER, "abs", 0.0),
    ("availability", "contains", HIGHER, "abs", 0.01),
    ("confidence_observed", "suffix", HIGHER, "abs", 0.02),
)

# Section-scoped overrides consulted before the generic _RULES.  The scaled
# tier measures real wall clock on shared runners, which is noisier than the
# toy tier's modeled counts — its ratio/time bands are deliberately wider so
# the watchdog does not flap on scheduler jitter.
_SECTION_RULES = {
    "scaled_decode": (
        ("_ms", "suffix", LOWER, "rel", 0.35),
        ("wall_ratio", "suffix", HIGHER, "rel", 0.30),
        ("speedup", "suffix", HIGHER, "rel", 0.30),
        ("tokens_per_s", "contains", HIGHER, "rel", 0.30),
    ),
}

# Absolute floors enforced independently of the baseline (and even for
# metrics the baseline has not learned yet).  These encode exit criteria,
# not noise bands: the scaled tier exists to show speculation and the
# bucketed attend winning in wall clock, so parity (1.0) is the hard line.
_FLOORS = {
    ("scaled_decode", "speculative_wall_ratio"): 1.0,
    ("scaled_decode", "bucketed_wall_ratio"): 1.0,
}


def classify(name, section=None):
    """Return (direction, tolerance_kind, tolerance) for a metric name."""
    rules = _SECTION_RULES.get(section, ()) + _RULES
    for needle, kind, direction, tol_kind, tol in rules:
        if (kind == "suffix" and name.endswith(needle)) or (
            kind == "contains" and needle in name
        ):
            return direction, tol_kind, tol
    return INFO, "abs", 0.0


def is_regression(name, baseline, current, section=None):
    """Return (regressed, direction, allowed_bound) for one metric."""
    direction, tol_kind, tol = classify(name, section)
    if direction == INFO:
        return False, direction, None
    if tol_kind == "rel":
        slack = abs(baseline) * tol
    else:
        slack = tol
    if direction == LOWER:
        bound = baseline + slack
        return current > bound, direction, bound
    bound = baseline - slack
    return current < bound, direction, bound


def flatten(sections):
    """Yield (section, metric, value) for every scalar trajectory number.

    Nested blocks (the per-phase ``phase_report``) are skipped except for
    their top-level ``coverage`` and ``round_ms`` scalars, which carry the
    regression signal without the per-phase noise.
    """
    for section, metrics in sorted(sections.items()):
        if not isinstance(metrics, dict):
            continue
        for name, value in sorted(metrics.items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                yield section, name, float(value)
            elif name == "phase_report" and isinstance(value, dict):
                for sub in ("coverage", "round_ms"):
                    if isinstance(value.get(sub), (int, float)):
                        yield section, f"phase_report.{sub}", float(value[sub])


def load(path, label):
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        print(f"watchdog: {label} artifact not found at {path}; nothing to diff")
        return None
    except json.JSONDecodeError as exc:
        print(f"watchdog: {label} artifact at {path} is not valid JSON: {exc}")
        return None
    sections = payload.get("sections")
    if not isinstance(sections, dict):
        print(f"watchdog: {label} artifact at {path} has no 'sections' block")
        return None
    return sections


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default=DEFAULT_CURRENT,
                        help="fresh bench artifact (default: %(default)s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--annotate", action="store_true",
                        help="emit GitHub Actions ::warning:: lines for regressions")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any metric regressed (default: always 0)")
    args = parser.parse_args(argv)

    current = load(args.current, "current")
    baseline = load(args.baseline, "baseline")
    if current is None or baseline is None:
        # A missing artifact is a setup problem, not a perf regression; stay
        # green so the non-blocking CI step never masks the bench job itself.
        return 0

    # A brand-new bench section (no baseline entry yet) is expected right
    # after the bench lands: warn so someone commits a baseline, never crash
    # or flag — there is nothing to regress against.
    for section in sorted(set(current) - set(baseline)):
        message = (f"section '{section}' is not in the baseline; its metrics "
                   f"are reported as new until BENCH_baseline.json learns it")
        if args.annotate:
            print(f"::warning title=Bench section missing baseline::{message}")
        else:
            print(f"watchdog: {message}")

    base_flat = {(s, m): v for s, m, v in flatten(baseline)}
    regressions, compared = [], 0
    rows = []
    for section, metric, value in flatten(current):
        base = base_flat.pop((section, metric), None)
        floor = _FLOORS.get((section, metric))
        if floor is not None and value < floor:
            # Exit-criterion floor: below the line is a regression even for
            # a brand-new metric with no baseline entry yet.
            rows.append((section, metric, base, value, "REGRESSED"))
            regressions.append((section, metric, base, value, floor, HIGHER))
            if base is not None:
                compared += 1
            continue
        if base is None:
            rows.append((section, metric, None, value, "new"))
            continue
        regressed, direction, bound = is_regression(metric, base, value, section)
        compared += 1
        if direction == INFO:
            status = "info"
        elif regressed:
            status = "REGRESSED"
            regressions.append((section, metric, base, value, bound, direction))
        else:
            status = "ok"
        rows.append((section, metric, base, value, status))
    # A metric the baseline tracks but the current run no longer reports is
    # a bench wiring problem (renamed key, skipped test): warn like a missing
    # section instead of burying it in the table.
    for (section, metric), base in sorted(base_flat.items()):
        rows.append((section, metric, base, None, "missing"))
        message = (f"metric '{section}.{metric}' is in the baseline but "
                   f"missing from the current run (renamed or skipped?)")
        if args.annotate:
            print(f"::warning title=Bench metric missing::{message}")
        else:
            print(f"watchdog: {message}")

    width = max((len(f"{s}.{m}") for s, m, *_ in rows), default=20)
    print(f"bench watchdog: {compared} metrics compared, "
          f"{len(regressions)} regressed")
    for section, metric, base, value, status in rows:
        name = f"{section}.{metric}"
        base_s = "-" if base is None else f"{base:g}"
        cur_s = "-" if value is None else f"{value:g}"
        print(f"  {name:<{width}}  {base_s:>12} -> {cur_s:>12}  [{status}]")

    for section, metric, base, value, bound, direction in regressions:
        arrow = "above" if direction == LOWER else "below"
        base_s = "no baseline" if base is None else f"baseline {base:g}"
        message = (f"{section}.{metric} regressed: {value:g} vs "
                   f"{base_s} ({arrow} allowed {bound:g})")
        if args.annotate:
            print(f"::warning title=Bench regression::{message}")
        else:
            print(f"watchdog: {message}")

    if args.strict and regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
