"""Benchmark: regenerate Table 6 (GLUE accuracy of OliVe 4-bit PTQ vs baselines)."""

from repro.experiments.table6_glue import run_table6


def test_bench_table6_glue_accuracy(run_once, benchmark):
    result = run_once(
        run_table6,
        models=("bert-base", "bart-base"),
        tasks=("CoLA", "SST-2", "MNLI"),
        schemes=("fp32", "olive-4bit", "ant-4bit", "os-6bit"),
        num_examples=48,
    )
    benchmark.extra_info["scores"] = {
        f"{m}/{t}": v for (m, t), v in result.scores.items()
    }
    for model in ("bert-base", "bart-base"):
        # Paper Table 6: OliVe 4-bit PTQ loses less accuracy than ANT 4-bit PTQ.
        assert result.accuracy_drop(model, "olive-4bit") < result.accuracy_drop(model, "ant-4bit")
