"""Benchmark: regenerate Table 10 (OliVe decoder area on the RTX 2080 Ti)."""

from repro.experiments.tables_area import run_table10


def test_bench_table10_gpu_decoder_area(benchmark):
    result = benchmark(run_table10)
    ratios = result.ratios()
    benchmark.extra_info["area_ratios"] = ratios
    # Paper Table 10: 0.250% (4-bit) and 0.166% (8-bit) of the 754 mm^2 die.
    assert abs(ratios["4-bit decoder"] - 0.00250) < 2e-4
    assert abs(ratios["8-bit decoder"] - 0.00166) < 2e-4
