"""Shared pytest-benchmark configuration for the paper-experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  The heavy
accuracy experiments are run once per benchmark (``rounds=1``) — the quantity
of interest is the experiment's *result*, which each benchmark also attaches
to ``benchmark.extra_info`` so the numbers appear in the saved benchmark JSON.
"""

import time

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def best_of():
    """Best-of-N wall-clock timer shared by the perf-assertion benchmarks."""

    def _best(func, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - start)
        return best

    return _best
