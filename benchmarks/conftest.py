"""Shared pytest-benchmark configuration for the paper-experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  The heavy
accuracy experiments are run once per benchmark (``rounds=1``) — the quantity
of interest is the experiment's *result*, which each benchmark also attaches
to ``benchmark.extra_info`` so the numbers appear in the saved benchmark JSON.

The serving benchmarks additionally record their headline trajectory numbers
(tokens/s, page-pool hit rate, padded-waste fraction, …) through the
``serve_trajectory`` fixture; the session writes them to
``benchmarks/BENCH_serve.json`` so CI can archive one small artifact per run
and future PRs can diff the serving perf trajectory without parsing the full
pytest-benchmark output.
"""

import json
import os
import platform
import statistics
import time

import pytest

_SERVE_TRAJECTORY = {}
_TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def best_of():
    """Best-of-N wall-clock timer shared by the perf-assertion benchmarks."""

    def _best(func, repeats):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - start)
        return best

    return _best


@pytest.fixture
def paired_ratio():
    """Noise-robust candidate/baseline wall-clock ratio for overhead pins.

    Separate best-of-N runs of the two sides sample machine noise
    *independently*, so a tight pin (e.g. 1.02×) can report 0.94 one run and
    1.05 the next on identical code.  This fixture instead runs the two
    callables as **paired interleaved trials** — alternating which side goes
    first each trial, so drift hits both symmetrically — and compares the
    **medians** (robust to a single descheduled trial, unlike min or mean).

    Returns ``(ratio, candidate_median_seconds, baseline_median_seconds)``.
    """

    def _ratio(candidate, baseline, trials=9, warmup=1):
        for _ in range(warmup):
            baseline()
            candidate()
        candidate_times, baseline_times = [], []
        for trial in range(trials):
            pair = ((candidate, candidate_times), (baseline, baseline_times))
            if trial % 2:
                pair = pair[::-1]
            for func, sink in pair:
                start = time.perf_counter()
                func()
                sink.append(time.perf_counter() - start)
        candidate_median = statistics.median(candidate_times)
        baseline_median = statistics.median(baseline_times)
        return candidate_median / baseline_median, candidate_median, baseline_median

    return _ratio


@pytest.fixture
def serve_trajectory():
    """Record headline serving-perf numbers into the BENCH_serve.json artifact.

    Usage: ``serve_trajectory("section", metric=value, ...)`` — sections merge
    across benchmarks, so each bench contributes its own block.
    """

    def _record(section, **metrics):
        _SERVE_TRAJECTORY.setdefault(str(section), {}).update(metrics)

    return _record


@pytest.fixture
def serve_phase_report():
    """Attach a tracer's per-phase round breakdown to BENCH_serve.json.

    Usage: ``serve_phase_report("section", report)`` with a
    :class:`repro.serve.telemetry.PhaseReport` — the report's ``as_dict()``
    (rounds, round wall, named-phase coverage, per-phase count/total/self/
    share) lands under the section's ``phase_report`` key, so CI archives
    where round wall-clock goes alongside the throughput trajectory.
    """

    def _record(section, report):
        _SERVE_TRAJECTORY.setdefault(str(section), {})["phase_report"] = report.as_dict()

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write the serving trajectory artifact when any serve bench recorded one.

    Sections from an existing ``BENCH_serve.json`` are carried over so the
    benches can run as *separate* pytest sessions (CI budgets the scaled-tier
    wall-clock bench as its own step) and still produce one merged artifact;
    sections recorded by this session overwrite their stale counterparts.
    """
    if not _SERVE_TRAJECTORY:
        return
    sections = {}
    try:
        with open(_TRAJECTORY_PATH) as handle:
            sections.update(json.load(handle).get("sections", {}))
    except (OSError, ValueError):
        pass
    sections.update(_SERVE_TRAJECTORY)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "exit_status": int(exitstatus),
        "sections": sections,
    }
    with open(_TRAJECTORY_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
