"""Benchmark: regenerate Fig. 2 (CNN vs Transformer outlier profiles)."""

from repro.experiments.fig2_outliers import run_fig2


def test_bench_fig2_outlier_profiles(run_once, benchmark):
    result = run_once(run_fig2)
    summary = result.summary()
    benchmark.extra_info.update(summary)
    # Paper Fig. 2: transformer outliers are far larger than CNN outliers.
    assert summary["transformer_max_sigma"] > summary["cnn_max_sigma"]
