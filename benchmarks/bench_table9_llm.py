"""Benchmark: regenerate Table 9 (LLM perplexity under PTQ)."""

from repro.experiments.table9_llm import run_table9


def test_bench_table9_llm_perplexity(run_once, benchmark):
    result = run_once(run_table9, num_sequences=8)
    benchmark.extra_info["perplexity"] = {
        f"{m}/{c}": v for (m, c), v in result.perplexities.items()
    }
    for (model, corpus), row in result.perplexities.items():
        # OliVe 8-bit tracks FP32 much more closely than the 4-bit baselines.
        assert row["olive-8bit"] < row["int4"]
        assert row["olive-8bit"] < row["ant-4bit"]
        if model == "opt-6.7b":
            # The emergent-outlier model: plain int8 collapses, OliVe 8-bit survives.
            assert row["olive-8bit"] < row["int8"]
