"""Benchmark: sampled decode-round overhead over greedy at batch 8.

The sampling pipeline (temperature warp, top-k/top-p filters, one
``Generator`` draw per token) runs per slot per round on the decode hot
path.  The model forward dominates a round, so the pipeline must stay in
the noise: sampled decode is pinned to **≤ 10% overhead over greedy** at
batch 8.  The greedy path itself is pinned to equivalence — the
``SamplingParams(temperature=0)`` stream must be token-for-token what the
legacy ``max_new_tokens=`` kwargs produce.

The headline numbers land in the ``BENCH_serve.json`` trajectory artifact
(section ``sampling``).
"""

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    WorkloadFamily,
)
from repro.serve.scheduler import ContinuousBatchingScheduler

MODEL = "gpt2-xl"
BATCH = 8
SEQ_LEN = 24
NEW_TOKENS = 16


def _requests(params_for):
    rng = np.random.default_rng(123)
    prompts = [rng.integers(0, 96, size=SEQ_LEN) for _ in range(BATCH)]
    return [
        InferenceRequest(MODEL, WorkloadFamily.LM, prompt, sampling=params_for(i))
        for i, prompt in enumerate(prompts)
    ]


def test_bench_sampled_decode_overhead_within_10pct(
    run_once, best_of, benchmark, serve_trajectory
):
    """Sampled decode rounds vs greedy on the same batch-8 stream."""
    repository = ModelRepository(bits=4, seed=0)
    repository.get(MODEL, WorkloadFamily.LM)  # build outside the timer

    def drain(params_for):
        # Prefix sharing off: every run prefills cold, so the comparison
        # times the decode rounds, not the second run's page-pool hits.
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=BATCH,
            cache_config=KVCacheConfig(bits=4, page_size=8, prefix_sharing=False),
        )
        for request in _requests(params_for):
            scheduler.submit(request)
        return scheduler.run_until_idle()

    def greedy_params(i):
        return SamplingParams(temperature=0, max_new_tokens=NEW_TOKENS)

    def sampled_params(i):
        return SamplingParams(
            temperature=0.8, top_k=40, top_p=0.95, seed=i, max_new_tokens=NEW_TOKENS
        )

    # Machine noise (turbo, GC, co-tenants) dwarfs the few-percent overhead
    # under test, so compare *adjacent* greedy/sampled pairs — a load spike
    # hits both sides of its pair — alternating the order within each pair,
    # and judge the cleanest pair.
    drain(greedy_params)  # warm everything outside the comparison
    pairs = []
    for repeat in range(5):
        if repeat % 2 == 0:
            greedy = best_of(lambda: drain(greedy_params), 1)
            sampled = best_of(lambda: drain(sampled_params), 1)
        else:
            sampled = best_of(lambda: drain(sampled_params), 1)
            greedy = best_of(lambda: drain(greedy_params), 1)
        pairs.append((sampled / greedy, greedy, sampled))
    _, greedy_seconds, sampled_seconds = min(pairs)

    # Equivalence: the explicit temperature=0 params are the legacy greedy path.
    greedy_results = {r.request_id: r.output.token_ids for r in drain(greedy_params)}
    legacy = ContinuousBatchingScheduler(
        repository,
        num_slots=BATCH,
        cache_config=KVCacheConfig(bits=4, page_size=8, prefix_sharing=False),
    )
    rng = np.random.default_rng(123)
    legacy_ids = [
        legacy.submit(
            InferenceRequest(
                MODEL,
                WorkloadFamily.LM,
                rng.integers(0, 96, size=SEQ_LEN),
                max_new_tokens=NEW_TOKENS,
            )
        )
        for _ in range(BATCH)
    ]
    legacy_results = {r.request_id: r.output.token_ids for r in legacy.run_until_idle()}
    assert list(greedy_results.values()) == [
        legacy_results[request_id] for request_id in legacy_ids
    ]

    overhead = sampled_seconds / greedy_seconds - 1.0
    assert sampled_seconds <= greedy_seconds * 1.10, (
        f"sampled decode is {overhead:+.1%} over greedy "
        f"({sampled_seconds * 1e3:.1f}ms vs {greedy_seconds * 1e3:.1f}ms); "
        "the pipeline must stay within 10%"
    )

    run_once(drain, sampled_params)
    benchmark.extra_info.update(
        {
            "batch": BATCH,
            "new_tokens_per_request": NEW_TOKENS,
            "greedy_ms": round(greedy_seconds * 1e3, 2),
            "sampled_ms": round(sampled_seconds * 1e3, 2),
            "sampled_overhead_pct": round(overhead * 100, 2),
        }
    )
    serve_trajectory(
        "sampling",
        greedy_ms=round(greedy_seconds * 1e3, 2),
        sampled_ms=round(sampled_seconds * 1e3, 2),
        sampled_overhead_pct=round(overhead * 100, 2),
    )
