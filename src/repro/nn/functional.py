"""Stateless neural-network math used by the NumPy transformer substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "layer_norm",
    "cross_entropy",
    "one_hot",
    "causal_mask",
    "incremental_causal_mask",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by BERT/GPT-2)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalisation over the last axis with affine parameters."""
    x = np.asarray(x, dtype=np.float64)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    return normed * gamma + beta


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer indices along a new trailing axis."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy (natural log) of integer targets under ``logits``.

    ``logits`` has shape ``(..., num_classes)`` and ``targets`` the matching
    leading shape of integer class indices.
    """
    logp = log_softmax(logits, axis=-1)
    targets = np.asarray(targets, dtype=np.int64)
    gathered = np.take_along_axis(logp, targets[..., None], axis=-1)[..., 0]
    return float(-np.mean(gathered))


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal attention mask of shape ``(seq_len, seq_len)``.

    Future positions receive ``-inf`` so the softmax zeroes them out.
    """
    mask = np.triu(np.ones((seq_len, seq_len), dtype=np.float64), k=1)
    return np.where(mask > 0, -np.inf, 0.0)


def incremental_causal_mask(past_len: int, new_len: int) -> np.ndarray:
    """Additive causal mask for ``new_len`` tokens appended after ``past_len``.

    Shape ``(new_len, past_len + new_len)``: new token ``i`` (global position
    ``past_len + i``) may attend to every key up to its own position.  With
    ``past_len == 0`` this reduces to :func:`causal_mask`.
    """
    key_positions = np.arange(past_len + new_len)
    query_positions = past_len + np.arange(new_len)
    return np.where(key_positions[None, :] > query_positions[:, None], -np.inf, 0.0)
