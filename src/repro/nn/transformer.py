"""Transformer encoder/decoder stacks for the NumPy substrate.

Three architectures are provided, matching the model families evaluated in
the paper:

* :class:`TransformerEncoder` — BERT-style bidirectional encoder;
* :class:`TransformerDecoder` — GPT/OPT/BLOOM-style causal decoder;
* :class:`TransformerEncoderDecoder` — BART-style encoder-decoder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import AttendScratch, MultiHeadAttention
from repro.nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from repro.nn.module import Module

__all__ = [
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
    "TransformerDecoder",
    "TransformerEncoderDecoder",
]


class FeedForward(Module):
    """Two-layer position-wise feed-forward block with GELU."""

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc_in = Linear(hidden_size, intermediate_size, rng=rng)
        self.fc_out = Linear(intermediate_size, hidden_size, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc_out(F.gelu(self.fc_in(x)))


class TransformerEncoderLayer(Module):
    """Pre-norm encoder layer: self-attention + feed-forward with residuals."""

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadAttention(hidden_size, num_heads, rng=rng)
        self.ffn = FeedForward(hidden_size, intermediate_size, rng=rng)
        self.norm_attn = LayerNorm(hidden_size)
        self.norm_ffn = LayerNorm(hidden_size)

    def forward(self, x: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> np.ndarray:
        x = x + self.attention(self.norm_attn(x), attention_mask=attention_mask)
        x = x + self.ffn(self.norm_ffn(x))
        return x


class TransformerDecoderLayer(Module):
    """Pre-norm decoder layer with optional cross-attention."""

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        cross_attention: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(hidden_size, num_heads, rng=rng)
        self.cross_attention = (
            MultiHeadAttention(hidden_size, num_heads, rng=rng) if cross_attention else None
        )
        self.ffn = FeedForward(hidden_size, intermediate_size, rng=rng)
        self.norm_self = LayerNorm(hidden_size)
        self.norm_cross = LayerNorm(hidden_size) if cross_attention else None
        self.norm_ffn = LayerNorm(hidden_size)

    def forward(
        self,
        x: np.ndarray,
        encoder_hidden: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        x = x + self.self_attention(self.norm_self(x), causal=True)
        if self.cross_attention is not None:
            if encoder_hidden is None:
                raise ValueError("cross-attention layer requires encoder_hidden")
            x = x + self.cross_attention(self.norm_cross(x), context=encoder_hidden)
        x = x + self.ffn(self.norm_ffn(x))
        return x

    def forward_incremental(
        self,
        x: np.ndarray,
        layer_caches: Sequence,
        scratch: Optional[AttendScratch] = None,
        batched_rounds: Optional[bool] = None,
        tracer=None,
    ) -> np.ndarray:
        """Decode new tokens against per-sequence KV caches (decoder-only).

        ``x`` is ``(num_seqs, t_new, hidden)`` with one cache per row; see
        :meth:`MultiHeadAttention.forward_incremental`.  ``scratch`` is the
        round-level pad/mask buffer pool shared across layers;
        ``batched_rounds`` forces the ragged round kernel (speculative
        verify rounds feed ``m`` tokens per slot through it); ``tracer``
        (duck-typed, optional) records attend/FFN phase spans.
        """
        if self.cross_attention is not None:
            raise ValueError(
                "incremental decode supports decoder-only layers; "
                "cross-attention layers recompute against encoder states"
            )
        x = x + self.self_attention.forward_incremental(
            self.norm_self(x), layer_caches, scratch=scratch,
            batched_rounds=batched_rounds, tracer=tracer,
        )
        if tracer is not None and tracer.enabled:
            with tracer.span("ffn"):
                return x + self.ffn(self.norm_ffn(x))
        x = x + self.ffn(self.norm_ffn(x))
        return x


class _EmbeddingFrontend(Module):
    """Shared token + positional embedding with a final LayerNorm."""

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        max_positions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.token_embedding = Embedding(vocab_size, hidden_size, rng=rng)
        self.position_embedding = PositionalEmbedding(max_positions, hidden_size, rng=rng)
        self.norm = LayerNorm(hidden_size)

    def forward(
        self,
        token_ids: np.ndarray,
        position_offsets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if position_offsets is None:
            positional = self.position_embedding(token_ids.shape[-1])
        else:
            # Incremental decode: row i of the batch continues at position
            # offsets[i], so each row gathers its own positional rows.
            offsets = np.asarray(position_offsets, dtype=np.int64)
            positions = offsets[:, None] + np.arange(token_ids.shape[-1])
            positional = self.position_embedding.at(positions)
        hidden = self.token_embedding(token_ids) + positional
        return self.norm(hidden)


class TransformerEncoder(Module):
    """BERT-style encoder producing per-token hidden states."""

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        num_layers: int,
        num_heads: int,
        intermediate_size: int,
        max_positions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embeddings = _EmbeddingFrontend(vocab_size, hidden_size, max_positions, rng=rng)
        self.hidden_size = hidden_size
        for i in range(num_layers):
            setattr(
                self,
                f"layer_{i}",
                TransformerEncoderLayer(hidden_size, num_heads, intermediate_size, rng=rng),
            )
        self.num_layers = num_layers
        self.final_norm = LayerNorm(hidden_size)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        hidden = self.embeddings(token_ids)
        for i in range(self.num_layers):
            hidden = getattr(self, f"layer_{i}")(hidden)
        return self.final_norm(hidden)


class TransformerDecoder(Module):
    """GPT-style causal decoder producing per-token hidden states."""

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        num_layers: int,
        num_heads: int,
        intermediate_size: int,
        max_positions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embeddings = _EmbeddingFrontend(vocab_size, hidden_size, max_positions, rng=rng)
        self.hidden_size = hidden_size
        for i in range(num_layers):
            setattr(
                self,
                f"layer_{i}",
                TransformerDecoderLayer(hidden_size, num_heads, intermediate_size, rng=rng),
            )
        self.num_layers = num_layers
        self.final_norm = LayerNorm(hidden_size)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        hidden = self.embeddings(token_ids)
        for i in range(self.num_layers):
            hidden = getattr(self, f"layer_{i}")(hidden)
        return self.final_norm(hidden)

    def forward_incremental(
        self,
        token_ids: np.ndarray,
        caches: Sequence,
        batched_rounds: Optional[bool] = None,
        tracer=None,
        scratch: Optional[AttendScratch] = None,
    ) -> np.ndarray:
        """Run only the new tokens, appending K/V to per-sequence caches.

        Parameters
        ----------
        token_ids:
            ``(num_seqs, t_new)`` new token ids (a 1-D array is treated as a
            single sequence).  All rows must share ``t_new``; sequences at
            different stages are handled by their caches' past lengths.
        caches:
            One :class:`~repro.serve.kvcache.SequenceKVCache` (or anything
            exposing ``seq_len``/``layer(i)``) per row.
        batched_rounds:
            Route attention through the ragged round kernel.  Defaults to
            auto (single-token multi-slot rounds only); a speculative verify
            round passes ``True`` so all ``m`` tokens of every slot advance
            in one bucketed attend instead of the per-sequence prefill loop.
        scratch:
            Optional persistent :class:`AttendScratch` owned by the caller
            (the scheduler keeps one for the serve loop's lifetime, so round
            temporaries stop reallocating every round).  ``None`` keeps the
            old behaviour of one fresh scratch per batched round; either way
            the outputs are bitwise identical.

        Returns hidden states of the new positions, ``(num_seqs, t_new, h)``.
        Appending a whole sequence to an empty cache computes exactly what
        :meth:`forward` computes for that sequence.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        if token_ids.ndim != 2:
            raise ValueError("incremental decode expects (num_seqs, t_new) token ids")
        if len(caches) != token_ids.shape[0]:
            raise ValueError(
                f"got {token_ids.shape[0]} sequences but {len(caches)} caches"
            )
        offsets = np.array([cache.seq_len for cache in caches], dtype=np.int64)
        if tracer is not None and tracer.enabled:
            with tracer.span("embed"):
                hidden = self.embeddings(token_ids, position_offsets=offsets)
        else:
            hidden = self.embeddings(token_ids, position_offsets=offsets)
        # A multi-slot decode/verify round reuses one pad/mask scratch across
        # all layers (bucket shapes are identical layer to layer in a round).
        # A caller-owned scratch persists across rounds; begin_round() drops
        # the previous round's masks while keeping the buffer allocations.
        if batched_rounds is None:
            batched_rounds = token_ids.shape[0] > 1 and token_ids.shape[1] == 1
        if batched_rounds:
            if scratch is None:
                scratch = AttendScratch()
            else:
                scratch.begin_round()
        else:
            scratch = None
        for i in range(self.num_layers):
            layer_caches = [cache.layer(i) for cache in caches]
            hidden = getattr(self, f"layer_{i}").forward_incremental(
                hidden, layer_caches, scratch=scratch, batched_rounds=batched_rounds,
                tracer=tracer,
            )
        return self.final_norm(hidden)


class TransformerEncoderDecoder(Module):
    """BART-style encoder-decoder producing decoder-side hidden states."""

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        num_layers: int,
        num_heads: int,
        intermediate_size: int,
        max_positions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.encoder = TransformerEncoder(
            vocab_size, hidden_size, num_layers, num_heads, intermediate_size, max_positions, rng=rng
        )
        self.embeddings = _EmbeddingFrontend(vocab_size, hidden_size, max_positions, rng=rng)
        self.hidden_size = hidden_size
        for i in range(num_layers):
            setattr(
                self,
                f"decoder_layer_{i}",
                TransformerDecoderLayer(
                    hidden_size, num_heads, intermediate_size, cross_attention=True, rng=rng
                ),
            )
        self.num_layers = num_layers
        self.final_norm = LayerNorm(hidden_size)

    def forward(self, token_ids: np.ndarray, decoder_token_ids: Optional[np.ndarray] = None) -> np.ndarray:
        if decoder_token_ids is None:
            decoder_token_ids = token_ids
        encoder_hidden = self.encoder(token_ids)
        hidden = self.embeddings(decoder_token_ids)
        for i in range(self.num_layers):
            hidden = getattr(self, f"decoder_layer_{i}")(hidden, encoder_hidden=encoder_hidden)
        return self.final_norm(hidden)
