"""Task heads attached to the transformer backbones.

These cover the three evaluation families of the paper:

* :class:`ClassificationHead` — GLUE-style sequence classification/regression;
* :class:`SpanHead` — SQuAD-style start/end span extraction;
* :class:`LMHead` — next-token language-model logits for perplexity.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["ClassificationHead", "SpanHead", "LMHead"]


class ClassificationHead(Module):
    """Pool the first token and project to class logits (or a scalar score)."""

    def __init__(
        self,
        hidden_size: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dense = Linear(hidden_size, hidden_size, rng=rng)
        self.classifier = Linear(hidden_size, num_classes, rng=rng)
        self.num_classes = int(num_classes)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        pooled = np.tanh(self.dense(hidden[:, 0]))
        return self.classifier(pooled)


class SpanHead(Module):
    """Per-token start/end logits for extractive question answering."""

    def __init__(self, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.span_proj = Linear(hidden_size, 2, rng=rng)

    def forward(self, hidden: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits = self.span_proj(hidden)
        return logits[..., 0], logits[..., 1]


class LMHead(Module):
    """Project hidden states to vocabulary logits.

    ``temperature`` sharpens the output distribution; the synthetic model zoo
    uses it to give the teacher model a confidently-peaked predictive
    distribution so that perplexity sits in a realistic range.
    """

    def __init__(
        self,
        hidden_size: int,
        vocab_size: int,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.proj = Linear(hidden_size, vocab_size, bias=False, rng=rng)
        self.temperature = float(temperature)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        return self.proj(hidden) / self.temperature

    def log_probs(self, hidden: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary."""
        return F.log_softmax(self.forward(hidden), axis=-1)
