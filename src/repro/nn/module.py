"""A minimal, forward-only neural-network module system built on NumPy.

The OliVe paper evaluates post-training quantization, so the substrate only
needs inference.  This module system intentionally mirrors the small subset of
the ``torch.nn`` API the quantization framework relies on:

* :class:`Parameter` — a named, mutable weight tensor;
* :class:`Module` — a container that tracks parameters and child modules,
  supports recursive traversal (``named_parameters``, ``named_modules``) and
  child replacement (used to swap ``Linear`` for its fake-quantized wrapper).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable/quantizable tensor with a stable identity."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    def copy_(self, values: np.ndarray) -> None:
        """In-place overwrite, preserving dtype and shape."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch in copy_: {values.shape} vs {self.data.shape}"
            )
        self.data = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; the base class keeps registries so the whole tree can be
    traversed generically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    # ------------------------------------------------------------------ #
    # Attribute tracking
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        """Immediate child modules."""
        yield from self._modules.items()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """All modules in the tree, including ``self`` (depth-first)."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """All parameters in the tree with dotted names."""
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        """Flat list of all parameters."""
        return [p for _, p in self.named_parameters()]

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Overwrite parameters from a :meth:`state_dict`-style mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            param.copy_(state[name])

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Child replacement (used by the quantization framework)
    # ------------------------------------------------------------------ #
    def get_submodule(self, dotted: str) -> "Module":
        """Fetch a descendant module by dotted path."""
        module: Module = self
        if not dotted:
            return module
        for part in dotted.split("."):
            module = module._modules[part]
        return module

    def set_submodule(self, dotted: str, new_module: "Module") -> None:
        """Replace a descendant module by dotted path."""
        if not dotted:
            raise ValueError("cannot replace the root module")
        *parents, leaf = dotted.split(".")
        parent = self.get_submodule(".".join(parents))
        setattr(parent, leaf, new_module)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to every module in the tree (children first)."""
        for _, child in self._modules.items():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
