"""Fake-quantization wrappers for post-training quantization (PTQ).

Quantized inference is simulated the same way the paper's PyTorch framework
does it: each GEMM operand (weight tensor and input activation) is passed
through a quantize→dequantize round trip before the floating-point matmul.
This isolates the *numerical* effect of the encoding from the hardware model,
which is simulated separately in :mod:`repro.sim`.

:class:`QuantizedLinear` replaces a :class:`repro.nn.layers.Linear`.  It holds
two quantizer objects (any object with ``fit``/``quantize``; see
:mod:`repro.quant.base`):

* the weight quantizer is fitted once, eagerly, on the layer weight;
* the activation quantizer is fitted during a *calibration* pass over one
  batch of data (paper Sec. 3.4: "we still need to use one batch of data from
  the training set for the scale factor selection").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter

__all__ = ["QuantizedLinear", "set_calibration", "iter_quantized_linears"]


class QuantizedLinear(Module):
    """A Linear layer whose weight and input activations are fake-quantized."""

    def __init__(
        self,
        linear: Linear,
        weight_quantizer=None,
        activation_quantizer=None,
    ) -> None:
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.weight = Parameter(linear.weight.data.copy())
        self.bias = Parameter(linear.bias.data.copy()) if linear.bias is not None else None
        self.weight_quantizer = weight_quantizer
        self.activation_quantizer = activation_quantizer
        self.calibrating = False
        self._quantized_weight: Optional[np.ndarray] = None
        if weight_quantizer is not None:
            weight_quantizer.fit(self.weight.data)
            self._quantized_weight = weight_quantizer.quantize(self.weight.data)

    # ------------------------------------------------------------------ #
    # Calibration control
    # ------------------------------------------------------------------ #
    def begin_calibration(self) -> None:
        """Enter calibration mode: the next forward fits the activation quantizer."""
        self.calibrating = True

    def end_calibration(self) -> None:
        """Leave calibration mode."""
        self.calibrating = False

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.activation_quantizer is not None:
            if self.calibrating:
                self.activation_quantizer.fit(x)
            x = self.activation_quantizer.quantize(x)
        weight = (
            self._quantized_weight if self._quantized_weight is not None else self.weight.data
        )
        out = x @ weight.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def gemm_shape(self, batch_tokens: int) -> tuple:
        """``(M, K, N)`` of the GEMM this layer performs on ``batch_tokens`` rows."""
        return (batch_tokens, self.in_features, self.out_features)


def set_calibration(model: Module, enabled: bool) -> None:
    """Toggle calibration mode on every :class:`QuantizedLinear` in ``model``."""
    for _, module in model.named_modules():
        if isinstance(module, QuantizedLinear):
            if enabled:
                module.begin_calibration()
            else:
                module.end_calibration()


def iter_quantized_linears(model: Module):
    """Yield ``(dotted_name, QuantizedLinear)`` pairs of ``model``."""
    for name, module in model.named_modules():
        if isinstance(module, QuantizedLinear):
            yield name, module
