"""Basic layers of the NumPy transformer substrate: Linear, LayerNorm, Embedding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "LayerNorm", "Embedding", "PositionalEmbedding"]


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Weights are stored as ``(out_features, in_features)`` to mirror the usual
    deep-learning convention; this is also the tensor the GEMM simulators and
    quantizers operate on.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = rng or np.random.default_rng(0)
        std = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(rng.normal(0.0, std, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            # One flat GEMM: ``(batch, seq, in) @ W.T`` would dispatch a
            # *per-batch-row* GEMM loop that re-streams the whole weight
            # matrix for every row — at decode widths (seq of 1-4 tokens)
            # that multiplies the weight traffic by the batch size and
            # dominates the round.  Flattening the leading axes keeps a
            # single weight pass regardless of batch shape.
            lead = x.shape[:-1]
            out = x.reshape(-1, self.in_features) @ self.weight.data.T
            out = out.reshape(*lead, self.out_features)
        else:
            out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def gemm_shape(self, batch_tokens: int) -> tuple:
        """``(M, K, N)`` of the GEMM this layer performs on ``batch_tokens`` rows."""
        return (batch_tokens, self.in_features, self.out_features)


class LayerNorm(Module):
    """Layer normalisation with learnable gain and bias."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = int(normalized_shape)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.layer_norm(x, self.gamma.data, self.beta.data, self.eps)


class Embedding(Module):
    """Token embedding lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if np.any(token_ids < 0) or np.any(token_ids >= self.num_embeddings):
            raise ValueError("token id out of vocabulary range")
        return self.weight.data[token_ids]


class PositionalEmbedding(Module):
    """Learned absolute positional embedding."""

    def __init__(
        self,
        max_positions: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.max_positions = int(max_positions)
        self.embedding_dim = int(embedding_dim)
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(max_positions, embedding_dim)))

    def forward(self, seq_len: int, offset: int = 0) -> np.ndarray:
        if offset < 0:
            raise ValueError("position offset must be >= 0")
        if offset + seq_len > self.max_positions:
            raise ValueError(
                f"sequence length {offset + seq_len} exceeds max positions "
                f"{self.max_positions}"
            )
        return self.weight.data[offset:offset + seq_len]

    def at(self, positions: np.ndarray) -> np.ndarray:
        """Embedding rows of explicit ``positions`` (incremental decode path).

        Each sequence of a decode round sits at a different past length, so
        the batched incremental step gathers one position row per sequence.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) >= self.max_positions
        ):
            raise ValueError(
                f"position index out of range [0, {self.max_positions}); "
                "the sequence outgrew the model's positional table"
            )
        return self.weight.data[positions]
