"""NumPy transformer substrate (forward-only) used by the OliVe reproduction."""

from repro.nn import functional
from repro.nn.attention import MultiHeadAttention
from repro.nn.fakequant import QuantizedLinear, iter_quantized_linears, set_calibration
from repro.nn.heads import ClassificationHead, LMHead, SpanHead
from repro.nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from repro.nn.module import Module, Parameter
from repro.nn.transformer import (
    FeedForward,
    TransformerDecoder,
    TransformerDecoderLayer,
    TransformerEncoder,
    TransformerEncoderDecoder,
    TransformerEncoderLayer,
)

__all__ = [
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Embedding",
    "PositionalEmbedding",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
    "TransformerDecoder",
    "TransformerEncoderDecoder",
    "ClassificationHead",
    "SpanHead",
    "LMHead",
    "QuantizedLinear",
    "set_calibration",
    "iter_quantized_linears",
]
