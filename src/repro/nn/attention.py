"""Multi-head attention for the NumPy transformer substrate."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``context is None``), cross-attention (BART-style
    decoder) and causal masking (GPT-style decoding).  The four projection
    matrices (Q, K, V, output) are ordinary :class:`Linear` layers, which is
    exactly where the OliVe quantization framework attaches its fake-quant
    wrappers.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        self.hidden_size = int(hidden_size)
        self.num_heads = int(num_heads)
        self.head_dim = hidden_size // num_heads
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.k_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.v_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.out_proj = Linear(hidden_size, hidden_size, rng=rng)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)  # (batch, heads, seq, head_dim)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def forward(
        self,
        hidden: np.ndarray,
        context: Optional[np.ndarray] = None,
        causal: bool = False,
        attention_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run attention.

        Parameters
        ----------
        hidden:
            Query-side input of shape ``(batch, seq, hidden)``.
        context:
            Key/value-side input for cross-attention; defaults to ``hidden``.
        causal:
            Apply a lower-triangular mask (decoder self-attention).
        attention_mask:
            Optional additive mask broadcastable to ``(batch, heads, q, k)``.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        kv_input = hidden if context is None else np.asarray(context, dtype=np.float64)

        q = self._split_heads(self.q_proj(hidden))
        k = self._split_heads(self.k_proj(kv_input))
        v = self._split_heads(self.v_proj(kv_input))

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if causal:
            scores = scores + F.causal_mask(scores.shape[-1])[None, None]
        if attention_mask is not None:
            scores = scores + attention_mask
        weights = F.softmax(scores, axis=-1)
        attended = weights @ v
        return self.out_proj(self._merge_heads(attended))

    def forward_incremental(
        self, hidden: np.ndarray, layer_caches: Sequence
    ) -> np.ndarray:
        """Causal self-attention over cached K/V plus the new tokens.

        Parameters
        ----------
        hidden:
            New-token hidden states of shape ``(num_seqs, t_new, hidden)``.
            Each row is an independent sequence: row ``i``'s K/V are appended
            to ``layer_caches[i]`` and attention runs over that sequence's
            full cached history.  Prefill passes one row with the whole
            prompt; a continuous-batching decode round passes one single-token
            row per active slot.
        layer_caches:
            One per-sequence cache (``append``/``kv``/``seq_len``, e.g.
            :class:`~repro.serve.kvcache.LayerKVCache`) per row of ``hidden``.

        The four projections are computed for the new tokens only — one
        batched GEMM across all rows — so a decode step costs O(1) GEMM work
        per token instead of recomputing the whole prefix.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        if hidden.ndim != 3:
            raise ValueError("incremental attention expects (num_seqs, t_new, hidden)")
        if len(layer_caches) != hidden.shape[0]:
            raise ValueError(
                f"got {hidden.shape[0]} sequences but {len(layer_caches)} layer caches"
            )
        q = self._split_heads(self.q_proj(hidden))
        k_new = self._split_heads(self.k_proj(hidden))
        v_new = self._split_heads(self.v_proj(hidden))
        num_seqs, t_new = hidden.shape[0], hidden.shape[1]

        if t_new == 1 and num_seqs > 1:
            return self.out_proj(
                self._merge_heads(self._attend_round(q, k_new, v_new, layer_caches))
            )
        attended = np.empty_like(q)
        for i, cache in enumerate(layer_caches):
            past = cache.seq_len
            cache.append(k_new[i], v_new[i])
            k, v = cache.kv()  # (heads, past + t_new, head_dim)
            scores = q[i] @ k.transpose(0, 2, 1) / np.sqrt(self.head_dim)
            if t_new > 1:
                scores = scores + F.incremental_causal_mask(past, t_new)[None]
            attended[i] = F.softmax(scores, axis=-1) @ v
        return self.out_proj(self._merge_heads(attended))

    def _attend_round(
        self, q: np.ndarray, k_new: np.ndarray, v_new: np.ndarray, layer_caches: Sequence
    ) -> np.ndarray:
        """Single-token attend across sequences, padded to one batched GEMM.

        Sequences in a decode round have ragged cached lengths; their K/V are
        right-padded to the round's longest and the padding masked to
        ``-inf``, so the scores/softmax/attend chain runs as one batched op
        instead of a per-slot loop.  Mathematically identical to the per-slot
        path (softmax sends masked columns to exactly zero weight).
        """
        num_seqs, num_heads, _, head_dim = q.shape
        for i, cache in enumerate(layer_caches):
            cache.append(k_new[i], v_new[i])
        # Caches that support it decode every slot's sealed pages in one
        # batched pass (duck-typed so this module stays serve-agnostic).
        kv_many = getattr(type(layer_caches[0]), "kv_many", None)
        if kv_many is not None:
            kvs = kv_many(layer_caches)
        else:
            kvs = [cache.kv() for cache in layer_caches]
        lengths = [k.shape[1] for k, _ in kvs]
        max_len = max(lengths)
        k_pad = np.zeros((num_seqs, num_heads, max_len, head_dim))
        v_pad = np.zeros((num_seqs, num_heads, max_len, head_dim))
        mask = np.full((num_seqs, 1, 1, max_len), -np.inf)
        for i, (k, v) in enumerate(kvs):
            k_pad[i, :, : lengths[i]] = k
            v_pad[i, :, : lengths[i]] = v
            mask[i, ..., : lengths[i]] = 0.0
        scores = q @ k_pad.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim) + mask
        return F.softmax(scores, axis=-1) @ v_pad
