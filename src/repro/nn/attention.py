"""Multi-head attention for the NumPy transformer substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``context is None``), cross-attention (BART-style
    decoder) and causal masking (GPT-style decoding).  The four projection
    matrices (Q, K, V, output) are ordinary :class:`Linear` layers, which is
    exactly where the OliVe quantization framework attaches its fake-quant
    wrappers.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        self.hidden_size = int(hidden_size)
        self.num_heads = int(num_heads)
        self.head_dim = hidden_size // num_heads
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.k_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.v_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.out_proj = Linear(hidden_size, hidden_size, rng=rng)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)  # (batch, heads, seq, head_dim)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def forward(
        self,
        hidden: np.ndarray,
        context: Optional[np.ndarray] = None,
        causal: bool = False,
        attention_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run attention.

        Parameters
        ----------
        hidden:
            Query-side input of shape ``(batch, seq, hidden)``.
        context:
            Key/value-side input for cross-attention; defaults to ``hidden``.
        causal:
            Apply a lower-triangular mask (decoder self-attention).
        attention_mask:
            Optional additive mask broadcastable to ``(batch, heads, q, k)``.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        kv_input = hidden if context is None else np.asarray(context, dtype=np.float64)

        q = self._split_heads(self.q_proj(hidden))
        k = self._split_heads(self.k_proj(kv_input))
        v = self._split_heads(self.v_proj(kv_input))

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if causal:
            scores = scores + F.causal_mask(scores.shape[-1])[None, None]
        if attention_mask is not None:
            scores = scores + attention_mask
        weights = F.softmax(scores, axis=-1)
        attended = weights @ v
        return self.out_proj(self._merge_heads(attended))
