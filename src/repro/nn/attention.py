"""Multi-head attention for the NumPy transformer substrate."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = [
    "AttendScratch",
    "MultiHeadAttention",
    "attend_padding_waste",
    "bucket_by_length",
]

#: Smallest ragged-attend bucket: slots shorter than this share one bucket,
#: so a round never fragments into per-slot GEMMs at small cached lengths.
MIN_ATTEND_BUCKET = 16


class _NullSpan:
    """No-op context manager so the untraced bucket loop stays branch-free."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_BUCKET_SPAN = _NullSpan()


def bucket_by_length(
    lengths: Sequence[int], min_bucket: int = MIN_ATTEND_BUCKET
) -> List[Tuple[List[int], int]]:
    """Group slot indices into power-of-two length buckets.

    Slots land in the bucket of the next power of two at or above their
    cached length (clamped below at ``min_bucket``); each bucket is then
    padded only to its own longest member.  Uniform lengths therefore
    collapse to a single bucket padded exactly like the all-slots padded
    path, while mixed lengths split so short slots stop paying the longest
    slot's padded GEMM.

    Returns ``[(slot_indices, pad_len), ...]`` ordered by bucket capacity,
    indices in slot order.  Shared by the bucketed attend kernel and the
    padding-waste accounting, so measurements match what actually ran.
    """
    buckets: dict = {}
    for index, length in enumerate(lengths):
        length = int(length)
        capacity = max(int(min_bucket), 1 << max(length - 1, 0).bit_length())
        buckets.setdefault(capacity, []).append(index)
    return [
        (indices, max(int(lengths[i]) for i in indices))
        for _, indices in sorted(buckets.items())
    ]


def attend_padding_waste(
    lengths: Sequence[int], min_bucket: int = MIN_ATTEND_BUCKET
) -> Tuple[float, float]:
    """Fraction of padded K/V cells that are masked-out waste.

    Returns ``(padded_waste, bucketed_waste)``: the single-bucket padded
    attend pads every slot to the round's longest sequence, the bucketed
    attend pads each bucket to its own longest member.
    """
    useful = float(sum(int(n) for n in lengths))
    padded = float(len(lengths) * max(int(n) for n in lengths))
    bucketed = float(
        sum(len(indices) * pad_len for indices, pad_len in bucket_by_length(lengths, min_bucket))
    )
    return 1.0 - useful / padded, 1.0 - useful / bucketed


class AttendScratch:
    """Reusable pad/mask/temporary buffers for decode rounds.

    A decode round runs every decoder layer over the same slots with the
    same cached lengths, so the padded K/V scratch and the additive length
    mask have identical shapes layer after layer.  The round's caller
    (:meth:`TransformerDecoder.forward_incremental
    <repro.nn.transformer.TransformerDecoder.forward_incremental>`) threads
    one scratch through all layers: buffers allocate once per round instead
    of once per layer, and the mask builds once per round.

    A scratch may also persist *across* rounds (the scheduler owns one for
    the lifetime of the serve loop) — the owner calls :meth:`begin_round`
    at each round boundary.  Masks depend on the round's slot lengths, so
    they rebuild every round; pad buffers and the generic :meth:`buffer`
    temporaries survive, because every value read out of them is either
    freshly written this round or masked to ``-inf`` (zero softmax weight).
    Stale K/V values beyond a slot's length are finite (they were real K/V
    once, and the buffers zero-initialise on allocation), so no NaN/Inf
    garbage can leak through the ``0 × value`` products.
    """

    def __init__(self) -> None:
        self._pads: dict = {}
        self._masks: dict = {}
        self._buffers: dict = {}

    def begin_round(self) -> None:
        """Reset per-round state while keeping the allocations.

        Must be called at every round boundary when the scratch persists
        across rounds: the cached masks encode the *previous* round's slot
        lengths and must rebuild, while pads and temporaries may be reused.
        """
        self._masks.clear()

    def pads(self, key, shape: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
        """The round's reusable ``(k_pad, v_pad)`` buffers for one bucket."""
        pads = self._pads.get(key)
        if pads is None or pads[0].shape != shape:
            pads = (np.zeros(shape), np.zeros(shape))
            self._pads[key] = pads
        return pads

    def mask(self, key, build) -> np.ndarray:
        """The round's additive length mask for one bucket (built once)."""
        mask = self._masks.get(key)
        if mask is None:
            mask = build()
            self._masks[key] = mask
        return mask

    def buffer(self, key, shape: Tuple[int, ...]) -> np.ndarray:
        """A reusable named temporary of ``shape`` (contents unspecified).

        Used for the round's fully-overwritten intermediates (fused QKV
        output, attended values, per-bucket score matrices) so the hot loop
        stops allocating fresh arrays layer after layer.  Callers must write
        every element they later read — nothing is zeroed on reuse.
        """
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape)
            self._buffers[key] = buf
        return buf


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``context is None``), cross-attention (BART-style
    decoder) and causal masking (GPT-style decoding).  The four projection
    matrices (Q, K, V, output) are ordinary :class:`Linear` layers, which is
    exactly where the OliVe quantization framework attaches its fake-quant
    wrappers.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        self.hidden_size = int(hidden_size)
        self.num_heads = int(num_heads)
        self.head_dim = hidden_size // num_heads
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.k_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.v_proj = Linear(hidden_size, hidden_size, rng=rng)
        self.out_proj = Linear(hidden_size, hidden_size, rng=rng)
        # Lazily-built (source_arrays, (W_qkv^T, b_qkv)) pair for the fused
        # decode-round projection; invalidated by identity whenever any of
        # the six source weight/bias arrays is replaced (e.g. by packing).
        self._fused_qkv = None

    #: Decode-round Q/K/V projection: "fused" concatenates the three weight
    #: matrices once and runs a single GEMM per round (the production path);
    #: "unfused" runs the three Linear projections separately — the oracle
    #: the greedy-token-identity tests pin the fused path against.
    qkv_mode: str = "fused"

    def _fused_qkv_operands(self):
        """Cached ``(W_qkv^T, b_qkv)`` for the fused round projection.

        Only plain :class:`Linear` projections fuse — a quantization wrapper
        must keep running its own ``forward``, so any subclass falls back to
        the unfused path.  The cache holds references to the six source
        arrays and rebuilds when any is replaced (``is`` comparison), which
        is how the packing/finalise passes swap weights in this codebase.
        """
        for proj in (self.q_proj, self.k_proj, self.v_proj):
            if type(proj) is not Linear or proj.bias is None:
                return None
        sources = (
            self.q_proj.weight.data, self.k_proj.weight.data,
            self.v_proj.weight.data, self.q_proj.bias.data,
            self.k_proj.bias.data, self.v_proj.bias.data,
        )
        cached = self._fused_qkv
        if cached is not None and all(a is b for a, b in zip(cached[0], sources)):
            return cached[1]
        weight_t = np.concatenate([w.T for w in sources[:3]], axis=1)
        bias = np.concatenate(sources[3:])
        operands = (np.ascontiguousarray(weight_t), bias)
        self._fused_qkv = (sources, operands)
        return operands

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)  # (batch, heads, seq, head_dim)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def forward(
        self,
        hidden: np.ndarray,
        context: Optional[np.ndarray] = None,
        causal: bool = False,
        attention_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run attention.

        Parameters
        ----------
        hidden:
            Query-side input of shape ``(batch, seq, hidden)``.
        context:
            Key/value-side input for cross-attention; defaults to ``hidden``.
        causal:
            Apply a lower-triangular mask (decoder self-attention).
        attention_mask:
            Optional additive mask broadcastable to ``(batch, heads, q, k)``.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        kv_input = hidden if context is None else np.asarray(context, dtype=np.float64)

        q = self._split_heads(self.q_proj(hidden))
        k = self._split_heads(self.k_proj(kv_input))
        v = self._split_heads(self.v_proj(kv_input))

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if causal:
            scores = scores + F.causal_mask(scores.shape[-1])[None, None]
        if attention_mask is not None:
            scores = scores + attention_mask
        weights = F.softmax(scores, axis=-1)
        attended = weights @ v
        return self.out_proj(self._merge_heads(attended))

    def forward_incremental(
        self,
        hidden: np.ndarray,
        layer_caches: Sequence,
        scratch: Optional[AttendScratch] = None,
        batched_rounds: Optional[bool] = None,
        tracer=None,
    ) -> np.ndarray:
        """Causal self-attention over cached K/V plus the new tokens.

        Parameters
        ----------
        hidden:
            New-token hidden states of shape ``(num_seqs, t_new, hidden)``.
            Each row is an independent sequence: row ``i``'s K/V are appended
            to ``layer_caches[i]`` and attention runs over that sequence's
            full cached history.  Prefill passes one row with the whole
            prompt; a continuous-batching decode round passes one single-token
            row per active slot; a speculative verify round passes ``m``
            tokens per slot.
        layer_caches:
            One per-sequence cache (``append``/``kv``/``seq_len``, e.g.
            :class:`~repro.serve.kvcache.LayerKVCache`) per row of ``hidden``.
        scratch:
            Optional round-level :class:`AttendScratch` so the decode-round
            pad/mask buffers allocate once per round, not once per layer.
        batched_rounds:
            Route through the ragged round kernel (:meth:`_attend_round`).
            Defaults to auto: single-token multi-slot rounds take the kernel,
            everything else (prefill) the per-sequence loop.  Speculative
            verify passes ``True`` so its ``m``-token rows ride the bucketed
            round kernel instead of the loop.
        tracer:
            Optional span tracer (``span(name, attrs=None)`` context-manager
            protocol, duck-typed so this module stays serve-agnostic).  The
            round kernel records ``kv_append`` and per-bucket ``attend``
            spans; ``None`` (the default) keeps the hot path untouched.

        The four projections are computed for the new tokens only — one
        batched GEMM across all rows — so a decode step costs O(1) GEMM work
        per token instead of recomputing the whole prefix.
        """
        hidden = np.asarray(hidden, dtype=np.float64)
        if hidden.ndim != 3:
            raise ValueError("incremental attention expects (num_seqs, t_new, hidden)")
        if len(layer_caches) != hidden.shape[0]:
            raise ValueError(
                f"got {hidden.shape[0]} sequences but {len(layer_caches)} layer caches"
            )
        num_seqs, t_new = hidden.shape[0], hidden.shape[1]
        if batched_rounds is None:
            batched_rounds = t_new == 1 and num_seqs > 1
        # Fuse only the round kernel: prefill stays on the three separate
        # projections so the one-shot prefill path remains bitwise-equal to
        # ``forward`` (the round loop pins token identity, not bitwise).
        fused = (
            self._fused_qkv_operands()
            if batched_rounds and self.qkv_mode == "fused"
            else None
        )
        traced = tracer is not None and tracer.enabled
        with tracer.span("qkv_proj") if traced else _NULL_BUCKET_SPAN:
            if fused is not None:
                weight_t, bias = fused
                shape = (num_seqs, t_new, weight_t.shape[1])
                # Flatten to one GEMM: a 3-D ``matmul`` would loop
                # per-sequence GEMMs, re-streaming the fused weight for
                # every slot in the round.
                flat = hidden.reshape(-1, hidden.shape[-1])
                if scratch is not None:
                    qkv = scratch.buffer("qkv", shape)
                    np.matmul(flat, weight_t, out=qkv.reshape(flat.shape[0], -1))
                else:
                    qkv = (flat @ weight_t).reshape(shape)
                qkv += bias
                size = self.hidden_size
                q = self._split_heads(qkv[..., :size])
                k_new = self._split_heads(qkv[..., size : 2 * size])
                v_new = self._split_heads(qkv[..., 2 * size :])
            else:
                q = self._split_heads(self.q_proj(hidden))
                k_new = self._split_heads(self.k_proj(hidden))
                v_new = self._split_heads(self.v_proj(hidden))
        if batched_rounds:
            attended = self._attend_round(
                q, k_new, v_new, layer_caches, scratch=scratch, tracer=tracer
            )
            if tracer is not None and tracer.enabled:
                with tracer.span("out_proj"):
                    return self.out_proj(self._merge_heads(attended))
            return self.out_proj(self._merge_heads(attended))
        attended = np.empty_like(q)
        for i, cache in enumerate(layer_caches):
            past = cache.seq_len
            cache.append(k_new[i], v_new[i])
            k, v = cache.kv()  # (heads, past + t_new, head_dim)
            scores = q[i] @ k.transpose(0, 2, 1) / np.sqrt(self.head_dim)
            if t_new > 1:
                scores = scores + F.incremental_causal_mask(past, t_new)[None]
            attended[i] = F.softmax(scores, axis=-1) @ v
        return self.out_proj(self._merge_heads(attended))

    #: Ragged decode-round attend kernel: "bucketed" (length-bucketed GEMMs,
    #: the production path) or "padded" (pad every slot to the round's
    #: longest — the equivalence oracle the tests compare against).
    ragged_attend: str = "bucketed"

    def _attend_round(
        self,
        q: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        layer_caches: Sequence,
        scratch: Optional[AttendScratch] = None,
        tracer=None,
    ) -> np.ndarray:
        """Batched attend across ragged sequences (one decode/verify round).

        ``q`` is ``(num_seqs, heads, t_new, head_dim)``: ``t_new == 1`` is
        the classic continuous-batching decode round, ``t_new > 1`` the
        speculative verify round where every slot advances ``m`` tokens at
        once (queries mask causally inside the appended block).  Appends each
        slot's new K/V, fetches every slot's cached history (one batched
        page-pool pass for caches that support ``kv_many``) and dispatches to
        the bucketed kernel or the padded oracle according to
        :attr:`ragged_attend`.
        """
        traced = tracer is not None and tracer.enabled
        if traced:
            with tracer.span("kv_append", attrs={"slots": len(layer_caches)}):
                for i, cache in enumerate(layer_caches):
                    cache.append(k_new[i], v_new[i])
        else:
            for i, cache in enumerate(layer_caches):
                cache.append(k_new[i], v_new[i])
        # Caches that support it decode every slot's sealed pages in one
        # batched pass (duck-typed so this module stays serve-agnostic).
        kv_many = getattr(type(layer_caches[0]), "kv_many", None)
        if kv_many is not None:
            kvs = kv_many(layer_caches)
        else:
            kvs = [cache.kv() for cache in layer_caches]
        lengths = [k.shape[1] for k, _ in kvs]
        if self.ragged_attend == "padded":
            if traced:
                with tracer.span(
                    "attend", attrs={"bucket": max(lengths), "slots": len(lengths)}
                ):
                    return self._padded_attend(q, kvs, lengths)
            return self._padded_attend(q, kvs, lengths)
        return self._bucketed_attend(q, kvs, lengths, scratch=scratch, tracer=tracer)

    @staticmethod
    def _round_mask(
        lengths: Sequence[int], indices: Sequence[int], pad_len: int, t_new: int
    ) -> np.ndarray:
        """Additive length mask of one bucket of a decode/verify round.

        For ``t_new == 1`` this is the classic per-slot length mask.  For a
        verify round the block of ``t_new`` appended tokens masks causally:
        query row ``j`` of slot ``i`` may attend the ``lengths[i] - t_new +
        1 + j`` oldest keys (its full past plus the appended tokens up to and
        including itself).
        """
        if t_new == 1:
            mask = np.full((len(indices), 1, 1, pad_len), -np.inf)
            for row, i in enumerate(indices):
                mask[row, ..., : lengths[i]] = 0.0
            return mask
        mask = np.full((len(indices), 1, t_new, pad_len), -np.inf)
        for row, i in enumerate(indices):
            for j in range(t_new):
                mask[row, 0, j, : lengths[i] - t_new + 1 + j] = 0.0
        return mask

    def _padded_attend(
        self, q: np.ndarray, kvs: Sequence, lengths: Sequence[int]
    ) -> np.ndarray:
        """Pad every slot to the round's longest sequence — the oracle path.

        K/V are right-padded to the round's longest and the padding masked to
        ``-inf``, so the scores/softmax/attend chain runs as one batched op
        instead of a per-slot loop.  Mathematically identical to the per-slot
        path (softmax sends masked columns to exactly zero weight).  At large
        slot counts the short slots pay the longest slot's GEMM — the padding
        waste the bucketed kernel removes.
        """
        num_seqs, num_heads, t_new, head_dim = q.shape
        max_len = max(lengths)
        k_pad = np.zeros((num_seqs, num_heads, max_len, head_dim))
        v_pad = np.zeros((num_seqs, num_heads, max_len, head_dim))
        mask = self._round_mask(lengths, range(num_seqs), max_len, t_new)
        for i, (k, v) in enumerate(kvs):
            k_pad[i, :, : lengths[i]] = k
            v_pad[i, :, : lengths[i]] = v
        scores = q @ k_pad.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim) + mask
        return F.softmax(scores, axis=-1) @ v_pad

    def _bucketed_attend(
        self,
        q: np.ndarray,
        kvs: Sequence,
        lengths: Sequence[int],
        scratch: Optional[AttendScratch] = None,
        tracer=None,
    ) -> np.ndarray:
        """Length-bucketed ragged attend: one padded GEMM per pow-2 bucket.

        Slots group into power-of-two length buckets; each bucket pads only
        to its own longest member, so a round mixing 16- and 512-token slots
        runs a small GEMM and a large GEMM instead of padding everything to
        512.  With a round-level ``scratch`` the pad buffers and masks are
        reused across all decoder layers (lengths are identical layer to
        layer within a round).  Bucket membership and mask zero out exactly
        the same columns as the padded oracle, so the kernels agree to
        floating-point round-off and on every greedy token.
        """
        num_heads, t_new, head_dim = q.shape[1], q.shape[2], q.shape[3]
        traced = tracer is not None and tracer.enabled
        if scratch is not None:
            attended = scratch.buffer("attended", q.shape)
        else:
            attended = np.empty(q.shape)
        for key, (indices, pad_len) in enumerate(bucket_by_length(lengths)):
            span = (
                tracer.span("attend", attrs={"bucket": pad_len, "slots": len(indices)})
                if traced
                else _NULL_BUCKET_SPAN
            )
            with span:
                shape = (len(indices), num_heads, pad_len, head_dim)
                if scratch is not None:
                    k_pad, v_pad = scratch.pads(key, shape)
                else:
                    k_pad, v_pad = np.zeros(shape), np.zeros(shape)

                def build_mask(indices=indices, pad_len=pad_len):
                    return self._round_mask(lengths, indices, pad_len, t_new)

                mask = (
                    scratch.mask(key, build_mask) if scratch is not None else build_mask()
                )
                for row, i in enumerate(indices):
                    k, v = kvs[i]
                    k_pad[row, :, : lengths[i]] = k
                    v_pad[row, :, : lengths[i]] = v
                # A single bucket covers every slot in order; skip the
                # fancy-index copy of q in that (common, uniform-length) case.
                q_sel = q[indices] if len(indices) < len(lengths) else q
                k_t = k_pad.transpose(0, 1, 3, 2)
                if scratch is not None:
                    score_shape = (len(indices), num_heads, t_new, pad_len)
                    scores = np.matmul(
                        q_sel, k_t, out=scratch.buffer(("scores", key), score_shape)
                    )
                    scores /= np.sqrt(self.head_dim)
                    scores += mask
                else:
                    scores = q_sel @ k_t / np.sqrt(self.head_dim) + mask
                attended[indices] = F.softmax(scores, axis=-1) @ v_pad
        return attended
