"""Outlier / victim / normal-value ablation transforms (paper Fig. 3).

Fig. 3 of the paper compares four treatments of a full-precision model:

* **source** — leave the model untouched;
* **clipping outlier** — clip every value above 3σ back to 3σ (what a plain
  low-bit quantizer effectively does) → disastrous accuracy;
* **pruning victim** — zero the normal value adjacent to each outlier (what
  OVP sacrifices) → negligible accuracy change;
* **pruning normal value** — zero the same *number* of randomly chosen normal
  values → negligible accuracy change.

These transforms are applied to weight tensors while keeping everything else
in full precision, exactly as in the paper's study.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

__all__ = [
    "clip_outliers",
    "prune_victims",
    "prune_random_normals",
    "apply_to_tensors",
]


def _sigma(tensor: np.ndarray) -> float:
    centered = tensor - float(np.mean(tensor))
    return float(np.std(centered))


def clip_outliers(tensor: np.ndarray, sigma_threshold: float = 3.0) -> np.ndarray:
    """Clip values beyond ``sigma_threshold`` × σ to the threshold."""
    tensor = np.asarray(tensor, dtype=np.float64)
    sigma = _sigma(tensor)
    if sigma == 0.0:
        return tensor.copy()
    mean = float(np.mean(tensor))
    limit = sigma_threshold * sigma
    return np.clip(tensor, mean - limit, mean + limit)


def prune_victims(tensor: np.ndarray, sigma_threshold: float = 3.0) -> np.ndarray:
    """Zero the pair partner of every outlier (the OVP victims).

    Pairs are adjacent, non-overlapping elements in flattened order.  In an
    outlier-outlier pair the smaller of the two is pruned, matching the OVP
    encoder's behaviour.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    flat = tensor.ravel().copy()
    sigma = _sigma(flat)
    if sigma == 0.0 or flat.size < 2:
        return flat.reshape(tensor.shape)
    mean = float(np.mean(flat))
    magnitude = np.abs(flat - mean)
    is_outlier = magnitude > sigma_threshold * sigma
    usable = (flat.size // 2) * 2
    pairs_out = is_outlier[:usable].reshape(-1, 2)
    pairs_mag = magnitude[:usable].reshape(-1, 2)
    pairs_val = flat[:usable].reshape(-1, 2)

    one_outlier = pairs_out.sum(axis=1) == 1
    two_outlier = pairs_out.sum(axis=1) == 2
    # One-outlier pairs: the normal partner is the victim.
    victim_col = np.where(pairs_out[:, 0], 1, 0)
    rows = np.nonzero(one_outlier)[0]
    pairs_val[rows, victim_col[rows]] = 0.0
    # Two-outlier pairs: the smaller outlier is the victim.
    rows2 = np.nonzero(two_outlier)[0]
    smaller_col = np.where(pairs_mag[rows2, 0] <= pairs_mag[rows2, 1], 0, 1)
    pairs_val[rows2, smaller_col] = 0.0

    flat[:usable] = pairs_val.reshape(-1)
    return flat.reshape(tensor.shape)


def prune_random_normals(
    tensor: np.ndarray,
    sigma_threshold: float = 3.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Zero as many randomly chosen *normal* values as there are outliers."""
    tensor = np.asarray(tensor, dtype=np.float64)
    flat = tensor.ravel().copy()
    sigma = _sigma(flat)
    if sigma == 0.0:
        return flat.reshape(tensor.shape)
    rng = rng or np.random.default_rng(0)
    mean = float(np.mean(flat))
    magnitude = np.abs(flat - mean)
    is_outlier = magnitude > sigma_threshold * sigma
    n_outliers = int(np.sum(is_outlier))
    normal_idx = np.nonzero(~is_outlier)[0]
    if n_outliers == 0 or normal_idx.size == 0:
        return flat.reshape(tensor.shape)
    chosen = rng.choice(normal_idx, size=min(n_outliers, normal_idx.size), replace=False)
    flat[chosen] = 0.0
    return flat.reshape(tensor.shape)


def apply_to_tensors(
    tensors: Mapping[str, np.ndarray],
    method: str,
    sigma_threshold: float = 3.0,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Apply one of the Fig. 3 treatments to every tensor of a model.

    ``method`` is one of ``"source"``, ``"clip-outlier"``, ``"prune-victim"``
    or ``"prune-normal"``.
    """
    rng = np.random.default_rng(seed)
    out: Dict[str, np.ndarray] = {}
    for name, tensor in tensors.items():
        if method == "source":
            out[name] = np.asarray(tensor, dtype=np.float64).copy()
        elif method == "clip-outlier":
            out[name] = clip_outliers(tensor, sigma_threshold)
        elif method == "prune-victim":
            out[name] = prune_victims(tensor, sigma_threshold)
        elif method == "prune-normal":
            out[name] = prune_random_normals(tensor, sigma_threshold, rng)
        else:
            raise ValueError(
                "method must be one of 'source', 'clip-outlier', "
                f"'prune-victim', 'prune-normal'; got {method!r}"
            )
    return out
