"""Exception hierarchy for the OliVe reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class EncodingError(ReproError):
    """Raised when a value cannot be encoded into the requested data type."""


class DecodingError(ReproError):
    """Raised when a bit pattern cannot be decoded from a data type."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class QuantizationError(ReproError):
    """Raised when tensor quantization fails (e.g. degenerate scale)."""


class SimulationError(ReproError):
    """Raised when a hardware simulation is asked to do something impossible."""


class WorkloadError(ReproError):
    """Raised when a workload description is malformed."""
