"""The paper's primary contribution: outlier-victim pair quantization."""

from repro.core.abfloat import (
    ABFLOAT_4BIT_CONFIGS,
    ABFLOAT_E0M3,
    ABFLOAT_E1M2,
    ABFLOAT_E2M1,
    ABFLOAT_E3M0,
    ABFLOAT_E4M3,
    AbfloatType,
    default_bias_for,
    get_abfloat,
)
from repro.core.analysis import (
    PairCensus,
    TensorOutlierStats,
    largest_outliers,
    model_outlier_profile,
    model_pair_census,
    pair_census,
    tensor_outlier_stats,
)
from repro.core.dtypes import (
    FLINT4,
    INT4,
    INT8,
    NORMAL_DTYPES,
    NormalDataType,
    get_normal_dtype,
)
from repro.core.errors import (
    ConfigurationError,
    DecodingError,
    EncodingError,
    QuantizationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.core.framework import (
    SCHEMES,
    QuantizationScheme,
    get_scheme,
    quantize_model,
    quantize_tensors,
)
from repro.core.ovp import OVPairCodec, PackedOVPTensor, PairKind
from repro.core.pruning import (
    apply_to_tensors,
    clip_outliers,
    prune_random_normals,
    prune_victims,
)
from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer, make_quantizer

__all__ = [
    # data types
    "NormalDataType", "INT4", "FLINT4", "INT8", "NORMAL_DTYPES", "get_normal_dtype",
    "AbfloatType", "ABFLOAT_E0M3", "ABFLOAT_E1M2", "ABFLOAT_E2M1", "ABFLOAT_E3M0",
    "ABFLOAT_E4M3", "ABFLOAT_4BIT_CONFIGS", "get_abfloat", "default_bias_for",
    # OVP encoding and quantization
    "PairKind", "OVPairCodec", "PackedOVPTensor",
    "OVPQuantizerConfig", "OVPTensorQuantizer", "make_quantizer",
    # framework
    "QuantizationScheme", "SCHEMES", "get_scheme", "quantize_model", "quantize_tensors",
    # analysis and ablations
    "TensorOutlierStats", "PairCensus", "tensor_outlier_stats", "pair_census",
    "model_outlier_profile", "model_pair_census", "largest_outliers",
    "clip_outliers", "prune_victims", "prune_random_normals", "apply_to_tensors",
    # errors
    "ReproError", "EncodingError", "DecodingError", "ConfigurationError",
    "QuantizationError", "SimulationError", "WorkloadError",
]
