"""Tensor-level OVP quantizer with MSE-driven threshold search (paper Sec. 3.4).

The quantizer decides a single scale factor per tensor (or per channel when
requested).  The scale is tied to the outlier threshold ``T``:

* grid value   = real value / scale,
* scale        = T / max_normal   (so normal values map onto the full
  normal-data-type range),
* on the grid, anything with magnitude above ``max_normal`` is an outlier and
  is handled by the OVP pair logic.

The search starts at the empirical 3σ point (paper: "we take 3σ as the
initial scale factor") and scans a multiplicative neighbourhood around it,
picking the threshold with the smallest mean squared quantization error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.abfloat import (
    ABFLOAT_E2M1,
    ABFLOAT_E4M3,
    AbfloatType,
    default_bias_for,
    get_abfloat,
)
from repro.core.dtypes import NormalDataType, get_normal_dtype
from repro.core.errors import QuantizationError
from repro.core.ovp import OVPairCodec, PackedOVPTensor

__all__ = [
    "OVPQuantizerConfig",
    "OVPTensorQuantizer",
    "make_quantizer",
]


@dataclass
class OVPQuantizerConfig:
    """Configuration of an OVP tensor quantizer.

    Parameters
    ----------
    normal_dtype:
        Name of the normal-value data type (``int4``, ``flint4``, ``int8``).
    abfloat:
        Name of the outlier data type; defaults to the paper's choice
        (E2M1 for 4-bit types, E4M3 for ``int8``).
    bias:
        Adaptive exponent bias.  ``None`` selects the smallest bias whose
        outlier range starts above the normal range (paper Sec. 3.3).
    search_points:
        Number of candidate thresholds evaluated by the MSE search.
    search_low / search_high:
        Multiplicative search window around the 3σ initial threshold.
    per_channel_axis:
        When set, fit one scale per slice along this axis (an extension of
        the per-tensor scheme evaluated in the paper).
    """

    normal_dtype: str = "int4"
    abfloat: Optional[str] = None
    bias: Optional[int] = None
    search_points: int = 24
    search_low: float = 0.5
    search_high: float = 4.0
    per_channel_axis: Optional[int] = None

    def resolve(self) -> Tuple[NormalDataType, AbfloatType, int]:
        """Resolve names into concrete data-type objects and a bias."""
        normal = get_normal_dtype(self.normal_dtype)
        if self.abfloat is not None:
            outlier = get_abfloat(self.abfloat)
        elif normal.bits == 8:
            outlier = ABFLOAT_E4M3
        else:
            outlier = ABFLOAT_E2M1
        bias = self.bias if self.bias is not None else default_bias_for(normal.max_value, outlier)
        return normal, outlier, int(bias)


@dataclass
class _FittedScale:
    """Per-tensor (or per-channel) fitted quantization parameters."""

    scale: np.ndarray  # broadcastable to the tensor
    threshold_sigma: float
    mse: float


class OVPTensorQuantizer:
    """Quantize tensors with the outlier-victim pair scheme.

    Typical usage::

        q = OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype="int4"))
        q.fit(weight)
        w_q = q.quantize(weight)          # fake-quantized float tensor
        packed = q.encode(weight)         # memory-aligned byte stream
        w_rt = q.decode(packed)           # decoded back to floats
    """

    def __init__(self, config: Optional[OVPQuantizerConfig] = None) -> None:
        self.config = config or OVPQuantizerConfig()
        normal, outlier, bias = self.config.resolve()
        self.normal_dtype = normal
        self.abfloat_type = outlier
        self.bias = bias
        self.codec = OVPairCodec(normal, outlier, bias)
        self._fitted: Optional[_FittedScale] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._fitted is not None

    @property
    def scale(self) -> np.ndarray:
        """The fitted scale factor(s)."""
        self._require_fitted()
        return self._fitted.scale

    @property
    def threshold_sigma(self) -> float:
        """The fitted outlier threshold expressed in multiples of σ."""
        self._require_fitted()
        return self._fitted.threshold_sigma

    @property
    def fit_mse(self) -> float:
        """Mean squared error achieved by the fitted threshold."""
        self._require_fitted()
        return self._fitted.mse

    def fit(self, tensor: np.ndarray) -> "OVPTensorQuantizer":
        """Search for the MSE-optimal outlier threshold on ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.size == 0:
            raise QuantizationError("cannot fit a quantizer on an empty tensor")
        axis = self.config.per_channel_axis
        if axis is None:
            scale, sigma_mult, mse = self._fit_flat(tensor.ravel())
            self._fitted = _FittedScale(
                scale=np.asarray(scale), threshold_sigma=sigma_mult, mse=mse
            )
        else:
            self._fitted = self._fit_per_channel(tensor, axis)
        return self

    #: Cap on elements fake-quantized per vectorized sweep block.  Small
    #: (serving-sized) tensors stack every candidate into one pass, which is
    #: where the per-call overhead dominates; tensors beyond the cap fall
    #: back towards one candidate at a time, whose working set still fits in
    #: cache — stacking megabyte-scale grids thrashes it and runs *slower*.
    _SWEEP_BLOCK_ELEMENTS = 1_000_000

    def _fit_flat(self, flat: np.ndarray) -> Tuple[float, float, float]:
        """Vectorized MSE threshold sweep: all candidates in one codec pass.

        Each candidate threshold only rescales the same flat tensor, so the
        sweep stacks ``(candidates, elements)`` grids and runs
        :meth:`~repro.core.ovp.OVPairCodec.fake_quantize_grid` once per block
        instead of once per candidate — the model-load hot path (one fit per
        Linear weight).  Rows are padded to even length so pair boundaries
        never cross candidate rows.  Candidate selection matches
        :meth:`_fit_flat_reference` bitwise: same grids, same MSE reduction
        order, first minimum wins.
        """
        if flat.size > self._SWEEP_BLOCK_ELEMENTS:
            # Beyond cache scale the stacked sweep loses to plain scalar-scale
            # arithmetic; the per-candidate loop is already compute-bound.
            return self._fit_flat_reference(flat)
        sigma = float(np.std(flat))
        if sigma == 0.0:
            # Degenerate constant tensor: any positive scale works.
            return max(abs(float(flat[0])), 1.0) / self.normal_dtype.max_value, 3.0, 0.0
        candidates = np.linspace(
            self.config.search_low, self.config.search_high, self.config.search_points
        )
        scales = 3.0 * sigma * candidates / self.normal_dtype.max_value
        padded = np.concatenate([flat, np.zeros(1)]) if flat.size % 2 else flat
        block = max(1, min(len(scales), self._SWEEP_BLOCK_ELEMENTS // max(padded.size, 1)))
        best = (np.inf, 3.0, sigma * 3.0 / self.normal_dtype.max_value)
        for start in range(0, len(scales), block):
            block_scales = scales[start:start + block]
            grids = padded[None, :] / block_scales[:, None]
            deq = self.codec.fake_quantize_grid(grids, self.normal_dtype.max_value)
            # The pad slot round-trips to 0 exactly, but the mean must run
            # over the real elements only to match the reference loop.
            errors = deq * block_scales[:, None] - padded[None, :]
            mses = np.mean(errors[:, : flat.size] ** 2, axis=1)
            row = int(np.argmin(mses))
            if float(mses[row]) < best[0]:
                best = (
                    float(mses[row]),
                    3.0 * float(candidates[start + row]),
                    float(block_scales[row]),
                )
        return best[2], best[1], best[0]

    def _fit_flat_reference(self, flat: np.ndarray) -> Tuple[float, float, float]:
        """Per-candidate sweep kept as the oracle for the vectorized path."""
        sigma = float(np.std(flat))
        if sigma == 0.0:
            return max(abs(float(flat[0])), 1.0) / self.normal_dtype.max_value, 3.0, 0.0
        candidates = np.linspace(
            self.config.search_low, self.config.search_high, self.config.search_points
        )
        best = (np.inf, 3.0, sigma * 3.0 / self.normal_dtype.max_value)
        for mult in candidates:
            threshold = 3.0 * sigma * mult
            scale = threshold / self.normal_dtype.max_value
            grid = flat / scale
            deq = self.codec.fake_quantize_grid(grid, self.normal_dtype.max_value) * scale
            mse = float(np.mean((deq - flat) ** 2))
            if mse < best[0]:
                best = (mse, 3.0 * mult, scale)
        return best[2], best[1], best[0]

    def _fit_per_channel(self, tensor: np.ndarray, axis: int) -> _FittedScale:
        moved = np.moveaxis(tensor, axis, 0)
        n_channels = moved.shape[0]
        scales = np.ones(n_channels, dtype=np.float64)
        sigma_mults = np.zeros(n_channels, dtype=np.float64)
        mses = np.zeros(n_channels, dtype=np.float64)
        for c in range(n_channels):
            scales[c], sigma_mults[c], mses[c] = self._fit_flat(moved[c].ravel())
        shape = [1] * tensor.ndim
        shape[axis] = n_channels
        return _FittedScale(
            scale=scales.reshape(shape),
            threshold_sigma=float(np.mean(sigma_mults)),
            mse=float(np.mean(mses)),
        )

    # ------------------------------------------------------------------ #
    # Quantization
    # ------------------------------------------------------------------ #
    def quantize(self, tensor: np.ndarray, fit: bool = False) -> np.ndarray:
        """Return the fake-quantized (quantize → dequantize) tensor."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if fit or not self.is_fitted:
            self.fit(tensor)
        scale = self._fitted.scale
        if np.ndim(scale) == 0 or np.size(scale) == 1:
            grid = tensor / float(np.asarray(scale).ravel()[0])
            deq = self.codec.fake_quantize_grid(grid, self.normal_dtype.max_value)
            return deq * float(np.asarray(scale).ravel()[0])
        # Per-channel: quantize each channel slice with its own scale.
        axis = self.config.per_channel_axis
        moved = np.moveaxis(tensor, axis, 0)
        scales = np.asarray(scale).ravel()
        out = np.empty_like(moved)
        for c in range(moved.shape[0]):
            grid = moved[c] / scales[c]
            out[c] = self.codec.fake_quantize_grid(grid, self.normal_dtype.max_value) * scales[c]
        return np.moveaxis(out, 0, axis)

    def quantization_mse(self, tensor: np.ndarray) -> float:
        """Mean squared error of quantizing ``tensor`` with the fitted scale."""
        tensor = np.asarray(tensor, dtype=np.float64)
        return float(np.mean((self.quantize(tensor) - tensor) ** 2))

    # ------------------------------------------------------------------ #
    # Bit-packed encode/decode
    # ------------------------------------------------------------------ #
    def encode(self, tensor: np.ndarray) -> PackedOVPTensor:
        """Encode ``tensor`` into a memory-aligned OVP byte stream.

        Only per-tensor quantizers can produce a single packed stream; a
        per-channel fit would silently mis-pack every channel after the
        first, so it is rejected — encode each channel slice through
        ``codec.encode_tensor`` with its own scale instead.
        """
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        scales = np.asarray(self._fitted.scale)
        if scales.size > 1:
            raise QuantizationError(
                "per-channel quantizers cannot encode to one packed stream; "
                "encode each channel slice with codec.encode_tensor and its "
                "channel scale"
            )
        scale = float(scales.ravel()[0])
        return self.codec.encode_tensor(tensor, scale, self.normal_dtype.max_value)

    def decode(self, packed: PackedOVPTensor) -> np.ndarray:
        """Decode a packed OVP tensor produced by :meth:`encode`."""
        return self.codec.decode_tensor(packed)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def pair_statistics(self, tensor: np.ndarray) -> dict:
        """Fraction of each pair shape under the fitted threshold."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        if tensor.size == 0:
            raise QuantizationError("cannot compute pair statistics of an empty tensor")
        # _grid_of pads the odd trailing element with a zero, exactly like
        # encode_tensor, so the census matches the encoded stream.  With a
        # per-channel fit every channel is scaled (and padded) independently,
        # matching how its slice would be encoded.
        scales = np.asarray(self._fitted.scale)
        threshold = self.normal_dtype.max_value
        axis = self.config.per_channel_axis
        if axis is not None and scales.size > 1:
            moved = np.moveaxis(tensor, axis, 0)
            flat_scales = scales.ravel()
            outlier_counts = [
                (np.abs(self.codec._grid_of(moved[c], flat_scales[c])[0].reshape(-1, 2))
                 > threshold).sum(axis=1)
                for c in range(moved.shape[0])
            ]
            n_out = np.concatenate(outlier_counts)
        else:
            grid, _ = self.codec._grid_of(tensor, float(scales.ravel()[0]))
            n_out = (np.abs(grid.reshape(-1, 2)) > threshold).sum(axis=1)
        return {
            "normal-normal": float(np.mean(n_out == 0)),
            "outlier-normal": float(np.mean(n_out == 1)),
            "outlier-outlier": float(np.mean(n_out == 2)),
        }

    def _require_fitted(self) -> None:
        if self._fitted is None:
            raise QuantizationError("quantizer has not been fitted; call fit() first")


def make_quantizer(bits: int = 4, normal_dtype: Optional[str] = None) -> OVPTensorQuantizer:
    """Convenience constructor for the paper's two standard settings.

    ``bits=4`` → int4 normals + E2M1 abfloat outliers (the headline 4-bit PTQ),
    ``bits=8`` → int8 normals + E4M3 abfloat outliers.
    """
    if bits not in (4, 8):
        raise QuantizationError("OliVe supports 4- and 8-bit quantization")
    if normal_dtype is None:
        normal_dtype = "int4" if bits == 4 else "int8"
    resolved = get_normal_dtype(normal_dtype)
    if resolved.bits != bits:
        raise QuantizationError(
            f"normal_dtype {normal_dtype!r} is {resolved.bits}-bit but bits={bits} "
            "was requested"
        )
    return OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype=normal_dtype))
