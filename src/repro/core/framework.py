"""Model-level post-training quantization framework (paper Sec. 3.4).

The framework turns a full-precision model from :mod:`repro.models` into a
fake-quantized model under a named *scheme*.  A scheme bundles

* a factory for the **weight** quantizer,
* a factory for the **activation** quantizer (``None`` for weight-only
  schemes such as GOBO),

and is applied by swapping every :class:`repro.nn.layers.Linear` for a
:class:`repro.nn.fakequant.QuantizedLinear`, then running a single
calibration batch to fit the activation scale factors — matching the paper's
PTQ recipe ("we still need to use one batch of data from the training set for
the scale factor selection").
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.fakequant import QuantizedLinear, set_calibration
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.quant.registry import create_quantizer

__all__ = [
    "QuantizationScheme",
    "SCHEMES",
    "get_scheme",
    "quantize_model",
    "quantize_tensors",
]


@dataclass(frozen=True)
class QuantizationScheme:
    """A named weight/activation quantization recipe.

    ``weight_quantizer`` / ``activation_quantizer`` are registry names from
    :mod:`repro.quant.registry`; ``None`` disables quantization of that
    operand (e.g. GOBO leaves activations in full precision).
    """

    name: str
    weight_quantizer: Optional[str]
    activation_quantizer: Optional[str]
    bits_label: str
    description: str = ""

    def make_weight_quantizer(self):
        """Instantiate a fresh weight quantizer (or None)."""
        return create_quantizer(self.weight_quantizer) if self.weight_quantizer else None

    def make_activation_quantizer(self):
        """Instantiate a fresh activation quantizer (or None)."""
        return create_quantizer(self.activation_quantizer) if self.activation_quantizer else None


#: Schemes used throughout the accuracy experiments (Tables 6-9).
SCHEMES: Dict[str, QuantizationScheme] = {
    "fp32": QuantizationScheme("fp32", None, None, "32-bit", "full precision reference"),
    "olive-4bit": QuantizationScheme(
        "olive-4bit", "olive-4bit", "olive-4bit", "4-bit",
        "OliVe OVP: int4 normals + E2M1 abfloat outliers (weights and activations)",
    ),
    "olive-8bit": QuantizationScheme(
        "olive-8bit", "olive-8bit", "olive-8bit", "8-bit",
        "OliVe OVP: int8 normals + E4M3 abfloat outliers",
    ),
    "olive-4bit-weights": QuantizationScheme(
        "olive-4bit-weights", "olive-4bit", None, "4-bit",
        "OliVe weight-only 4-bit (for the GOBO comparison, Table 7)",
    ),
    "int4": QuantizationScheme(
        "int4", "int4", "int4", "4-bit", "plain symmetric int4 on weights and activations"
    ),
    "int8": QuantizationScheme(
        "int8", "int8", "int8", "8-bit", "plain symmetric int8 on weights and activations"
    ),
    "ant-4bit": QuantizationScheme(
        "ant-4bit", "ant4", "ant4", "4-bit", "ANT adaptive data type, 4-bit, no outlier handling"
    ),
    "ant-mixed": QuantizationScheme(
        "ant-mixed", "ant-mixed", "ant-mixed", "4/8-bit",
        "ANT with per-tensor 8-bit fallback (the paper's ANT PTQ configuration)",
    ),
    "os-4bit": QuantizationScheme(
        "os-4bit", "os4", "os4", "4-bit", "Outlier Suppression approximation, 4-bit"
    ),
    "os-6bit": QuantizationScheme(
        "os-6bit", "os6", "os6", "6-bit", "Outlier Suppression approximation, 6-bit"
    ),
    "q8bert": QuantizationScheme(
        "q8bert", "q8bert", "q8bert", "8-bit", "Q8BERT symmetric 8-bit"
    ),
    "gobo": QuantizationScheme(
        "gobo", "gobo", None, "3-bit", "GOBO weight-only centroid quantization"
    ),
    "olaccel": QuantizationScheme(
        "olaccel", "olaccel", "olaccel", "4/8-bit", "OLAccel outlier-aware mixed precision"
    ),
    "adafloat-8bit": QuantizationScheme(
        "adafloat-8bit", "adafloat8", "adafloat8", "8-bit", "AdaptivFloat 8-bit"
    ),
}


def get_scheme(name: str) -> QuantizationScheme:
    """Look up a quantization scheme by name."""
    try:
        return SCHEMES[name]
    except KeyError as exc:
        raise KeyError(f"unknown scheme {name!r}; expected one of {sorted(SCHEMES)}") from exc


def quantize_model(
    model: Module,
    scheme: QuantizationScheme,
    calibration_inputs: Optional[np.ndarray] = None,
    calibration_kwargs: Optional[dict] = None,
) -> Module:
    """Return a fake-quantized deep copy of ``model`` under ``scheme``.

    Parameters
    ----------
    model:
        A full-precision model from :mod:`repro.models`.
    scheme:
        The quantization recipe to apply.
    calibration_inputs:
        One batch of token ids used to calibrate activation quantizers.
        Required whenever the scheme quantizes activations.
    calibration_kwargs:
        Extra keyword arguments forwarded to the model's calibration forward
        pass (e.g. decoder inputs for encoder-decoder models).
    """
    quantized = copy.deepcopy(model)
    if scheme.weight_quantizer is None and scheme.activation_quantizer is None:
        return quantized

    replacements = []
    for name, module in quantized.named_modules():
        if isinstance(module, Linear) and not isinstance(module, QuantizedLinear):
            replacements.append(name)
    for name in replacements:
        original = quantized.get_submodule(name)
        wrapped = QuantizedLinear(
            original,
            weight_quantizer=scheme.make_weight_quantizer(),
            activation_quantizer=scheme.make_activation_quantizer(),
        )
        quantized.set_submodule(name, wrapped)

    if scheme.activation_quantizer is not None:
        if calibration_inputs is None:
            raise ValueError(
                f"scheme {scheme.name!r} quantizes activations and needs calibration_inputs"
            )
        set_calibration(quantized, True)
        quantized(calibration_inputs, **(calibration_kwargs or {}))
        set_calibration(quantized, False)
    return quantized


def quantize_tensors(
    tensors: Dict[str, np.ndarray], quantizer_name: str
) -> Dict[str, np.ndarray]:
    """Quantize a dict of tensors independently with a fresh quantizer each.

    Convenience path used by tensor-level studies (e.g. MSE sweeps) that do
    not need a full model.
    """
    out: Dict[str, np.ndarray] = {}
    for name, tensor in tensors.items():
        quantizer = create_quantizer(quantizer_name)
        quantizer.fit(tensor)
        out[name] = quantizer.quantize(tensor)
    return out
