"""Outlier-victim pair (OVP) encoding (paper Section 3, Algorithm 1, Fig. 4).

A tensor is processed two adjacent elements at a time.  Three pair shapes can
occur (paper Table 2):

* **normal-normal** — both values are quantized with the normal data type;
* **outlier-normal** — the normal value is *pruned* (it becomes the *victim*)
  and its slot stores the outlier identifier, while the outlier is quantized
  with :mod:`repro.core.abfloat` into the adjacent slot;
* **outlier-outlier** — the smaller outlier is pruned, the larger is kept
  (this shape occurs for < 0.06 % of pairs in well-trained LLMs).

The encoding is *memory aligned*: every pair still occupies exactly
``2 × bits`` of storage, so the resulting byte stream is indistinguishable
from a plain low-bit tensor as far as the memory subsystem is concerned.

All functions here operate on the *integer grid*, i.e. on values already
divided by the tensor scale factor; the scale/threshold search lives in
:mod:`repro.core.quantizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.abfloat import AbfloatType
from repro.core.dtypes import NormalDataType
from repro.core.errors import EncodingError

__all__ = [
    "PairKind",
    "OVPairCodec",
    "PackedOVPTensor",
]


class PairKind:
    """Symbolic names for the three pair shapes."""

    NORMAL_NORMAL = "normal-normal"
    OUTLIER_NORMAL = "outlier-normal"
    OUTLIER_OUTLIER = "outlier-outlier"


@dataclass
class PackedOVPTensor:
    """A memory-aligned OVP-encoded tensor.

    Attributes
    ----------
    data:
        ``uint8`` byte stream.  For 4-bit encodings each byte holds one pair
        (high nibble = first element); for 8-bit encodings each element is one
        byte, pairs are adjacent bytes.
    shape:
        Original tensor shape.
    scale:
        The tensor scale factor: real value = grid value × scale.
    normal_dtype / abfloat_name / bias:
        Names describing how to decode the stream.
    padded:
        True when one trailing grid element was appended to make the length
        even; it is stripped again on decode.
    """

    data: np.ndarray
    shape: Tuple[int, ...]
    scale: float
    normal_dtype: str
    abfloat_name: str
    bias: int
    padded: bool = False

    @property
    def nbytes(self) -> int:
        """Size of the encoded payload in bytes (what DRAM traffic sees)."""
        return int(self.data.nbytes)

    @property
    def num_elements(self) -> int:
        """Number of real (un-padded) tensor elements represented."""
        return int(np.prod(self.shape)) if self.shape else 1


class OVPairCodec:
    """Bit-accurate encoder/decoder for outlier-victim pairs.

    Parameters
    ----------
    normal_dtype:
        Data type used for normal values (``int4``, ``flint4`` or ``int8``).
    abfloat_type:
        The outlier data type (E2M1 for 4-bit, E4M3 for 8-bit in the paper).
    bias:
        Adaptive bias applied to the abfloat exponent.
    max_outlier_magnitude:
        Hard clip applied to decoded outlier magnitudes so products fit the
        32-bit accumulator (the paper clips at ``2**15``, Sec. 4.5).
    """

    def __init__(
        self,
        normal_dtype: NormalDataType,
        abfloat_type: AbfloatType,
        bias: int,
        max_outlier_magnitude: float = float(2 ** 15),
    ) -> None:
        if normal_dtype.bits not in (4, 8):
            raise EncodingError("OVP encoding supports 4- and 8-bit normal types only")
        if abfloat_type.bits != normal_dtype.bits:
            raise EncodingError(
                "outlier and normal data types must have the same storage width "
                f"(got {abfloat_type.bits} and {normal_dtype.bits})"
            )
        self.normal_dtype = normal_dtype
        self.abfloat_type = abfloat_type
        self.bias = int(bias)
        self.max_outlier_magnitude = float(max_outlier_magnitude)
        # Outlier magnitudes representable on the integer grid, pre-clipped.
        mags = abfloat_type.magnitude_values(bias)
        self._outlier_grid = mags[mags <= self.max_outlier_magnitude]
        if self._outlier_grid.size == 0:
            raise EncodingError("abfloat bias leaves no representable outlier values")
        self._build_vector_tables()

    def _build_vector_tables(self) -> None:
        """Precompute the lookup tables the vectorized codec paths use.

        * ``_normal_value_codes`` maps the index of a value in the sorted
          ``normal_dtype.values`` array to its bit pattern;
        * ``_normal_decode_lut`` maps every possible code to its normal value
          (identifier/invalid slots hold 0 and are overwritten by the pair
          logic before use);
        * ``_outlier_decode_lut`` maps every possible code to its clipped
          abfloat value.
        """
        dtype = self.normal_dtype
        self._normal_value_codes = np.array(
            [dtype.code_of_value[float(v)] for v in dtype.values], dtype=np.uint8
        )
        normal_lut = np.zeros(dtype.num_codes, dtype=np.float64)
        for code, value in dtype.value_of_code.items():
            normal_lut[code] = value
        self._normal_decode_lut = normal_lut
        outlier_lut = np.array(
            [self._decode_outlier(code) for code in range(1 << self.abfloat_type.bits)],
            dtype=np.float64,
        )
        self._outlier_decode_lut = outlier_lut

    # ------------------------------------------------------------------ #
    # Scalar pair paths (Algorithm 1)
    # ------------------------------------------------------------------ #
    def classify_pair(self, val1: float, val2: float, threshold: float) -> str:
        """Classify a grid-value pair into one of the three pair shapes."""
        out1 = abs(val1) > threshold
        out2 = abs(val2) > threshold
        if out1 and out2:
            return PairKind.OUTLIER_OUTLIER
        if out1 or out2:
            return PairKind.OUTLIER_NORMAL
        return PairKind.NORMAL_NORMAL

    def encode_pair(self, val1: float, val2: float, threshold: float) -> Tuple[int, int]:
        """Encode one pair of grid values into two bit patterns (Algorithm 1)."""
        identifier = self.normal_dtype.identifier_code
        if abs(val1) > threshold and abs(val1) > abs(val2):
            out1 = self._encode_outlier(val1)
            out2 = identifier
        elif abs(val2) > threshold:
            out1 = identifier
            out2 = self._encode_outlier(val2)
        else:
            out1 = self.normal_dtype.encode(float(self.normal_dtype.quantize(val1)))
            out2 = self.normal_dtype.encode(float(self.normal_dtype.quantize(val2)))
        return out1, out2

    def decode_pair(self, code1: int, code2: int) -> Tuple[float, float]:
        """Decode two bit patterns back into grid values.

        The victim slot decodes to exactly 0, mirroring the hardware OVP
        decoder (paper Fig. 6b).
        """
        identifier = self.normal_dtype.identifier_code
        if code1 == identifier and code2 == identifier:
            # Cannot occur from encode_pair; treat as two pruned values.
            return 0.0, 0.0
        if code2 == identifier:
            return float(self._decode_outlier(code1)), 0.0
        if code1 == identifier:
            return 0.0, float(self._decode_outlier(code2))
        return (
            float(self.normal_dtype.decode(code1)),
            float(self.normal_dtype.decode(code2)),
        )

    def _encode_outlier(self, value: float) -> int:
        clipped = float(np.clip(value, -self.max_outlier_magnitude, self.max_outlier_magnitude))
        return self.abfloat_type.encode(clipped, self.bias)

    def _decode_outlier(self, code: int) -> float:
        value = float(self.abfloat_type.decode(code, self.bias))
        return float(np.clip(value, -self.max_outlier_magnitude, self.max_outlier_magnitude))

    # ------------------------------------------------------------------ #
    # Vectorised element paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pair_outlier_masks(a: np.ndarray, b: np.ndarray, threshold: float):
        """Vectorised Algorithm-1 pair classification.

        Returns ``(a_is_outlier, b_is_outlier)``; at most one is True per
        pair (the larger magnitude wins an outlier-outlier tie, matching
        :meth:`encode_pair`).  Both the fake-quantization path and the
        bit-packed encoder share this single predicate so the
        ``decode(encode(x)) == fake_quantize(x)`` invariant cannot drift.
        """
        abs_a, abs_b = np.abs(a), np.abs(b)
        a_is_outlier = (abs_a > threshold) & (abs_a > abs_b)
        b_is_outlier = (abs_b > threshold) & ~a_is_outlier
        return a_is_outlier, b_is_outlier

    def _encode_normal_values(self, values: np.ndarray) -> np.ndarray:
        """Vectorised normal-value encode: quantize, then map value → code."""
        quantized = self.normal_dtype.quantize(values)
        idx = np.searchsorted(self.normal_dtype.values, quantized)
        return self._normal_value_codes[idx]

    def _encode_outlier_values(self, values: np.ndarray) -> np.ndarray:
        """Vectorised abfloat outlier encode (Algorithm 2, bit-exact).

        Mirrors :meth:`AbfloatType.encode` exactly, including banker's
        rounding of the mantissa and the renormalisation step, so the
        vectorized encoder emits the same bit patterns as the scalar oracle.
        """
        abf = self.abfloat_type
        clipped = np.clip(
            np.asarray(values, dtype=np.float64),
            -self.max_outlier_magnitude,
            self.max_outlier_magnitude,
        )
        magnitude = np.abs(clipped)
        mb = abf.man_bits
        min_code = 1
        max_code = (1 << abf.magnitude_bits) - 1
        codes = np.full(magnitude.shape, min_code, dtype=np.int64)
        positive = magnitude > 0
        if np.any(positive):
            mag = magnitude[positive]
            exp = np.floor(np.log2(mag)).astype(np.int64) - mb
            base_int = np.rint(mag / np.exp2(exp.astype(np.float64))).astype(np.int64)
            renorm = base_int == (1 << (mb + 1))
            exp = np.where(renorm, exp + 1, exp)
            base_int = np.where(renorm, base_int >> 1, base_int)
            exp_field = exp - self.bias
            man_field = base_int & abf.max_mantissa_field
            code = np.maximum((exp_field << mb) | man_field, min_code)
            code = np.where(exp_field < 0, min_code, code)
            code = np.where(exp_field > abf.max_exponent_field, max_code, code)
            codes[positive] = code
        sign_bit = (clipped < 0).astype(np.int64)
        return ((sign_bit << abf.magnitude_bits) | codes).astype(np.uint8)

    def _encode_grid(self, grid: np.ndarray, threshold: float) -> np.ndarray:
        """Encode an even-length grid array into one code per element."""
        pairs = grid.reshape(-1, 2)
        a, b = pairs[:, 0], pairs[:, 1]
        a_is_outlier, b_is_outlier = self._pair_outlier_masks(a, b, threshold)

        identifier = np.uint8(self.normal_dtype.identifier_code)
        codes = np.empty(pairs.shape, dtype=np.uint8)
        codes[:, 0] = self._encode_normal_values(a)
        codes[:, 1] = self._encode_normal_values(b)
        if np.any(a_is_outlier):
            codes[a_is_outlier, 0] = self._encode_outlier_values(a[a_is_outlier])
            codes[a_is_outlier, 1] = identifier
        if np.any(b_is_outlier):
            codes[b_is_outlier, 0] = identifier
            codes[b_is_outlier, 1] = self._encode_outlier_values(b[b_is_outlier])
        return codes.reshape(-1)

    def _decode_codes(self, codes: np.ndarray) -> np.ndarray:
        """Decode one-code-per-element arrays back into grid values.

        One contiguous gather covers the (vastly dominant) normal values;
        identifier slots gather 0 (the victim value) for free because the
        normal LUT holds 0 at the identifier code.  The sparse outlier slots
        — the pair partners of the identifiers, found with ``position ^ 1`` —
        are then patched through the outlier LUT.
        """
        identifier = self.normal_dtype.identifier_code
        grid = self._normal_decode_lut[codes]
        victim_pos = np.flatnonzero(codes == identifier)
        if victim_pos.size:
            partner_pos = victim_pos ^ 1
            partner_codes = codes[partner_pos]
            # An identifier partner means an outlier-outlier degenerate pair
            # (both pruned); every other partner slot holds an abfloat code.
            holds_outlier = partner_codes != identifier
            outlier_pos = partner_pos[holds_outlier]
            grid[outlier_pos] = self._outlier_decode_lut[partner_codes[holds_outlier]]
        return grid

    # ------------------------------------------------------------------ #
    # Vectorised fake quantization (grid in → grid out, no bit packing)
    # ------------------------------------------------------------------ #
    def fake_quantize_grid(self, grid: np.ndarray, threshold: float) -> np.ndarray:
        """Apply OVP quantization to grid values and return dequantized grid values.

        This is the numerically-equivalent fast path used when simulating
        quantized model inference: victims become 0, outliers snap to the
        nearest representable abfloat magnitude, normal values snap to the
        nearest normal-data-type value.
        """
        grid = np.asarray(grid, dtype=np.float64)
        flat, padded = self._grid_of(grid, 1.0)
        pairs = flat.reshape(-1, 2)
        a, b = pairs[:, 0], pairs[:, 1]
        a_is_outlier, b_is_outlier = self._pair_outlier_masks(a, b, threshold)

        out = np.empty_like(pairs)
        # Normal path for everything first, then overwrite outlier/victim slots.
        out[:, 0] = self.normal_dtype.quantize(a)
        out[:, 1] = self.normal_dtype.quantize(b)
        if np.any(a_is_outlier):
            out[a_is_outlier, 0] = self._quantize_outlier_values(a[a_is_outlier])
            out[a_is_outlier, 1] = 0.0
        if np.any(b_is_outlier):
            out[b_is_outlier, 1] = self._quantize_outlier_values(b[b_is_outlier])
            out[b_is_outlier, 0] = 0.0

        result = out.reshape(-1)
        if padded:
            result = result[:-1]
        return result.reshape(grid.shape)

    def _quantize_outlier_values(self, values: np.ndarray) -> np.ndarray:
        """Snap outlier grid values to what the bit-packed stream stores.

        Implemented as a literal encode→decode round trip so the
        fake-quantization path agrees with ``decode_tensor(encode_tensor(x))``
        *by construction* — including Algorithm 2's mantissa rounding at
        exact midpoints, where a plain nearest-value search diverges.
        """
        return self._outlier_decode_lut[self._encode_outlier_values(values)]

    # ------------------------------------------------------------------ #
    # Bit-packed tensor paths
    # ------------------------------------------------------------------ #
    def encode_tensor(
        self, tensor: np.ndarray, scale: float, threshold: float
    ) -> PackedOVPTensor:
        """Encode a real-valued tensor into a memory-aligned byte stream.

        This is the vectorized hot path (mask-based pair classification and
        nibble packing); :meth:`encode_tensor_scalar` keeps the per-pair
        Algorithm 1 loop as the bit-accuracy oracle.
        """
        tensor = np.asarray(tensor, dtype=np.float64)
        if scale <= 0:
            raise EncodingError("scale must be positive")
        grid, padded = self._grid_of(tensor, scale)
        codes = self._encode_grid(grid, threshold)
        return self._pack(codes, tensor.shape, scale, padded)

    def encode_tensor_scalar(
        self, tensor: np.ndarray, scale: float, threshold: float
    ) -> PackedOVPTensor:
        """Per-pair scalar encoder (Algorithm 1), kept as the bit oracle."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if scale <= 0:
            raise EncodingError("scale must be positive")
        grid, padded = self._grid_of(tensor, scale)
        codes = np.empty(grid.size, dtype=np.uint8)
        for i in range(0, grid.size, 2):
            c1, c2 = self.encode_pair(grid[i], grid[i + 1], threshold)
            codes[i] = c1
            codes[i + 1] = c2
        return self._pack(codes, tensor.shape, scale, padded)

    def encode_tensor_batch(self, tensors, scales, threshold: float):
        """Encode several even-sized tensors in one vectorized pass.

        Each tensor gets its own scale but they share one threshold (in grid
        units) and one trip through the pair classifier — the per-call
        overhead matters when many small tensors are encoded at once (the KV
        cache seals a K page and a V page together on the append path).
        Odd-sized tensors are rejected: their zero pad would shift the pair
        alignment of every stream that follows.  Returns one
        :class:`PackedOVPTensor` per input.
        """
        if len(tensors) != len(scales):
            raise EncodingError("encode_tensor_batch needs one scale per tensor")
        if not tensors:
            raise EncodingError("encode_tensor_batch needs at least one tensor")
        tensors = [np.asarray(t, dtype=np.float64) for t in tensors]
        for tensor, scale in zip(tensors, scales):
            if scale <= 0:
                raise EncodingError("scale must be positive")
            if tensor.size % 2:
                raise EncodingError(
                    "encode_tensor_batch supports even-sized tensors only; "
                    "use encode_tensor for odd sizes"
                )
        grid = np.concatenate(
            [tensor.ravel() / float(scale) for tensor, scale in zip(tensors, scales)]
        )
        codes = self._encode_grid(grid, threshold)
        packed, offset = [], 0
        for tensor, scale in zip(tensors, scales):
            stop = offset + tensor.size
            packed.append(
                self._pack(codes[offset:stop], tensor.shape, float(scale), padded=False)
            )
            offset = stop
        return packed

    def decode_tensor(self, packed: PackedOVPTensor) -> np.ndarray:
        """Decode a packed OVP tensor back into real values (vectorized)."""
        grid = self._decode_codes(self._unpack(packed))
        if packed.padded:
            grid = grid[:-1]
        return (grid * packed.scale).reshape(packed.shape)

    def decode_tensor_batch(self, packed_list) -> np.ndarray:
        """Decode same-shape packed tensors in one vectorized pass.

        The per-call overhead of :meth:`decode_tensor` dominates when many
        small tensors are decoded at once (the KV-cache attend path decodes
        every sealed page of a sequence per step), so the byte streams are
        concatenated and run through the unpack/LUT machinery together.
        Returns an array of shape ``(len(packed_list), *shape)``.

        All tensors must share this codec's dtype configuration and one
        common shape.
        """
        if not packed_list:
            raise EncodingError("decode_tensor_batch needs at least one tensor")
        first = packed_list[0]
        for packed in packed_list:
            if packed.shape != first.shape:
                raise EncodingError("decode_tensor_batch requires identical shapes")
            if (
                packed.normal_dtype != self.normal_dtype.name
                or packed.abfloat_name != self.abfloat_type.name
                or packed.bias != self.bias
            ):
                raise EncodingError("packed tensor does not match this codec")
        data = np.concatenate([packed.data for packed in packed_list])
        if self.normal_dtype.bits == 4:
            codes = np.empty(data.size * 2, dtype=np.uint8)
            codes[0::2] = data >> 4
            codes[1::2] = data & 0x0F
        else:
            codes = data
        # Equal shapes mean equal (padded) stream lengths, so every stream
        # boundary falls on a pair boundary and one decode pass is safe.
        grid = self._decode_codes(codes).reshape(len(packed_list), -1)
        if first.padded:
            grid = grid[:, :-1]
        scales = np.array([packed.scale for packed in packed_list], dtype=np.float64)
        return (grid * scales[:, None]).reshape((len(packed_list),) + tuple(first.shape))

    def decode_tensor_scalar(self, packed: PackedOVPTensor) -> np.ndarray:
        """Per-pair scalar decoder, kept as the bit oracle."""
        codes = self._unpack(packed)
        grid = np.empty(codes.size, dtype=np.float64)
        for i in range(0, codes.size, 2):
            v1, v2 = self.decode_pair(int(codes[i]), int(codes[i + 1]))
            grid[i] = v1
            grid[i + 1] = v2
        if packed.padded:
            grid = grid[:-1]
        return (grid * packed.scale).reshape(packed.shape)

    # ------------------------------------------------------------------ #
    # Packing helpers shared by the scalar and vectorized paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _grid_of(tensor: np.ndarray, scale: float) -> Tuple[np.ndarray, bool]:
        """Scale a tensor onto the integer grid, padding odd lengths.

        ``scale == 1.0`` skips the division (the fake-quantization path runs
        once per fit candidate, so the no-op copy would be paid 24× per
        weight tensor at model-load time).
        """
        grid = tensor.ravel() if scale == 1.0 else tensor.ravel() / scale
        padded = False
        if grid.size % 2 == 1:
            grid = np.concatenate([grid, np.zeros(1)])
            padded = True
        return grid, padded

    def _pack(
        self, codes: np.ndarray, shape: Tuple[int, ...], scale: float, padded: bool
    ) -> PackedOVPTensor:
        """Nibble-pack (4-bit) or pass through (8-bit) a code stream."""
        if self.normal_dtype.bits == 4:
            packed = ((codes[0::2] << 4) | codes[1::2]).astype(np.uint8)
        else:
            packed = codes
        return PackedOVPTensor(
            data=packed,
            shape=tuple(shape),
            scale=float(scale),
            normal_dtype=self.normal_dtype.name,
            abfloat_name=self.abfloat_type.name,
            bias=self.bias,
            padded=padded,
        )

    def _unpack(self, packed: PackedOVPTensor) -> np.ndarray:
        """Expand a byte stream back into one code per element."""
        if self.normal_dtype.bits == 4:
            codes = np.empty(packed.data.size * 2, dtype=np.uint8)
            codes[0::2] = packed.data >> 4
            codes[1::2] = packed.data & 0x0F
            return codes
        return packed.data
