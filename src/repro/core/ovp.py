"""Outlier-victim pair (OVP) encoding (paper Section 3, Algorithm 1, Fig. 4).

A tensor is processed two adjacent elements at a time.  Three pair shapes can
occur (paper Table 2):

* **normal-normal** — both values are quantized with the normal data type;
* **outlier-normal** — the normal value is *pruned* (it becomes the *victim*)
  and its slot stores the outlier identifier, while the outlier is quantized
  with :mod:`repro.core.abfloat` into the adjacent slot;
* **outlier-outlier** — the smaller outlier is pruned, the larger is kept
  (this shape occurs for < 0.06 % of pairs in well-trained LLMs).

The encoding is *memory aligned*: every pair still occupies exactly
``2 × bits`` of storage, so the resulting byte stream is indistinguishable
from a plain low-bit tensor as far as the memory subsystem is concerned.

All functions here operate on the *integer grid*, i.e. on values already
divided by the tensor scale factor; the scale/threshold search lives in
:mod:`repro.core.quantizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.abfloat import AbfloatType
from repro.core.dtypes import NormalDataType
from repro.core.errors import EncodingError

__all__ = [
    "PairKind",
    "OVPairCodec",
    "PackedOVPTensor",
]


class PairKind:
    """Symbolic names for the three pair shapes."""

    NORMAL_NORMAL = "normal-normal"
    OUTLIER_NORMAL = "outlier-normal"
    OUTLIER_OUTLIER = "outlier-outlier"


@dataclass
class PackedOVPTensor:
    """A memory-aligned OVP-encoded tensor.

    Attributes
    ----------
    data:
        ``uint8`` byte stream.  For 4-bit encodings each byte holds one pair
        (high nibble = first element); for 8-bit encodings each element is one
        byte, pairs are adjacent bytes.
    shape:
        Original tensor shape.
    scale:
        The tensor scale factor: real value = grid value × scale.
    normal_dtype / abfloat_name / bias:
        Names describing how to decode the stream.
    padded:
        True when one trailing grid element was appended to make the length
        even; it is stripped again on decode.
    """

    data: np.ndarray
    shape: Tuple[int, ...]
    scale: float
    normal_dtype: str
    abfloat_name: str
    bias: int
    padded: bool = False

    @property
    def nbytes(self) -> int:
        """Size of the encoded payload in bytes (what DRAM traffic sees)."""
        return int(self.data.nbytes)

    @property
    def num_elements(self) -> int:
        """Number of real (un-padded) tensor elements represented."""
        return int(np.prod(self.shape)) if self.shape else 1


class OVPairCodec:
    """Bit-accurate encoder/decoder for outlier-victim pairs.

    Parameters
    ----------
    normal_dtype:
        Data type used for normal values (``int4``, ``flint4`` or ``int8``).
    abfloat_type:
        The outlier data type (E2M1 for 4-bit, E4M3 for 8-bit in the paper).
    bias:
        Adaptive bias applied to the abfloat exponent.
    max_outlier_magnitude:
        Hard clip applied to decoded outlier magnitudes so products fit the
        32-bit accumulator (the paper clips at ``2**15``, Sec. 4.5).
    """

    def __init__(
        self,
        normal_dtype: NormalDataType,
        abfloat_type: AbfloatType,
        bias: int,
        max_outlier_magnitude: float = float(2 ** 15),
    ) -> None:
        if normal_dtype.bits not in (4, 8):
            raise EncodingError("OVP encoding supports 4- and 8-bit normal types only")
        if abfloat_type.bits != normal_dtype.bits:
            raise EncodingError(
                "outlier and normal data types must have the same storage width "
                f"(got {abfloat_type.bits} and {normal_dtype.bits})"
            )
        self.normal_dtype = normal_dtype
        self.abfloat_type = abfloat_type
        self.bias = int(bias)
        self.max_outlier_magnitude = float(max_outlier_magnitude)
        # Outlier magnitudes representable on the integer grid, pre-clipped.
        mags = abfloat_type.magnitude_values(bias)
        self._outlier_grid = mags[mags <= self.max_outlier_magnitude]
        if self._outlier_grid.size == 0:
            raise EncodingError("abfloat bias leaves no representable outlier values")

    # ------------------------------------------------------------------ #
    # Scalar pair paths (Algorithm 1)
    # ------------------------------------------------------------------ #
    def classify_pair(self, val1: float, val2: float, threshold: float) -> str:
        """Classify a grid-value pair into one of the three pair shapes."""
        out1 = abs(val1) > threshold
        out2 = abs(val2) > threshold
        if out1 and out2:
            return PairKind.OUTLIER_OUTLIER
        if out1 or out2:
            return PairKind.OUTLIER_NORMAL
        return PairKind.NORMAL_NORMAL

    def encode_pair(self, val1: float, val2: float, threshold: float) -> Tuple[int, int]:
        """Encode one pair of grid values into two bit patterns (Algorithm 1)."""
        identifier = self.normal_dtype.identifier_code
        if abs(val1) > threshold and abs(val1) > abs(val2):
            out1 = self._encode_outlier(val1)
            out2 = identifier
        elif abs(val2) > threshold:
            out1 = identifier
            out2 = self._encode_outlier(val2)
        else:
            out1 = self.normal_dtype.encode(float(self.normal_dtype.quantize(val1)))
            out2 = self.normal_dtype.encode(float(self.normal_dtype.quantize(val2)))
        return out1, out2

    def decode_pair(self, code1: int, code2: int) -> Tuple[float, float]:
        """Decode two bit patterns back into grid values.

        The victim slot decodes to exactly 0, mirroring the hardware OVP
        decoder (paper Fig. 6b).
        """
        identifier = self.normal_dtype.identifier_code
        if code1 == identifier and code2 == identifier:
            # Cannot occur from encode_pair; treat as two pruned values.
            return 0.0, 0.0
        if code2 == identifier:
            return float(self._decode_outlier(code1)), 0.0
        if code1 == identifier:
            return 0.0, float(self._decode_outlier(code2))
        return (
            float(self.normal_dtype.decode(code1)),
            float(self.normal_dtype.decode(code2)),
        )

    def _encode_outlier(self, value: float) -> int:
        clipped = float(np.clip(value, -self.max_outlier_magnitude, self.max_outlier_magnitude))
        return self.abfloat_type.encode(clipped, self.bias)

    def _decode_outlier(self, code: int) -> float:
        value = float(self.abfloat_type.decode(code, self.bias))
        return float(np.clip(value, -self.max_outlier_magnitude, self.max_outlier_magnitude))

    # ------------------------------------------------------------------ #
    # Vectorised fake quantization (grid in → grid out, no bit packing)
    # ------------------------------------------------------------------ #
    def fake_quantize_grid(self, grid: np.ndarray, threshold: float) -> np.ndarray:
        """Apply OVP quantization to grid values and return dequantized grid values.

        This is the numerically-equivalent fast path used when simulating
        quantized model inference: victims become 0, outliers snap to the
        nearest representable abfloat magnitude, normal values snap to the
        nearest normal-data-type value.
        """
        grid = np.asarray(grid, dtype=np.float64)
        flat = grid.ravel()
        padded = False
        if flat.size % 2 == 1:
            flat = np.concatenate([flat, np.zeros(1)])
            padded = True
        pairs = flat.reshape(-1, 2)
        a, b = pairs[:, 0], pairs[:, 1]
        abs_a, abs_b = np.abs(a), np.abs(b)

        a_is_outlier = (abs_a > threshold) & (abs_a > abs_b)
        b_is_outlier = (np.abs(b) > threshold) & ~a_is_outlier

        out = np.empty_like(pairs)
        # Normal path for everything first, then overwrite outlier/victim slots.
        out[:, 0] = self.normal_dtype.quantize(a)
        out[:, 1] = self.normal_dtype.quantize(b)
        if np.any(a_is_outlier):
            out[a_is_outlier, 0] = self._quantize_outlier_values(a[a_is_outlier])
            out[a_is_outlier, 1] = 0.0
        if np.any(b_is_outlier):
            out[b_is_outlier, 1] = self._quantize_outlier_values(b[b_is_outlier])
            out[b_is_outlier, 0] = 0.0

        result = out.reshape(-1)
        if padded:
            result = result[:-1]
        return result.reshape(grid.shape)

    def _quantize_outlier_values(self, values: np.ndarray) -> np.ndarray:
        """Snap outlier grid values to the nearest representable abfloat value."""
        mags = np.abs(values)
        grid = self._outlier_grid
        idx = np.searchsorted(grid, mags)
        idx = np.clip(idx, 1, len(grid) - 1)
        left = grid[idx - 1]
        right = grid[idx]
        nearest = np.where(np.abs(mags - left) <= np.abs(right - mags), left, right)
        # Values below the smallest representable outlier saturate upward,
        # values above the largest saturate downward (handled by clip above).
        nearest = np.where(mags <= grid[0], grid[0], nearest)
        nearest = np.where(mags >= grid[-1], grid[-1], nearest)
        return np.sign(values) * nearest

    # ------------------------------------------------------------------ #
    # Bit-packed tensor paths
    # ------------------------------------------------------------------ #
    def encode_tensor(
        self, tensor: np.ndarray, scale: float, threshold: float
    ) -> PackedOVPTensor:
        """Encode a real-valued tensor into a memory-aligned byte stream."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if scale <= 0:
            raise EncodingError("scale must be positive")
        grid = tensor.ravel() / scale
        padded = False
        if grid.size % 2 == 1:
            grid = np.concatenate([grid, np.zeros(1)])
            padded = True
        codes = np.empty(grid.size, dtype=np.uint8)
        for i in range(0, grid.size, 2):
            c1, c2 = self.encode_pair(grid[i], grid[i + 1], threshold)
            codes[i] = c1
            codes[i + 1] = c2
        if self.normal_dtype.bits == 4:
            packed = ((codes[0::2] << 4) | codes[1::2]).astype(np.uint8)
        else:
            packed = codes
        return PackedOVPTensor(
            data=packed,
            shape=tuple(tensor.shape),
            scale=float(scale),
            normal_dtype=self.normal_dtype.name,
            abfloat_name=self.abfloat_type.name,
            bias=self.bias,
            padded=padded,
        )

    def decode_tensor(self, packed: PackedOVPTensor) -> np.ndarray:
        """Decode a packed OVP tensor back into real values."""
        if self.normal_dtype.bits == 4:
            codes = np.empty(packed.data.size * 2, dtype=np.uint8)
            codes[0::2] = packed.data >> 4
            codes[1::2] = packed.data & 0x0F
        else:
            codes = packed.data
        grid = np.empty(codes.size, dtype=np.float64)
        for i in range(0, codes.size, 2):
            v1, v2 = self.decode_pair(int(codes[i]), int(codes[i + 1]))
            grid[i] = v1
            grid[i + 1] = v2
        if packed.padded:
            grid = grid[:-1]
        return (grid * packed.scale).reshape(packed.shape)
