"""Normal-value data types used by the OVP encoding (paper Table 3).

OliVe quantizes the *normal* (non-outlier) values of a tensor with a
conventional low-bit data type.  The paper supports three of them:

=========  =============================================  =====================
data type  representable values                           outlier identifier
=========  =============================================  =====================
``int4``   0, ±1, ±2, ±3, ±4, ±5, ±6, ±7                  ``1000₂``  (was −8)
``flint4`` 0, ±1, ±2, ±3, ±4, ±6, ±8, ±16                 ``1000₂``  (was −0)
``int8``   0, ±1, …, ±126, ±127                           ``10000000₂`` (was −128)
=========  =============================================  =====================

One bit pattern of each type is sacrificed to act as the *outlier identifier*:
it never encodes a normal value, so a decoder that sees it knows the adjacent
nibble/byte holds an outlier encoded with :mod:`repro.core.abfloat`.

All types here operate on the *integer grid*, i.e. on values that have already
been divided by the tensor scale factor.  The tensor-level scale search lives
in :mod:`repro.core.quantizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.core.errors import EncodingError, DecodingError

__all__ = [
    "NormalDataType",
    "Int4",
    "Flint4",
    "Int8",
    "INT4",
    "FLINT4",
    "INT8",
    "NORMAL_DTYPES",
    "get_normal_dtype",
]


@dataclass(frozen=True)
class NormalDataType:
    """A fixed-width data type for normal (non-outlier) values.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"int4"``.
    bits:
        Storage width in bits (4 or 8 in the paper).
    values:
        Sorted array of representable values on the integer grid, with the
        outlier-identifier pattern already excluded.
    identifier_code:
        The reserved bit pattern (as an unsigned integer of ``bits`` width)
        that marks the victim slot of an outlier-victim pair.
    code_of_value:
        Mapping from representable value to its bit pattern.
    value_of_code:
        Inverse of ``code_of_value``.
    """

    name: str
    bits: int
    values: np.ndarray
    identifier_code: int
    code_of_value: Dict[float, int] = field(repr=False)
    value_of_code: Dict[int, float] = field(repr=False)
    #: True when ``values`` are the consecutive integers ``-max … max``,
    #: unlocking the closed-form rounding fast path in :meth:`quantize`.
    uniform_int_grid: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def max_value(self) -> float:
        """Largest representable magnitude (e.g. 7 for ``int4``)."""
        return float(np.max(np.abs(self.values)))

    @property
    def num_codes(self) -> int:
        """Total number of bit patterns, including the identifier."""
        return 1 << self.bits

    # ------------------------------------------------------------------ #
    # Grid quantization
    # ------------------------------------------------------------------ #
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` (already on the integer grid) to the nearest value.

        Values beyond the representable range saturate to ``±max_value``.
        Exact midpoints round to the lower neighbouring value.
        """
        x = np.asarray(x, dtype=np.float64)
        if self.uniform_int_grid:
            # Consecutive-integer grid: nearest-with-ties-to-lower is
            # ``ceil(x - 0.5)`` in closed form, which skips the searchsorted
            # walk below — the dominant cost of the quantizer threshold sweep.
            max_value = float(self.values[-1])
            return np.clip(np.ceil(x - 0.5), -max_value, max_value)
        sorted_vals = self.values
        idx = np.searchsorted(sorted_vals, x)
        idx = np.clip(idx, 1, len(sorted_vals) - 1)
        left = sorted_vals[idx - 1]
        right = sorted_vals[idx]
        out = np.where(np.abs(x - left) <= np.abs(right - x), left, right)
        return out

    def quantization_error(self, x: np.ndarray) -> np.ndarray:
        """Absolute error introduced by :meth:`quantize`."""
        return np.abs(np.asarray(x, dtype=np.float64) - self.quantize(x))

    # ------------------------------------------------------------------ #
    # Bit-level encode/decode
    # ------------------------------------------------------------------ #
    def encode(self, value: float) -> int:
        """Return the bit pattern of a representable normal value."""
        key = float(value)
        if key not in self.code_of_value:
            raise EncodingError(
                f"{value!r} is not representable by {self.name}; "
                "call quantize() first"
            )
        return self.code_of_value[key]

    def decode(self, code: int) -> float:
        """Return the value of a bit pattern.

        Raises
        ------
        DecodingError
            If ``code`` is the outlier identifier or out of range.
        """
        if code == self.identifier_code:
            raise DecodingError(
                f"code {code:#x} is the outlier identifier of {self.name}"
            )
        if code not in self.value_of_code:
            raise DecodingError(f"code {code:#x} is not a valid {self.name} code")
        return self.value_of_code[code]

    def encode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` over an array of representable values."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        codes = np.empty(flat.shape, dtype=np.uint32)
        for i, v in enumerate(flat):
            codes[i] = self.encode(float(v))
        return codes.reshape(np.asarray(values).shape)

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decode` over an array of codes."""
        flat = np.asarray(codes).ravel()
        values = np.empty(flat.shape, dtype=np.float64)
        for i, c in enumerate(flat):
            values[i] = self.decode(int(c))
        return values.reshape(np.asarray(codes).shape)

    def is_identifier(self, code: int) -> bool:
        """True when ``code`` is the reserved outlier identifier."""
        return int(code) == self.identifier_code


def _twos_complement_code(value: int, bits: int) -> int:
    """Two's complement representation of ``value`` as an unsigned int."""
    mask = (1 << bits) - 1
    return value & mask


def _build_int_type(name: str, bits: int) -> NormalDataType:
    """Build a signed integer type with the minimum value reserved."""
    identifier = 1 << (bits - 1)  # e.g. 1000₂ for 4-bit, 10000000₂ for 8-bit
    max_mag = (1 << (bits - 1)) - 1
    values = np.arange(-max_mag, max_mag + 1, dtype=np.float64)
    code_of_value = {
        float(v): _twos_complement_code(int(v), bits) for v in values
    }
    value_of_code = {c: v for v, c in code_of_value.items()}
    return NormalDataType(
        name=name,
        bits=bits,
        values=values,
        identifier_code=identifier,
        code_of_value=code_of_value,
        value_of_code=value_of_code,
        uniform_int_grid=True,
    )


def _build_flint4() -> NormalDataType:
    """Build ANT's 4-bit ``flint`` type.

    flint mixes float-like coverage of large magnitudes with int-like coverage
    near zero (values from paper Table 3).  We use a sign-magnitude layout:
    the top bit is the sign and the low three bits index the magnitude table.
    The pattern ``1000₂`` would be −0, which is unused by flint and therefore
    becomes the outlier identifier for free (paper Section 3.2).
    """
    magnitudes = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0]
    code_of_value: Dict[float, int] = {}
    for idx, mag in enumerate(magnitudes):
        code_of_value[float(mag)] = idx  # sign bit 0
        if mag != 0.0:
            code_of_value[float(-mag)] = 0b1000 | idx  # sign bit 1
    value_of_code = {c: v for v, c in code_of_value.items()}
    values = np.array(sorted(code_of_value.keys()), dtype=np.float64)
    return NormalDataType(
        name="flint4",
        bits=4,
        values=values,
        identifier_code=0b1000,
        code_of_value=code_of_value,
        value_of_code=value_of_code,
    )


INT4: NormalDataType = _build_int_type("int4", 4)
INT8: NormalDataType = _build_int_type("int8", 8)
FLINT4: NormalDataType = _build_flint4()

#: Convenience aliases used by the quantization framework.
Int4 = INT4
Flint4 = FLINT4
Int8 = INT8

NORMAL_DTYPES: Dict[str, NormalDataType] = {
    "int4": INT4,
    "flint4": FLINT4,
    "int8": INT8,
}


def get_normal_dtype(name: str) -> NormalDataType:
    """Look up a normal-value data type by name (``int4``/``flint4``/``int8``)."""
    try:
        return NORMAL_DTYPES[name]
    except KeyError as exc:
        raise EncodingError(
            f"unknown normal data type {name!r}; "
            f"expected one of {sorted(NORMAL_DTYPES)}"
        ) from exc
