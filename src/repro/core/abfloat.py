"""``abfloat`` — the adaptive-biased float data type for outliers (paper Sec. 3.3).

Outliers have a wide dynamic range, so OliVe encodes them with a small
float-like format that is converted to fixed point for cheap hardware:

.. math::

    \\text{value} = \\text{sign} \\times
        \\big((1 \\ll mb) + \\text{mantissa}\\big) \\ll (\\text{exponent} + \\text{bias})

where *mb* is the mantissa bit-width (paper Equation 2).  The *adaptive bias*
shifts the whole representable range above the range covered by the normal
data type so no code points are wasted on magnitudes the normal type already
covers (e.g. bias 2 moves 4-bit E2M1 from {3..24} to {12..96}, complementing
``int4``'s [−7, 7]).

Two magnitude-zero codes exist (``0000`` and ``1000``); both are *disabled*
for outliers because ``1000`` is the outlier identifier of the normal type
(paper Sec. 3.3, last paragraph).

The 4-bit configurations are named E0M3, E1M2, E2M1 and E3M0; the paper picks
E2M1 for 4-bit outliers and E4M3 for 8-bit outliers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import DecodingError, EncodingError

__all__ = [
    "AbfloatType",
    "ABFLOAT_E0M3",
    "ABFLOAT_E1M2",
    "ABFLOAT_E2M1",
    "ABFLOAT_E3M0",
    "ABFLOAT_E4M3",
    "ABFLOAT_4BIT_CONFIGS",
    "get_abfloat",
    "default_bias_for",
]


@dataclass(frozen=True)
class AbfloatType:
    """An ``abfloat`` configuration: sign + ``exp_bits`` + ``man_bits``.

    The total storage width is ``1 + exp_bits + man_bits`` bits.  The type is
    bias-agnostic: the same bit patterns decode to different magnitudes for
    different biases, which is exactly how the hardware decoder treats the
    bias (it arrives as an instruction operand, paper Sec. 4.6).
    """

    name: str
    exp_bits: int
    man_bits: int

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #
    @property
    def bits(self) -> int:
        """Total storage width in bits, including the sign."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def magnitude_bits(self) -> int:
        """Width of the unsigned magnitude field."""
        return self.exp_bits + self.man_bits

    @property
    def max_exponent_field(self) -> int:
        """Largest raw exponent field value."""
        return (1 << self.exp_bits) - 1

    @property
    def max_mantissa_field(self) -> int:
        """Largest raw mantissa field value."""
        return (1 << self.man_bits) - 1 if self.man_bits else 0

    # ------------------------------------------------------------------ #
    # Decoding (paper Fig. 7)
    # ------------------------------------------------------------------ #
    def decode_magnitude(self, magnitude_code: int, bias: int) -> int:
        """Decode an unsigned magnitude code into an integer value.

        Mirrors the hardware decoder: ``integer << (exp_field + bias)`` with
        ``integer = (1 << mb) | mantissa`` and a special case mapping the
        all-zero code to 0.
        """
        if magnitude_code < 0 or magnitude_code > (1 << self.magnitude_bits) - 1:
            raise DecodingError(
                f"magnitude code {magnitude_code} out of range for {self.name}"
            )
        if magnitude_code == 0:
            return 0
        exp_field = magnitude_code >> self.man_bits
        man_field = magnitude_code & self.max_mantissa_field
        integer = (1 << self.man_bits) | man_field
        return integer << (exp_field + bias)

    def decode(self, code: int, bias: int) -> int:
        """Decode a full signed code (sign bit in the MSB position)."""
        if code < 0 or code >= (1 << self.bits):
            raise DecodingError(f"code {code:#x} out of range for {self.name}")
        sign = -1 if (code >> self.magnitude_bits) & 1 else 1
        magnitude = self.decode_magnitude(code & ((1 << self.magnitude_bits) - 1), bias)
        return sign * magnitude

    def exponent_integer_pair(self, code: int, bias: int) -> Tuple[int, int]:
        """Return the ``(exponent, signed integer)`` pair the MAC units consume.

        This is the output interface of the hardware outlier decoder
        (paper Fig. 6b / Fig. 7): the value equals ``integer << exponent``.
        """
        if code < 0 or code >= (1 << self.bits):
            raise DecodingError(f"code {code:#x} out of range for {self.name}")
        sign = -1 if (code >> self.magnitude_bits) & 1 else 1
        magnitude_code = code & ((1 << self.magnitude_bits) - 1)
        if magnitude_code == 0:
            return 0, 0
        exp_field = magnitude_code >> self.man_bits
        man_field = magnitude_code & self.max_mantissa_field
        integer = (1 << self.man_bits) | man_field
        return exp_field + bias, sign * integer

    # ------------------------------------------------------------------ #
    # Encoding (paper Algorithm 2)
    # ------------------------------------------------------------------ #
    def encode_magnitude(self, magnitude: float, bias: int) -> int:
        """Encode a non-negative magnitude using Algorithm 2.

        Magnitudes below the smallest representable outlier saturate to the
        smallest non-zero code (the zero codes are reserved); magnitudes above
        the largest representable value saturate to the largest code.
        """
        if magnitude < 0:
            raise EncodingError("encode_magnitude expects a non-negative magnitude")
        min_code = 1
        max_code = (1 << self.magnitude_bits) - 1
        if magnitude <= 0:
            return min_code
        exp = math.floor(math.log2(magnitude)) - self.man_bits
        base_int = int(round(magnitude / (2.0 ** exp)))
        # Rounding can push base_int to 2^(mb+1); renormalise (Algorithm 2 l.4-6).
        if base_int == (1 << (self.man_bits + 1)):
            exp += 1
            base_int >>= 1
        exp_field = exp - bias
        man_field = base_int & self.max_mantissa_field
        if exp_field < 0:
            return min_code
        if exp_field > self.max_exponent_field:
            return max_code
        code = (exp_field << self.man_bits) | man_field
        return max(code, min_code)

    def encode(self, value: float, bias: int) -> int:
        """Encode a signed value into a full abfloat code (Algorithm 2)."""
        sign_bit = 1 if value < 0 else 0
        magnitude_code = self.encode_magnitude(abs(float(value)), bias)
        return (sign_bit << self.magnitude_bits) | magnitude_code

    # ------------------------------------------------------------------ #
    # Value-set helpers
    # ------------------------------------------------------------------ #
    def magnitude_values(self, bias: int) -> np.ndarray:
        """Sorted array of representable non-zero outlier magnitudes."""
        mags = sorted(
            {
                self.decode_magnitude(code, bias)
                for code in range(1, 1 << self.magnitude_bits)
            }
        )
        return np.array(mags, dtype=np.float64)

    def representable_values(self, bias: int) -> np.ndarray:
        """Sorted array of all representable signed outlier values."""
        mags = self.magnitude_values(bias)
        return np.concatenate([-mags[::-1], mags])

    def min_magnitude(self, bias: int) -> float:
        """Smallest representable non-zero magnitude for a given bias."""
        return float(self.magnitude_values(bias)[0])

    def max_magnitude(self, bias: int) -> float:
        """Largest representable magnitude for a given bias."""
        return float(self.magnitude_values(bias)[-1])

    def quantize(self, x: np.ndarray, bias: int) -> np.ndarray:
        """Round-trip an array through encode/decode (vectorised).

        Used both by the fake-quantization path and by the Fig. 5 rounding
        error study.
        """
        flat = np.asarray(x, dtype=np.float64).ravel()
        out = np.empty_like(flat)
        for i, v in enumerate(flat):
            out[i] = float(self.decode(self.encode(v, bias), bias))
        return out.reshape(np.asarray(x).shape)

    def mean_relative_error(self, values: np.ndarray, bias: int) -> float:
        """Mean relative rounding error of ``values`` under this config.

        This is the metric behind paper Fig. 5 (normalised mean error of the
        largest outliers quantized with E0M3/E1M2/E2M1/E3M0).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        quantized = self.quantize(values, bias)
        denom = np.maximum(np.abs(values), 1e-12)
        return float(np.mean(np.abs(values - quantized) / denom))


ABFLOAT_E0M3 = AbfloatType("E0M3", exp_bits=0, man_bits=3)
ABFLOAT_E1M2 = AbfloatType("E1M2", exp_bits=1, man_bits=2)
ABFLOAT_E2M1 = AbfloatType("E2M1", exp_bits=2, man_bits=1)
ABFLOAT_E3M0 = AbfloatType("E3M0", exp_bits=3, man_bits=0)
ABFLOAT_E4M3 = AbfloatType("E4M3", exp_bits=4, man_bits=3)

ABFLOAT_4BIT_CONFIGS: List[AbfloatType] = [
    ABFLOAT_E0M3,
    ABFLOAT_E1M2,
    ABFLOAT_E2M1,
    ABFLOAT_E3M0,
]

_REGISTRY: Dict[str, AbfloatType] = {
    t.name: t for t in ABFLOAT_4BIT_CONFIGS + [ABFLOAT_E4M3]
}


def get_abfloat(name: str) -> AbfloatType:
    """Look up an abfloat configuration by name (e.g. ``"E2M1"``)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise EncodingError(
            f"unknown abfloat configuration {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from exc


def default_bias_for(normal_max: float, abfloat_type: AbfloatType) -> int:
    """Pick the smallest bias whose minimum outlier exceeds the normal range.

    The paper chooses bias 2 for ``int4`` (normal max 7 → outliers start at 12)
    and bias 3 for ``flint4`` (normal max 16 → outliers start at 24); this
    helper generalises that rule: the smallest bias such that the smallest
    representable outlier magnitude is strictly greater than ``normal_max``.
    """
    bias = 0
    while abfloat_type.min_magnitude(bias) <= normal_max:
        bias += 1
        if bias > 64:  # pragma: no cover - defensive guard
            raise EncodingError("could not find a suitable adaptive bias")
    return bias
