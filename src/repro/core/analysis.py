"""Outlier statistics and pair-wise census (paper Sec. 2, Fig. 2, Table 2).

The paper motivates OVP with two measurements made over every tensor of a
model:

* the normalised maximum magnitude ``max|x| / σ`` and the fraction of values
  above 3σ and 6σ (Fig. 2 — transformers have outliers one order of magnitude
  larger than CNNs);
* the census of adjacent non-overlapping value pairs into normal-normal,
  outlier-normal and outlier-outlier shapes under the 3σ rule (Table 2 —
  outlier-outlier pairs are vanishingly rare, which is what makes the victim
  trick cheap).

This module provides those measurements for arbitrary tensors and tensor
collections (models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "TensorOutlierStats",
    "PairCensus",
    "tensor_outlier_stats",
    "pair_census",
    "model_outlier_profile",
    "model_pair_census",
]


@dataclass(frozen=True)
class TensorOutlierStats:
    """Outlier statistics of a single tensor (one point of Fig. 2)."""

    name: str
    sigma: float
    max_sigma: float
    frac_gt_3sigma: float
    frac_gt_6sigma: float
    num_elements: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the experiment report writers."""
        return {
            "name": self.name,
            "sigma": self.sigma,
            "max_sigma": self.max_sigma,
            "frac_gt_3sigma": self.frac_gt_3sigma,
            "frac_gt_6sigma": self.frac_gt_6sigma,
            "num_elements": self.num_elements,
        }


@dataclass(frozen=True)
class PairCensus:
    """Pair-shape census of a tensor or a whole model (one row of Table 2)."""

    normal_normal: int
    outlier_normal: int
    outlier_outlier: int

    @property
    def total(self) -> int:
        """Total number of pairs counted."""
        return self.normal_normal + self.outlier_normal + self.outlier_outlier

    @property
    def fractions(self) -> Dict[str, float]:
        """Percentages of each pair shape (sums to 1)."""
        total = max(self.total, 1)
        return {
            "normal-normal": self.normal_normal / total,
            "outlier-normal": self.outlier_normal / total,
            "outlier-outlier": self.outlier_outlier / total,
        }

    def merged(self, other: "PairCensus") -> "PairCensus":
        """Combine censuses from two tensors of the same model."""
        return PairCensus(
            normal_normal=self.normal_normal + other.normal_normal,
            outlier_normal=self.outlier_normal + other.outlier_normal,
            outlier_outlier=self.outlier_outlier + other.outlier_outlier,
        )


def tensor_outlier_stats(tensor: np.ndarray, name: str = "") -> TensorOutlierStats:
    """Compute σ-normalised outlier statistics of a tensor (Fig. 2 metrics)."""
    flat = np.asarray(tensor, dtype=np.float64).ravel()
    if flat.size == 0:
        return TensorOutlierStats(name, 0.0, 0.0, 0.0, 0.0, 0)
    centered = flat - float(np.mean(flat))
    sigma = float(np.std(centered))
    if sigma == 0.0:
        return TensorOutlierStats(name, 0.0, 0.0, 0.0, 0.0, flat.size)
    normalized = np.abs(centered) / sigma
    return TensorOutlierStats(
        name=name,
        sigma=sigma,
        max_sigma=float(np.max(normalized)),
        frac_gt_3sigma=float(np.mean(normalized > 3.0)),
        frac_gt_6sigma=float(np.mean(normalized > 6.0)),
        num_elements=int(flat.size),
    )


def pair_census(tensor: np.ndarray, sigma_threshold: float = 3.0) -> PairCensus:
    """Count pair shapes of adjacent, non-overlapping value pairs (Table 2).

    Values whose centred magnitude exceeds ``sigma_threshold`` × σ are
    outliers; pairs are formed in flattened order without overlap, matching
    how the OVP codec walks the tensor.
    """
    flat = np.asarray(tensor, dtype=np.float64).ravel()
    if flat.size < 2:
        return PairCensus(0, 0, 0)
    centered = flat - float(np.mean(flat))
    sigma = float(np.std(centered))
    if sigma == 0.0:
        n_pairs = flat.size // 2
        return PairCensus(n_pairs, 0, 0)
    is_outlier = np.abs(centered) > sigma_threshold * sigma
    usable = (flat.size // 2) * 2
    pair_outliers = is_outlier[:usable].reshape(-1, 2).sum(axis=1)
    return PairCensus(
        normal_normal=int(np.sum(pair_outliers == 0)),
        outlier_normal=int(np.sum(pair_outliers == 1)),
        outlier_outlier=int(np.sum(pair_outliers == 2)),
    )


def model_outlier_profile(
    tensors: Mapping[str, np.ndarray],
) -> List[TensorOutlierStats]:
    """Per-tensor outlier statistics sorted by max σ (the Fig. 2 x-axis order)."""
    stats = [tensor_outlier_stats(t, name) for name, t in tensors.items()]
    return sorted(stats, key=lambda s: s.max_sigma)


def model_pair_census(
    tensors: Mapping[str, np.ndarray], sigma_threshold: float = 3.0
) -> PairCensus:
    """Aggregate pair census over every tensor of a model (one Table 2 row)."""
    total = PairCensus(0, 0, 0)
    for tensor in tensors.values():
        total = total.merged(pair_census(tensor, sigma_threshold))
    return total


def largest_outliers(tensors: Mapping[str, np.ndarray], top_k: int = 1) -> np.ndarray:
    """Collect the ``top_k`` largest σ-normalised magnitudes of each tensor.

    These are the values quantized in the Fig. 5 abfloat-configuration study.
    """
    collected: List[float] = []
    for tensor in tensors.values():
        flat = np.asarray(tensor, dtype=np.float64).ravel()
        if flat.size == 0:
            continue
        centered = flat - float(np.mean(flat))
        sigma = float(np.std(centered))
        if sigma == 0.0:
            continue
        normalized = np.abs(centered) / sigma
        k = min(top_k, normalized.size)
        collected.extend(np.sort(normalized)[-k:].tolist())
    return np.asarray(collected, dtype=np.float64)
