"""Shared utilities (table rendering)."""

from repro.utils.tables import format_nested_dict, format_table

__all__ = ["format_table", "format_nested_dict"]
