"""Small helpers for rendering experiment results as text/markdown tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_nested_dict"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def format_nested_dict(table: Mapping[str, Mapping[str, float]], row_label: str = "model") -> str:
    """Render a nested dict (row → column → value) as a markdown table."""
    rows = list(table)
    columns: List[str] = []
    for row in rows:
        for col in table[row]:
            if col not in columns:
                columns.append(col)
    lines = [
        "| " + row_label + " | " + " | ".join(columns) + " |",
        "|" + "|".join(["---"] * (len(columns) + 1)) + "|",
    ]
    for row in rows:
        values = [_fmt(table[row].get(col, "")) for col in columns]
        lines.append("| " + row + " | " + " | ".join(values) + " |")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e4 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)
