"""Synthetic SQuAD-like span extraction tasks (paper Table 8).

The span-extraction analogue mirrors :mod:`repro.data.glue`: random token
contexts are labelled with the teacher model's own most-likely answer span,
a fraction of the gold spans is perturbed to give the teacher a realistic
(sub-100 %) score, and quantized models are then evaluated with the standard
SQuAD exact-match / token-F1 metrics.

Two task variants mirror SQuAD v1.1 and v2.0: the v2.0 variant perturbs more
gold spans (and allows null spans), making it the harder benchmark, just as in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.glue import batched_forward
from repro.data.metrics import exact_match, span_f1
from repro.nn.module import Module

__all__ = ["SquadDataset", "SQUAD_VARIANTS", "make_squad_dataset", "evaluate_span_model"]


@dataclass
class SquadDataset:
    """A generated span-extraction evaluation set."""

    name: str
    inputs: np.ndarray                 # (n, seq_len) token ids
    gold_spans: List[Tuple[int, int]]  # per-example (start, end)

    @property
    def num_examples(self) -> int:
        """Number of evaluation examples."""
        return int(self.inputs.shape[0])

    def calibration_batch(self, batch_size: int = 8) -> np.ndarray:
        """First few inputs, used to calibrate activation quantizers."""
        return self.inputs[:batch_size]


#: Span-perturbation rates for the two SQuAD variants.
SQUAD_VARIANTS = {"squad-v1.1": 0.10, "squad-v2.0": 0.22}


def _spans_from_logits(start_logits: np.ndarray, end_logits: np.ndarray) -> List[Tuple[int, int]]:
    """Pick the highest-scoring (start ≤ end) span for each example."""
    spans = []
    for s_row, e_row in zip(start_logits, end_logits):
        start = int(np.argmax(s_row))
        end_candidates = e_row.copy()
        end_candidates[:start] = -np.inf
        end = int(np.argmax(end_candidates))
        spans.append((start, end))
    return spans


def make_squad_dataset(
    variant: str,
    teacher: Module,
    vocab_size: int,
    num_examples: int = 64,
    seq_len: int = 32,
    seed: int = 0,
) -> SquadDataset:
    """Generate a teacher-labelled span dataset for ``variant``."""
    if variant not in SQUAD_VARIANTS:
        raise ValueError(f"unknown SQuAD variant {variant!r}; expected {sorted(SQUAD_VARIANTS)}")
    noise = SQUAD_VARIANTS[variant]
    rng = np.random.default_rng(seed)
    n_candidates = num_examples * 8
    inputs = rng.integers(0, vocab_size, size=(n_candidates, seq_len), dtype=np.int64)

    start_logits, end_logits = _forward_spans(teacher, inputs)
    # Keep the examples the teacher answers with the largest span-logit margin,
    # mirroring the confident-margin structure of fine-tuned QA models.
    margin = _span_margin(start_logits) + _span_margin(end_logits)
    keep = np.sort(np.argsort(margin)[::-1][:num_examples])
    inputs = inputs[keep]
    start_logits = start_logits[keep]
    end_logits = end_logits[keep]
    gold = _spans_from_logits(start_logits, end_logits)

    perturbed: List[Tuple[int, int]] = []
    for span in gold:
        if rng.random() < noise:
            start = int(rng.integers(0, seq_len))
            end = int(min(seq_len - 1, start + rng.integers(0, 4)))
            perturbed.append((start, end))
        else:
            perturbed.append(span)
    return SquadDataset(name=variant, inputs=inputs, gold_spans=perturbed)


def _span_margin(logits: np.ndarray) -> np.ndarray:
    """Top-1 minus top-2 logit per example (confidence of the span boundary)."""
    sorted_logits = np.sort(logits, axis=-1)
    return sorted_logits[:, -1] - sorted_logits[:, -2]


def _forward_spans(model: Module, inputs: np.ndarray, batch_size: int = 16):
    """Batched forward returning stacked start/end logits."""
    starts, ends = [], []
    for i in range(0, inputs.shape[0], batch_size):
        s, e = model(inputs[i : i + batch_size])
        starts.append(np.asarray(s))
        ends.append(np.asarray(e))
    return np.concatenate(starts, axis=0), np.concatenate(ends, axis=0)


def evaluate_span_model(
    model: Module, dataset: SquadDataset, batch_size: int = 16
) -> Tuple[float, float]:
    """Return ``(F1, exact match)`` percentages of ``model`` on ``dataset``.

    The ordering matches the paper's "F1/EM" presentation in Table 8.
    """
    start_logits, end_logits = _forward_spans(model, dataset.inputs, batch_size)
    pred = _spans_from_logits(start_logits, end_logits)
    return span_f1(pred, dataset.gold_spans), exact_match(pred, dataset.gold_spans)
