"""Synthetic language-modelling corpora and perplexity evaluation (paper Table 9).

WikiText-103 and C4 cannot be downloaded offline, so each corpus is generated
*from the full-precision teacher model itself*: for every position of a random
context, the next-token label is sampled from the teacher's (temperature-
sharpened) predictive distribution.  By construction the teacher's perplexity
on such a corpus is low (close to the entropy of its own predictions), and any
quantization that perturbs the teacher's logits raises it — catastrophically
so when outliers are clipped, mildly when they are preserved.  That is the
behaviour pattern Table 9 of the paper reports.

Two named corpora ("wikitext" and "c4") differ only in their generation seed
and context statistics, mirroring how the paper reports both columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.data.metrics import perplexity_from_nll
from repro.nn import functional as F
from repro.nn.module import Module

__all__ = ["LMDataset", "LM_CORPORA", "make_lm_dataset", "evaluate_perplexity"]


@dataclass
class LMDataset:
    """A generated LM evaluation corpus."""

    name: str
    contexts: np.ndarray  # (n, seq_len) token ids fed to the model
    targets: np.ndarray   # (n, seq_len) next-token labels per position

    @property
    def num_sequences(self) -> int:
        """Number of evaluation sequences."""
        return int(self.contexts.shape[0])

    def calibration_batch(self, batch_size: int = 4) -> np.ndarray:
        """First few contexts, used to calibrate activation quantizers."""
        return self.contexts[:batch_size]


#: Corpus name → generation-seed offset (keeps "wikitext" and "c4" distinct).
LM_CORPORA: Dict[str, int] = {"wikitext": 0, "c4": 1000}


def make_lm_dataset(
    corpus: str,
    teacher: Module,
    vocab_size: int,
    num_sequences: int = 24,
    seq_len: int = 32,
    seed: int = 0,
) -> LMDataset:
    """Generate a teacher-consistent corpus for ``corpus`` ∈ {"wikitext", "c4"}."""
    if corpus not in LM_CORPORA:
        raise ValueError(f"unknown corpus {corpus!r}; expected {sorted(LM_CORPORA)}")
    rng = np.random.default_rng(seed + LM_CORPORA[corpus])
    contexts = rng.integers(0, vocab_size, size=(num_sequences, seq_len), dtype=np.int64)

    targets = np.empty_like(contexts)
    batch = 8
    for i in range(0, num_sequences, batch):
        chunk = contexts[i : i + batch]
        log_probs = teacher.log_probs(chunk)  # (b, seq, vocab)
        probs = np.exp(log_probs)
        probs = probs / probs.sum(axis=-1, keepdims=True)
        flat = probs.reshape(-1, probs.shape[-1])
        sampled = np.array(
            [rng.choice(flat.shape[-1], p=row) for row in flat], dtype=np.int64
        )
        targets[i : i + batch] = sampled.reshape(chunk.shape)
    return LMDataset(name=corpus, contexts=contexts, targets=targets)


def evaluate_perplexity(model: Module, dataset: LMDataset, batch_size: int = 8) -> float:
    """Perplexity of ``model`` on the generated corpus (lower is better)."""
    total_nll = 0.0
    total_tokens = 0
    for i in range(0, dataset.num_sequences, batch_size):
        contexts = dataset.contexts[i : i + batch_size]
        targets = dataset.targets[i : i + batch_size]
        logits = model(contexts)
        log_probs = F.log_softmax(logits, axis=-1)
        gathered = np.take_along_axis(log_probs, targets[..., None], axis=-1)[..., 0]
        total_nll += float(-np.sum(gathered))
        total_tokens += int(targets.size)
    mean_nll = total_nll / max(total_tokens, 1)
    return perplexity_from_nll(mean_nll)
