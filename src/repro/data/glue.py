"""Synthetic GLUE-like classification tasks (paper Tables 6-7, Fig. 3).

Real GLUE data cannot be downloaded in this environment, so each task is
generated from the full-precision *teacher* model itself (see DESIGN.md §2):

1. inputs are random token sequences;
2. labels are the teacher's own predictions (argmax for classification, the
   first logit for the STS-B-style regression task);
3. a task-specific fraction of labels is corrupted so the teacher's accuracy
   lands in a realistic range (e.g. ≈93 % for SST-2, Matthews ≈60 for CoLA)
   rather than a vacuous 100 %.

A quantized model is then scored against those labels: the more the
quantization perturbs the teacher's decision function, the lower the score —
which is exactly the quantity the paper's accuracy tables track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.metrics import accuracy, matthews_corrcoef, pearson_corrcoef
from repro.nn.module import Module

__all__ = [
    "GlueTaskSpec",
    "ClassificationDataset",
    "GLUE_TASKS",
    "GLUE_TASK_ORDER",
    "make_glue_dataset",
    "evaluate_classifier",
    "batched_forward",
]


@dataclass(frozen=True)
class GlueTaskSpec:
    """Static description of one GLUE-like task."""

    name: str
    metric: str          # "accuracy" | "matthews" | "pearson"
    num_classes: int     # 1 => regression
    label_noise: float   # fraction of corrupted teacher labels


@dataclass
class ClassificationDataset:
    """A generated evaluation set for one task."""

    task: GlueTaskSpec
    inputs: np.ndarray   # (n, seq_len) int token ids
    labels: np.ndarray   # (n,) int labels or float scores

    @property
    def num_examples(self) -> int:
        """Number of evaluation examples."""
        return int(self.inputs.shape[0])

    def calibration_batch(self, batch_size: int = 8) -> np.ndarray:
        """First few inputs, used to calibrate activation quantizers."""
        return self.inputs[:batch_size]


#: The eight GLUE tasks evaluated in the paper, with noise levels chosen so
#: the full-precision teacher lands near the paper's FP32 scores.
GLUE_TASKS: Dict[str, GlueTaskSpec] = {
    "CoLA": GlueTaskSpec("CoLA", "matthews", 2, 0.20),
    "SST-2": GlueTaskSpec("SST-2", "accuracy", 2, 0.06),
    "MNLI": GlueTaskSpec("MNLI", "accuracy", 3, 0.14),
    "QQP": GlueTaskSpec("QQP", "accuracy", 2, 0.09),
    "QNLI": GlueTaskSpec("QNLI", "accuracy", 2, 0.09),
    "RTE": GlueTaskSpec("RTE", "accuracy", 2, 0.28),
    "STS-B": GlueTaskSpec("STS-B", "pearson", 1, 0.10),
    "MRPC": GlueTaskSpec("MRPC", "accuracy", 2, 0.12),
}

#: Column order used by the Table 6 report (the five datasets the paper shows).
GLUE_TASK_ORDER: List[str] = ["CoLA", "SST-2", "MNLI", "QQP", "MRPC"]


def batched_forward(model: Module, inputs: np.ndarray, batch_size: int = 16) -> np.ndarray:
    """Run ``model`` over ``inputs`` in batches and stack the outputs."""
    outputs = []
    for start in range(0, inputs.shape[0], batch_size):
        outputs.append(np.asarray(model(inputs[start : start + batch_size])))
    return np.concatenate(outputs, axis=0)


def make_glue_dataset(
    task: GlueTaskSpec,
    teacher: Module,
    vocab_size: int,
    num_examples: int = 96,
    seq_len: int = 32,
    seed: int = 0,
    oversample: int = 3,
) -> ClassificationDataset:
    """Generate a teacher-labelled evaluation set for ``task``.

    ``oversample`` × ``num_examples`` candidate inputs are generated and the
    ones on which the teacher is most *confident* (largest top-1/top-2 logit
    margin) are kept.  Fine-tuned models classify real benchmark examples with
    comfortable margins; the filter reproduces that margin structure, so small
    quantization perturbations leave predictions unchanged while
    outlier-destroying quantization flips them — the sensitivity profile the
    paper's accuracy tables rest on.
    """
    rng = np.random.default_rng(seed)
    n_candidates = max(num_examples, num_examples * oversample)
    inputs = rng.integers(0, vocab_size, size=(n_candidates, seq_len), dtype=np.int64)
    logits = batched_forward(teacher, inputs)

    if task.num_classes == 1:
        scores = logits[:, 0]
        # Keep the most spread-out scores so the Pearson metric has signal.
        order = np.argsort(np.abs(scores - np.median(scores)))[::-1]
        keep = np.sort(order[:num_examples])
        scores = scores[keep]
        inputs = inputs[keep]
        noise = rng.normal(0.0, task.label_noise * (np.std(scores) + 1e-9), size=scores.shape)
        labels = scores + noise
    else:
        sorted_logits = np.sort(logits, axis=-1)
        margin = sorted_logits[:, -1] - sorted_logits[:, -2]
        keep = np.sort(np.argsort(margin)[::-1][:num_examples])
        inputs = inputs[keep]
        labels = np.argmax(logits[keep], axis=-1)
        flip = rng.random(num_examples) < task.label_noise
        random_labels = rng.integers(0, task.num_classes, size=num_examples)
        labels = np.where(flip, random_labels, labels)
    return ClassificationDataset(task=task, inputs=inputs, labels=labels)


def evaluate_classifier(
    model: Module, dataset: ClassificationDataset, batch_size: int = 16
) -> float:
    """Score ``model`` on ``dataset`` with the task's metric (percent)."""
    logits = batched_forward(model, dataset.inputs, batch_size)
    task = dataset.task
    if task.num_classes == 1:
        predictions = logits[:, 0]
        return pearson_corrcoef(predictions, dataset.labels)
    predictions = np.argmax(logits, axis=-1)
    if task.metric == "matthews":
        return matthews_corrcoef(predictions, dataset.labels)
    return accuracy(predictions, dataset.labels)
