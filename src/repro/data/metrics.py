"""Task metrics used by the accuracy experiments (GLUE, SQuAD, perplexity)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "accuracy",
    "matthews_corrcoef",
    "pearson_corrcoef",
    "f1_score",
    "exact_match",
    "span_f1",
    "perplexity_from_nll",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact label matches, in percent."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels) * 100.0)


def matthews_corrcoef(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Matthews correlation coefficient for binary labels, in percent (CoLA metric)."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    tp = float(np.sum((predictions == 1) & (labels == 1)))
    tn = float(np.sum((predictions == 0) & (labels == 0)))
    fp = float(np.sum((predictions == 1) & (labels == 0)))
    fn = float(np.sum((predictions == 0) & (labels == 1)))
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0:
        return 0.0
    return float((tp * tn - fp * fn) / denom * 100.0)


def pearson_corrcoef(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Pearson correlation, in percent (STS-B metric)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if predictions.size < 2:
        return 0.0
    px = predictions - predictions.mean()
    py = labels - labels.mean()
    denom = np.sqrt(np.sum(px ** 2) * np.sum(py ** 2))
    if denom == 0:
        return 0.0
    return float(np.sum(px * py) / denom * 100.0)


def f1_score(predictions: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """Binary F1 score, in percent."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    tp = float(np.sum((predictions == positive) & (labels == positive)))
    fp = float(np.sum((predictions == positive) & (labels != positive)))
    fn = float(np.sum((predictions != positive) & (labels == positive)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2 * precision * recall / (precision + recall) * 100.0)


def exact_match(
    pred_spans: Sequence[Tuple[int, int]], gold_spans: Sequence[Tuple[int, int]]
) -> float:
    """SQuAD exact-match score over (start, end) spans, in percent."""
    if len(pred_spans) == 0:
        return 0.0
    matches = [int(p == g) for p, g in zip(pred_spans, gold_spans)]
    return float(np.mean(matches) * 100.0)


def span_f1(
    pred_spans: Sequence[Tuple[int, int]], gold_spans: Sequence[Tuple[int, int]]
) -> float:
    """SQuAD token-overlap F1 over (start, end) spans, in percent."""
    if len(pred_spans) == 0:
        return 0.0
    scores = []
    for (ps, pe), (gs, ge) in zip(pred_spans, gold_spans):
        pred_tokens = set(range(min(ps, pe), max(ps, pe) + 1))
        gold_tokens = set(range(min(gs, ge), max(gs, ge) + 1))
        overlap = len(pred_tokens & gold_tokens)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(pred_tokens)
        recall = overlap / len(gold_tokens)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores) * 100.0)


def perplexity_from_nll(mean_nll: float, cap: float = 1e9) -> float:
    """Convert mean negative log-likelihood (natural log) to perplexity.

    The exponent is capped so catastrophically-bad quantized models (e.g. the
    paper's int4 entries reported as "1E+4"…"9E+6") produce a large finite
    number instead of an overflow.
    """
    return float(min(np.exp(min(mean_nll, np.log(cap))), cap))
