"""Synthetic workloads (GLUE/SQuAD/LM) and task metrics."""

from repro.data.glue import (
    GLUE_TASKS,
    GLUE_TASK_ORDER,
    ClassificationDataset,
    GlueTaskSpec,
    batched_forward,
    evaluate_classifier,
    make_glue_dataset,
)
from repro.data.lm import LM_CORPORA, LMDataset, evaluate_perplexity, make_lm_dataset
from repro.data.metrics import (
    accuracy,
    exact_match,
    f1_score,
    matthews_corrcoef,
    pearson_corrcoef,
    perplexity_from_nll,
    span_f1,
)
from repro.data.squad import (
    SQUAD_VARIANTS,
    SquadDataset,
    evaluate_span_model,
    make_squad_dataset,
)

__all__ = [
    "GlueTaskSpec",
    "ClassificationDataset",
    "GLUE_TASKS",
    "GLUE_TASK_ORDER",
    "make_glue_dataset",
    "evaluate_classifier",
    "batched_forward",
    "SquadDataset",
    "SQUAD_VARIANTS",
    "make_squad_dataset",
    "evaluate_span_model",
    "LMDataset",
    "LM_CORPORA",
    "make_lm_dataset",
    "evaluate_perplexity",
    "accuracy",
    "matthews_corrcoef",
    "pearson_corrcoef",
    "f1_score",
    "exact_match",
    "span_f1",
    "perplexity_from_nll",
]
