"""Model configurations.

Two kinds of configuration live here:

* :data:`PAPER_CONFIGS` — the *real* architectural dimensions of the models
  the paper evaluates (BERT-base/large, BART-base, GPT2-XL, BLOOM-7B1,
  OPT-6.7B) plus a ResNet-18 tensor-shape listing.  These drive the GEMM
  workload generator for the performance/energy simulations (Figs. 9–10);
  no actual weights of that size are ever materialised.

* :func:`analogue_config` — scaled-down analogues used by the accuracy
  experiments.  They keep the architectural *family* (encoder / decoder /
  encoder-decoder), relative depth ordering and, crucially, the outlier
  statistics of the originals (Fig. 2 / Table 2), but with hidden sizes small
  enough that full NumPy inference is fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "ModelFamily",
    "ModelConfig",
    "AnalogueConfig",
    "PAPER_CONFIGS",
    "RESNET18_CONV_SHAPES",
    "analogue_config",
    "paper_config",
    "ACCURACY_MODELS",
    "LLM_MODELS",
    "PERF_MODELS",
    "SCALED_MODELS",
]


class ModelFamily:
    """Architectural families evaluated in the paper."""

    ENCODER = "encoder"              # BERT-like
    DECODER = "decoder"              # GPT/OPT/BLOOM-like
    ENCODER_DECODER = "encoder-decoder"  # BART-like


@dataclass(frozen=True)
class ModelConfig:
    """Full-size architecture description (used for workload generation)."""

    name: str
    family: str
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    vocab_size: int
    max_positions: int
    default_batch: int
    default_seq_len: int

    @property
    def approx_parameters(self) -> int:
        """Rough parameter count of the transformer blocks (ignores embeddings)."""
        per_layer = 4 * self.hidden_size * self.hidden_size + 2 * self.hidden_size * self.intermediate_size
        layers = self.num_layers * (2 if self.family == ModelFamily.ENCODER_DECODER else 1)
        return per_layer * layers


@dataclass(frozen=True)
class AnalogueConfig:
    """Scaled-down analogue used by accuracy experiments.

    ``outlier_max_sigma`` and ``outlier_ratio`` reproduce the outlier profile
    of the original model (Fig. 2 / Table 2 of the paper); ``activation_outlier_channels``
    is the number of embedding channels whose LayerNorm gain is amplified,
    modelling the per-channel activation outliers observed in real LLMs.
    """

    name: str
    family: str
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    vocab_size: int
    max_positions: int
    outlier_max_sigma: float
    outlier_ratio: float
    activation_outlier_channels: int
    activation_outlier_gain: float = 6.0
    lm_temperature: float = 0.25
    #: Geometric decay of per-layer residual-block output scale.  Trained
    #: LMs converge layer-wise: later blocks apply progressively smaller
    #: refinements to the residual stream (the property early-exit and
    #: speculative drafts exploit).  Random analogue weights have no such
    #: structure — every layer reshuffles the stream — so layer-prefix
    #: drafts are unpredictable at any width.  A decay < 1 scales layer
    #: ``i``'s attention/FFN output projections by ``decay**i`` to restore
    #: that convergence.  1.0 is a strict no-op (bitwise-identical build).
    residual_decay: float = 1.0


# --------------------------------------------------------------------------- #
# Paper-scale configurations (architecture dimensions from the public models)
# --------------------------------------------------------------------------- #
PAPER_CONFIGS: Dict[str, ModelConfig] = {
    "bert-base": ModelConfig(
        "bert-base", ModelFamily.ENCODER, 768, 12, 12, 3072, 30522, 512, 16, 128
    ),
    "bert-large": ModelConfig(
        "bert-large", ModelFamily.ENCODER, 1024, 24, 16, 4096, 30522, 512, 16, 128
    ),
    "bart-base": ModelConfig(
        "bart-base", ModelFamily.ENCODER_DECODER, 768, 6, 12, 3072, 50265, 1024, 16, 128
    ),
    "gpt2-xl": ModelConfig(
        "gpt2-xl", ModelFamily.DECODER, 1600, 48, 25, 6400, 50257, 1024, 2, 512
    ),
    "bloom-7b1": ModelConfig(
        "bloom-7b1", ModelFamily.DECODER, 4096, 30, 32, 16384, 250880, 2048, 2, 512
    ),
    "opt-6.7b": ModelConfig(
        "opt-6.7b", ModelFamily.DECODER, 4096, 32, 32, 16384, 50272, 2048, 2, 512
    ),
}

#: (out_channels, in_channels, kh, kw) of every ResNet-18 convolution, used to
#: build the CNN side of the Fig. 2 comparison.
RESNET18_CONV_SHAPES: List[Tuple[int, int, int, int]] = [
    (64, 3, 7, 7),
    (64, 64, 3, 3), (64, 64, 3, 3), (64, 64, 3, 3), (64, 64, 3, 3),
    (128, 64, 3, 3), (128, 128, 3, 3), (128, 64, 1, 1),
    (128, 128, 3, 3), (128, 128, 3, 3),
    (256, 128, 3, 3), (256, 256, 3, 3), (256, 128, 1, 1),
    (256, 256, 3, 3), (256, 256, 3, 3),
    (512, 256, 3, 3), (512, 512, 3, 3), (512, 256, 1, 1),
    (512, 512, 3, 3), (512, 512, 3, 3),
]


# --------------------------------------------------------------------------- #
# Scaled-down analogues (accuracy experiments)
# --------------------------------------------------------------------------- #
_ANALOGUES: Dict[str, AnalogueConfig] = {
    "bert-base": AnalogueConfig(
        "bert-base", ModelFamily.ENCODER, 64, 3, 4, 128, 96, 64,
        outlier_max_sigma=60.0, outlier_ratio=0.003, activation_outlier_channels=0,
        activation_outlier_gain=1.0,
    ),
    "bert-large": AnalogueConfig(
        "bert-large", ModelFamily.ENCODER, 80, 4, 4, 160, 96, 64,
        outlier_max_sigma=80.0, outlier_ratio=0.003, activation_outlier_channels=0,
        activation_outlier_gain=1.0,
    ),
    "bart-base": AnalogueConfig(
        "bart-base", ModelFamily.ENCODER_DECODER, 64, 2, 4, 128, 96, 64,
        outlier_max_sigma=70.0, outlier_ratio=0.003, activation_outlier_channels=0,
        activation_outlier_gain=1.0,
    ),
    "gpt2-xl": AnalogueConfig(
        "gpt2-xl", ModelFamily.DECODER, 64, 3, 4, 128, 96, 64,
        outlier_max_sigma=120.0, outlier_ratio=0.004, activation_outlier_channels=1,
        activation_outlier_gain=6.0, lm_temperature=0.6,
    ),
    "bloom-7b1": AnalogueConfig(
        "bloom-7b1", ModelFamily.DECODER, 80, 3, 4, 160, 96, 64,
        outlier_max_sigma=150.0, outlier_ratio=0.003, activation_outlier_channels=2,
        activation_outlier_gain=8.0, lm_temperature=0.6,
    ),
    "opt-6.7b": AnalogueConfig(
        "opt-6.7b", ModelFamily.DECODER, 80, 3, 4, 160, 96, 64,
        outlier_max_sigma=250.0, outlier_ratio=0.003, activation_outlier_channels=2,
        activation_outlier_gain=25.0, lm_temperature=0.6,
    ),
    "resnet-18": AnalogueConfig(
        "resnet-18", ModelFamily.ENCODER, 64, 2, 4, 128, 96, 64,
        outlier_max_sigma=8.0, outlier_ratio=0.002, activation_outlier_channels=0,
        activation_outlier_gain=1.0,
    ),
    # Scaled wall-clock tier.  Same outlier profile as the gpt2-xl analogue
    # but hidden/depth large enough that a decode round is GEMM-bound rather
    # than Python-overhead-bound, so kernel wins (bucketed attend, speculative
    # verify batching) show up in *wall time*, not just modeled round counts.
    # Accuracy experiments stay on the toy tier; this one exists for
    # benchmarks/bench_scaled_decode.py and equivalence tests.
    "gpt2-xl-scaled": AnalogueConfig(
        "gpt2-xl-scaled", ModelFamily.DECODER, 512, 4, 8, 1024, 96, 1024,
        outlier_max_sigma=120.0, outlier_ratio=0.004, activation_outlier_channels=1,
        activation_outlier_gain=6.0, lm_temperature=0.6, residual_decay=0.15,
    ),
}

#: Models used in the GLUE/SQuAD accuracy experiments.
ACCURACY_MODELS = ["bert-base", "bert-large", "bart-base"]

#: Models used in the LLM perplexity experiment (Table 9).
LLM_MODELS = ["gpt2-xl", "bloom-7b1", "opt-6.7b"]

#: Models used in the performance/energy experiments (Figs. 9–10).
PERF_MODELS = ["bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1"]

#: Scaled wall-clock tier: decode rounds are GEMM-bound, so serving
#: benchmarks measure real time here instead of modeled round counts.
SCALED_MODELS = ["gpt2-xl-scaled"]


def paper_config(name: str) -> ModelConfig:
    """Full-size architecture description by model name."""
    try:
        return PAPER_CONFIGS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; expected one of {sorted(PAPER_CONFIGS)}"
        ) from exc


def analogue_config(name: str) -> AnalogueConfig:
    """Scaled-down analogue configuration by model name."""
    try:
        return _ANALOGUES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown analogue {name!r}; expected one of {sorted(_ANALOGUES)}"
        ) from exc
