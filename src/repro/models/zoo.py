"""Synthetic model zoo.

Builds deterministic, outlier-bearing analogues of the models evaluated in the
paper (see ``DESIGN.md`` §2 for the substitution rationale).  Every builder is
seeded, so a given ``(model name, seed)`` always yields bit-identical weights.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.configs import (
    AnalogueConfig,
    ModelFamily,
    RESNET18_CONV_SHAPES,
    analogue_config,
)
from repro.models.outliers import inject_model_outliers, inject_tensor_outliers
from repro.nn.heads import ClassificationHead, LMHead, SpanHead
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.transformer import (
    TransformerDecoder,
    TransformerEncoder,
    TransformerEncoderDecoder,
)

__all__ = [
    "DRAFT_NAME_SEPARATOR",
    "SequenceClassifier",
    "SpanExtractor",
    "CausalLM",
    "build_backbone",
    "build_classifier",
    "build_span_model",
    "build_causal_lm",
    "build_draft_lm",
    "model_weight_tensors",
    "parse_draft_name",
    "resnet18_tensors",
    "transformer_analogue_tensors",
]


class SequenceClassifier(Module):
    """Backbone + pooled classification head (GLUE-style tasks)."""

    def __init__(self, backbone: Module, head: ClassificationHead, config: AnalogueConfig) -> None:
        super().__init__()
        self.backbone = backbone
        self.head = head
        self.config = config

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(token_ids))


class SpanExtractor(Module):
    """Backbone + start/end span head (SQuAD-style tasks)."""

    def __init__(self, backbone: Module, head: SpanHead, config: AnalogueConfig) -> None:
        super().__init__()
        self.backbone = backbone
        self.head = head
        self.config = config

    def forward(self, token_ids: np.ndarray):
        return self.head(self.backbone(token_ids))


class CausalLM(Module):
    """Decoder backbone + LM head (perplexity evaluation)."""

    def __init__(self, backbone: Module, head: LMHead, config: AnalogueConfig) -> None:
        super().__init__()
        self.backbone = backbone
        self.head = head
        self.config = config

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.head(self.backbone(token_ids))

    def log_probs(self, token_ids: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary at every position."""
        return self.head.log_probs(self.backbone(token_ids))

    def log_probs_incremental(
        self,
        token_ids: np.ndarray,
        caches,
        last_only: bool = False,
        batched_rounds: Optional[bool] = None,
        tracer=None,
        scratch=None,
    ) -> np.ndarray:
        """Log-probabilities of new tokens only, via per-sequence KV caches.

        ``token_ids`` is ``(num_seqs, t_new)`` (or 1-D for one sequence) and
        ``caches`` one :class:`~repro.serve.kvcache.SequenceKVCache` per row;
        the prefix K/V come from the caches instead of being recomputed.
        ``last_only`` runs the LM head on the final position alone — what a
        prefill needs for next-token selection — skipping an
        O(prompt × vocab) head GEMM; the returned array then has one
        position.  ``batched_rounds=True`` routes attention through the
        ragged round kernel — the speculative verify pass uses it to advance
        ``m`` tokens per slot in one batched pass.  ``tracer`` (duck-typed,
        optional — the serving tracer's span protocol) records per-phase
        spans down the forward path.  ``scratch`` is an optional persistent
        :class:`~repro.nn.attention.AttendScratch` threaded to the backbone
        so a serve loop reuses its round buffers across rounds.
        """
        hidden = self.backbone.forward_incremental(
            token_ids, caches, batched_rounds=batched_rounds, tracer=tracer,
            scratch=scratch,
        )
        if last_only:
            hidden = hidden[:, -1:]
        if tracer is not None and tracer.enabled:
            with tracer.span("lm_head"):
                return self.head.log_probs(hidden)
        return self.head.log_probs(hidden)


def build_backbone(config: AnalogueConfig, rng: np.random.Generator) -> Module:
    """Build the transformer backbone matching the analogue's family."""
    kwargs = dict(
        vocab_size=config.vocab_size,
        hidden_size=config.hidden_size,
        num_layers=config.num_layers,
        num_heads=config.num_heads,
        intermediate_size=config.intermediate_size,
        max_positions=config.max_positions,
        rng=rng,
    )
    if config.family == ModelFamily.ENCODER:
        return TransformerEncoder(**kwargs)
    if config.family == ModelFamily.DECODER:
        return TransformerDecoder(**kwargs)
    if config.family == ModelFamily.ENCODER_DECODER:
        return TransformerEncoderDecoder(**kwargs)
    raise ValueError(f"unknown model family {config.family!r}")


def _finalise(model: Module, config: AnalogueConfig, seed: int) -> Module:
    """Inject the model's outlier profile after construction."""
    return inject_model_outliers(
        model,
        ratio=config.outlier_ratio,
        max_sigma=config.outlier_max_sigma,
        activation_channels=config.activation_outlier_channels,
        seed=seed + 1,
        activation_gain=config.activation_outlier_gain,
    )


def build_classifier(name: str, num_classes: int, seed: int = 0) -> SequenceClassifier:
    """Build a GLUE-style classifier analogue of ``name``."""
    config = analogue_config(name)
    rng = np.random.default_rng(seed)
    backbone = build_backbone(config, rng)
    head = ClassificationHead(config.hidden_size, num_classes, rng=rng)
    model = SequenceClassifier(backbone, head, config)
    return _finalise(model, config, seed)


def build_span_model(name: str, seed: int = 0) -> SpanExtractor:
    """Build a SQuAD-style span extraction analogue of ``name``."""
    config = analogue_config(name)
    rng = np.random.default_rng(seed)
    backbone = build_backbone(config, rng)
    head = SpanHead(config.hidden_size, rng=rng)
    model = SpanExtractor(backbone, head, config)
    return _finalise(model, config, seed)


def build_causal_lm(name: str, seed: int = 0) -> CausalLM:
    """Build a causal-LM analogue of ``name`` with a sharpened LM head.

    ``name`` may carry a draft suffix (``"gpt2-xl@draft1"``): the build is
    delegated to :func:`build_draft_lm`, yielding the layer-truncated
    speculative draft of the base model (same seed → bit-identical shared
    weights).
    """
    draft = parse_draft_name(name)
    if draft is not None:
        base, num_layers = draft
        return build_draft_lm(base, seed=seed, num_layers=num_layers)
    config = analogue_config(name)
    rng = np.random.default_rng(seed)
    decoder_config = config
    if config.family != ModelFamily.DECODER:
        raise ValueError(f"model {name!r} is not a decoder-only LLM analogue")
    backbone = build_backbone(decoder_config, rng)
    _apply_residual_decay(backbone, config.residual_decay)
    head = LMHead(
        config.hidden_size, config.vocab_size, temperature=config.lm_temperature, rng=rng
    )
    model = CausalLM(backbone, head, config)
    return _finalise(model, config, seed)


def _apply_residual_decay(backbone: Module, decay: float) -> None:
    """Scale layer ``i``'s block outputs by ``decay**i`` (no-op at 1.0).

    Trained LMs refine the residual stream in progressively smaller steps
    — the layer-wise convergence that early exit and layer-prefix drafts
    rely on.  Random analogue weights lack it, so the scaled tier opts in
    via ``AnalogueConfig.residual_decay``.  Scaling the attention/FFN
    *output* projections scales each block's entire residual contribution
    while leaving its internal statistics (and the outlier profile injected
    afterwards, which is proportional to each matrix) untouched.
    """
    if decay == 1.0:
        return
    for index in range(backbone.num_layers):
        layer = getattr(backbone, f"layer_{index}")
        gain = decay ** index
        for linear in (layer.self_attention.out_proj, layer.ffn.fc_out):
            linear.weight.data = linear.weight.data * gain
            if linear.bias is not None:
                linear.bias.data = linear.bias.data * gain


#: Suffix marking a speculative draft build: ``"<base>@draft<num_layers>"``.
DRAFT_NAME_SEPARATOR = "@draft"


def parse_draft_name(name: str) -> Optional[Tuple[str, int]]:
    """Split a draft model name into ``(base_name, num_layers)``.

    Returns ``None`` for plain zoo names.  The depth must be a positive
    integer — ``"gpt2-xl@draft1"`` keeps the first decoder layer only.
    """
    if DRAFT_NAME_SEPARATOR not in name:
        return None
    base, _, depth = name.partition(DRAFT_NAME_SEPARATOR)
    try:
        num_layers = int(depth)
    except ValueError:
        raise ValueError(
            f"malformed draft model name {name!r}; "
            f"expected '<base>{DRAFT_NAME_SEPARATOR}<num_layers>'"
        ) from None
    if not base or num_layers < 1:
        raise ValueError(
            f"malformed draft model name {name!r}; "
            f"expected '<base>{DRAFT_NAME_SEPARATOR}<num_layers>'"
        )
    return base, num_layers


def build_draft_lm(name: str, seed: int = 0, num_layers: int = 1) -> CausalLM:
    """Build the layer-truncated speculative draft of causal LM ``name``.

    The draft is the *prefix* of the full model: the same embeddings, the
    first ``num_layers`` decoder layers, the same final norm and the same LM
    head.  It is built from the full model at the same seed and then
    truncated, so every kept weight (outlier injection included) is bitwise
    identical to the target's — the draft's residual stream is the target's
    minus the dropped layers' contributions, which is what makes its
    next-token guesses worth verifying.  Serving-side calibration
    (:class:`repro.serve.spec.SpeculativeDecoder`) fits the speculative heads
    that turn this hidden state into multi-position proposals.
    """
    full = build_causal_lm(name, seed=seed)
    backbone = full.backbone
    keep = int(num_layers)
    if keep >= backbone.num_layers:
        raise ValueError(
            f"draft of {name!r} must be smaller than the target "
            f"({backbone.num_layers} layers); got num_layers={num_layers}"
        )
    for index in range(keep, backbone.num_layers):
        attr = f"layer_{index}"
        backbone._modules.pop(attr)
        object.__delattr__(backbone, attr)
    backbone.num_layers = keep
    config = dataclasses.replace(
        full.config,
        name=f"{name}{DRAFT_NAME_SEPARATOR}{keep}",
        num_layers=keep,
    )
    full.config = config
    return full


def model_weight_tensors(model: Module) -> Dict[str, np.ndarray]:
    """Collect every Linear weight tensor of ``model`` keyed by dotted name.

    These are the GEMM operands the paper analyses and quantizes.
    """
    tensors: Dict[str, np.ndarray] = {}
    for name, module in model.named_modules():
        if isinstance(module, Linear):
            tensors[f"{name}.weight" if name else "weight"] = module.weight.data
    return tensors


def resnet18_tensors(seed: int = 0) -> Dict[str, np.ndarray]:
    """Synthetic ResNet-18 convolution weights (CNN side of Fig. 2).

    CNN weights are close to Gaussian with maxima around 8–28σ (paper Fig. 2a),
    an order of magnitude smaller than transformer outliers.
    """
    rng = np.random.default_rng(seed)
    config = analogue_config("resnet-18")
    tensors: Dict[str, np.ndarray] = {}
    for i, (out_c, in_c, kh, kw) in enumerate(RESNET18_CONV_SHAPES):
        weight = rng.normal(0.0, 0.05, size=(out_c, in_c, kh, kw))
        max_sigma = float(rng.uniform(3.5, config.outlier_max_sigma * 1.5))
        weight = inject_tensor_outliers(
            weight, ratio=config.outlier_ratio, max_sigma=max_sigma, rng=rng, min_sigma=3.5
        )
        tensors[f"conv_{i}.weight"] = weight
    return tensors


def transformer_analogue_tensors(name: str, seed: int = 0) -> Dict[str, np.ndarray]:
    """Linear weight tensors of the analogue model ``name`` (Fig. 2 / Table 2 input)."""
    config = analogue_config(name)
    rng = np.random.default_rng(seed)
    backbone = build_backbone(config, rng)
    _finalise(backbone, config, seed)
    return model_weight_tensors(backbone)
