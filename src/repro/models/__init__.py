"""Synthetic model zoo and model configurations."""

from repro.models.configs import (
    ACCURACY_MODELS,
    LLM_MODELS,
    PERF_MODELS,
    AnalogueConfig,
    ModelConfig,
    ModelFamily,
    PAPER_CONFIGS,
    RESNET18_CONV_SHAPES,
    analogue_config,
    paper_config,
)
from repro.models.outliers import (
    inject_activation_outliers,
    inject_model_outliers,
    inject_tensor_outliers,
    inject_weight_outliers,
)
from repro.models.zoo import (
    CausalLM,
    SequenceClassifier,
    SpanExtractor,
    build_backbone,
    build_causal_lm,
    build_classifier,
    build_span_model,
    model_weight_tensors,
    resnet18_tensors,
    transformer_analogue_tensors,
)

__all__ = [
    "ModelFamily",
    "ModelConfig",
    "AnalogueConfig",
    "PAPER_CONFIGS",
    "RESNET18_CONV_SHAPES",
    "ACCURACY_MODELS",
    "LLM_MODELS",
    "PERF_MODELS",
    "analogue_config",
    "paper_config",
    "inject_tensor_outliers",
    "inject_weight_outliers",
    "inject_activation_outliers",
    "inject_model_outliers",
    "SequenceClassifier",
    "SpanExtractor",
    "CausalLM",
    "build_backbone",
    "build_classifier",
    "build_span_model",
    "build_causal_lm",
    "model_weight_tensors",
    "resnet18_tensors",
    "transformer_analogue_tensors",
]
