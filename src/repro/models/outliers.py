"""Outlier injection for the synthetic model zoo.

The paper's whole premise rests on the outlier structure of trained
transformer weights and activations (Fig. 2, Table 2): a Gaussian bulk plus a
sub-percent fraction of values whose magnitude reaches tens to hundreds of σ.
Randomly-initialised tiny models do not have that structure, so the model zoo
injects it deterministically:

* **weight outliers** — a small random fraction of entries of each linear
  weight is rescaled to magnitudes drawn log-uniformly between 6σ and the
  target ``max_sigma`` of the model being imitated;
* **activation outliers** — a few LayerNorm gain channels are amplified,
  which produces the per-channel activation outliers observed in real LLMs
  (the mechanism behind LLM.int8()'s findings cited by the paper).

Because the injected outliers dominate the dot products they participate in,
clipping them (as naive low-bit quantization does) damages the model output —
exactly the sensitivity the paper measures.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module

__all__ = [
    "inject_tensor_outliers",
    "inject_weight_outliers",
    "inject_activation_outliers",
    "inject_model_outliers",
]


def inject_tensor_outliers(
    tensor: np.ndarray,
    ratio: float,
    max_sigma: float,
    rng: np.random.Generator,
    min_sigma: float = 6.0,
) -> np.ndarray:
    """Return a copy of ``tensor`` with a fraction of entries turned into outliers.

    ``ratio`` of the entries are selected uniformly at random and rescaled so
    their magnitudes are log-uniform in ``[min_sigma, max_sigma]`` × σ of the
    original tensor, keeping their signs.
    """
    tensor = np.asarray(tensor, dtype=np.float64).copy()
    flat = tensor.ravel()
    sigma = float(np.std(flat))
    if sigma == 0.0 or flat.size == 0 or ratio <= 0.0:
        return tensor
    n_outliers = max(1, int(round(flat.size * ratio)))
    n_outliers = min(n_outliers, flat.size)
    idx = rng.choice(flat.size, size=n_outliers, replace=False)
    # Heavy-tailed but fast-decaying magnitude profile: most outliers sit just
    # above the 3σ/6σ boundary and only a rare tail reaches max_sigma, matching
    # the measured profile of trained transformers (paper Fig. 2: >6σ values
    # are "extremely few" even though the maximum reaches hundreds of σ).
    u = rng.random(n_outliers)
    log_low, log_high = np.log(min_sigma), np.log(max(max_sigma, min_sigma + 1e-6))
    magnitudes = np.exp(log_low + (log_high - log_low) * u ** 3) * sigma
    signs = np.where(rng.random(n_outliers) < 0.5, -1.0, 1.0)
    existing_signs = np.sign(flat[idx])
    signs = np.where(existing_signs != 0, existing_signs, signs)
    flat[idx] = signs * magnitudes
    return flat.reshape(tensor.shape)


def inject_weight_outliers(
    model: Module,
    ratio: float,
    max_sigma: float,
    rng: np.random.Generator,
) -> None:
    """Inject outliers into every Linear weight of ``model`` (in place)."""
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            module.weight.copy_(
                inject_tensor_outliers(module.weight.data, ratio, max_sigma, rng)
            )


def inject_activation_outliers(
    model: Module,
    num_channels: int,
    gain: float,
    rng: np.random.Generator,
) -> None:
    """Amplify a few LayerNorm gain channels to create activation outliers."""
    if num_channels <= 0:
        return
    for _, module in model.named_modules():
        if isinstance(module, LayerNorm):
            gamma = module.gamma.data.copy()
            n = min(num_channels, gamma.size)
            channels = rng.choice(gamma.size, size=n, replace=False)
            gamma[channels] *= gain
            module.gamma.copy_(gamma)


def inject_model_outliers(
    model: Module,
    ratio: float,
    max_sigma: float,
    activation_channels: int,
    seed: int = 0,
    activation_gain: float = 8.0,
) -> Module:
    """Apply both weight and activation outlier injection to ``model``."""
    rng = np.random.default_rng(seed)
    inject_weight_outliers(model, ratio, max_sigma, rng)
    inject_activation_outliers(model, activation_channels, activation_gain, rng)
    return model
