"""Common interface for all tensor quantizers (OliVe and the baselines).

A *quantizer* is an object with two methods:

* ``fit(tensor)`` — calibrate scale factors / thresholds on a tensor and
  return ``self``;
* ``quantize(tensor)`` — return the fake-quantized (quantize→dequantize)
  tensor.

The OVP quantizer in :mod:`repro.core.quantizer` already satisfies this
protocol; the baseline quantizers in this package subclass
:class:`BaseQuantizer` to share the MSE-driven scale search that most of them
use (paper Sec. 3.4 notes MSE minimisation is the standard approach).
"""

from __future__ import annotations

import abc
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["Quantizer", "BaseQuantizer", "mse_optimal_scale"]


@runtime_checkable
class Quantizer(Protocol):
    """Structural type for anything usable as a weight/activation quantizer."""

    name: str

    def fit(self, tensor: np.ndarray) -> "Quantizer":  # pragma: no cover - protocol
        ...

    def quantize(self, tensor: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


def mse_optimal_scale(
    tensor: np.ndarray,
    quantize_grid,
    max_level: float,
    num_candidates: int = 40,
    low_fraction: float = 0.05,
) -> float:
    """Search the clipping scale that minimises quantization MSE.

    Parameters
    ----------
    tensor:
        Values to calibrate on.
    quantize_grid:
        Callable mapping grid values (``tensor / scale``) to their quantized
        grid values.
    max_level:
        The largest representable grid magnitude (e.g. 7 for int4).
    num_candidates:
        Number of clipping candidates between ``low_fraction × max|x|`` and
        ``max|x|``.
    """
    flat = np.asarray(tensor, dtype=np.float64).ravel()
    max_abs = float(np.max(np.abs(flat))) if flat.size else 0.0
    if max_abs == 0.0:
        return 1.0
    best_scale = max_abs / max_level
    best_mse = np.inf
    for frac in np.linspace(low_fraction, 1.0, num_candidates):
        clip = max_abs * frac
        scale = clip / max_level
        deq = quantize_grid(flat / scale) * scale
        mse = float(np.mean((deq - flat) ** 2))
        if mse < best_mse:
            best_mse = mse
            best_scale = scale
    return best_scale


class BaseQuantizer(abc.ABC):
    """Shared plumbing for baseline quantizers: scale storage and fit/quantize."""

    #: Human-readable quantizer name; subclasses override.
    name: str = "base"
    #: Storage bits per element (used by the performance model).
    bits: int = 8

    def __init__(self) -> None:
        self._scale: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._scale is not None

    @property
    def scale(self) -> float:
        """The fitted scale factor."""
        if self._scale is None:
            raise RuntimeError(f"{self.name}: quantizer not fitted")
        return self._scale

    @abc.abstractmethod
    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        """Quantize values already divided by the scale."""

    @property
    @abc.abstractmethod
    def max_level(self) -> float:
        """Largest representable grid magnitude."""

    def fit(self, tensor: np.ndarray) -> "BaseQuantizer":
        """Calibrate the scale with an MSE search."""
        self._scale = mse_optimal_scale(tensor, self._quantize_grid, self.max_level)
        return self

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Fake-quantize ``tensor`` with the fitted scale."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        return self._quantize_grid(tensor / self.scale) * self.scale

    def quantization_mse(self, tensor: np.ndarray) -> float:
        """MSE of quantizing ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        return float(np.mean((self.quantize(tensor) - tensor) ** 2))
