"""Uniform integer quantizers: the ``int4``/``int8`` baselines of the paper.

These are the "indiscriminate" quantizers the paper argues against: a single
symmetric scale covers the whole tensor, so either the scale is dominated by
the outliers (destroying resolution for the 99.9 % of normal values) or the
outliers are clipped (destroying the information the model actually relies
on).  The MSE scale search picks whichever compromise is least bad — which is
exactly what existing frameworks do and exactly what fails on LLMs
(paper Table 9: ``int8`` collapses on OPT-6.7B, ``int4`` collapses everywhere).
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import BaseQuantizer

__all__ = ["UniformQuantizer", "Int4Quantizer", "Int8Quantizer", "Int6Quantizer"]


class UniformQuantizer(BaseQuantizer):
    """Symmetric uniform quantizer with ``bits`` of precision."""

    def __init__(self, bits: int) -> None:
        super().__init__()
        if bits < 2 or bits > 16:
            raise ValueError("bits must be between 2 and 16")
        self.bits = int(bits)
        self.name = f"int{bits}"
        self._max_level = float((1 << (bits - 1)) - 1)

    @property
    def max_level(self) -> float:
        return self._max_level

    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        return np.clip(np.round(grid), -self._max_level, self._max_level)


class Int4Quantizer(UniformQuantizer):
    """4-bit symmetric uniform quantizer."""

    def __init__(self) -> None:
        super().__init__(4)


class Int6Quantizer(UniformQuantizer):
    """6-bit symmetric uniform quantizer (Outlier Suppression's PTQ setting)."""

    def __init__(self) -> None:
        super().__init__(6)


class Int8Quantizer(UniformQuantizer):
    """8-bit symmetric uniform quantizer."""

    def __init__(self) -> None:
        super().__init__(8)
