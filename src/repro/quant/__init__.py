"""Quantization baselines compared against OliVe in the paper."""

from repro.quant.adafloat import AdaptivFloatQuantizer
from repro.quant.ant import AntMixedQuantizer, AntQuantizer
from repro.quant.base import BaseQuantizer, Quantizer, mse_optimal_scale
from repro.quant.gobo import GoboQuantizer
from repro.quant.olaccel import OLAccelQuantizer
from repro.quant.outlier_suppression import OutlierSuppressionQuantizer
from repro.quant.q8bert import Q8BertQuantizer
from repro.quant.registry import QUANTIZER_FACTORIES, available_quantizers, create_quantizer
from repro.quant.uniform import Int4Quantizer, Int6Quantizer, Int8Quantizer, UniformQuantizer

__all__ = [
    "Quantizer",
    "BaseQuantizer",
    "mse_optimal_scale",
    "UniformQuantizer",
    "Int4Quantizer",
    "Int6Quantizer",
    "Int8Quantizer",
    "AntQuantizer",
    "AntMixedQuantizer",
    "GoboQuantizer",
    "OLAccelQuantizer",
    "AdaptivFloatQuantizer",
    "OutlierSuppressionQuantizer",
    "Q8BertQuantizer",
    "QUANTIZER_FACTORIES",
    "create_quantizer",
    "available_quantizers",
]
