"""Name-based construction of tensor quantizers (OliVe and all baselines)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer
from repro.quant.adafloat import AdaptivFloatQuantizer
from repro.quant.ant import AntMixedQuantizer, AntQuantizer
from repro.quant.gobo import GoboQuantizer
from repro.quant.olaccel import OLAccelQuantizer
from repro.quant.outlier_suppression import OutlierSuppressionQuantizer
from repro.quant.q8bert import Q8BertQuantizer
from repro.quant.uniform import Int4Quantizer, Int6Quantizer, Int8Quantizer

__all__ = ["QUANTIZER_FACTORIES", "create_quantizer", "available_quantizers"]


QUANTIZER_FACTORIES: Dict[str, Callable[[], object]] = {
    # OliVe (the paper's contribution)
    "olive-4bit": lambda: OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype="int4")),
    "olive-flint4": lambda: OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype="flint4")),
    "olive-8bit": lambda: OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype="int8")),
    # Uniform integer baselines
    "int4": Int4Quantizer,
    "int6": Int6Quantizer,
    "int8": Int8Quantizer,
    # Published baselines
    "ant4": lambda: AntQuantizer(bits=4),
    "ant8": lambda: AntQuantizer(bits=8),
    "ant-mixed": AntMixedQuantizer,
    "gobo": GoboQuantizer,
    "olaccel": OLAccelQuantizer,
    "os4": lambda: OutlierSuppressionQuantizer(bits=4),
    "os6": lambda: OutlierSuppressionQuantizer(bits=6),
    "q8bert": Q8BertQuantizer,
    "adafloat8": lambda: AdaptivFloatQuantizer(bits=8),
}


def create_quantizer(name: str):
    """Instantiate a fresh quantizer by registry name."""
    try:
        factory = QUANTIZER_FACTORIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown quantizer {name!r}; expected one of {sorted(QUANTIZER_FACTORIES)}"
        ) from exc
    return factory()


def available_quantizers():
    """Sorted list of registered quantizer names."""
    return sorted(QUANTIZER_FACTORIES)
