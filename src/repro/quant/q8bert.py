"""Q8BERT (NeurIPS EMC² 2019) baseline: symmetric 8-bit GEMM quantization.

Q8BERT quantizes all GEMM weights and activations to symmetric 8-bit integers
using max-calibrated scales (with an EMA over calibration batches for
activations).  It was designed as a QAT method; used post-training it is
simply an 8-bit max-calibrated quantizer, which is how the OliVe paper's
comparison treats it.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import BaseQuantizer

__all__ = ["Q8BertQuantizer"]


class Q8BertQuantizer(BaseQuantizer):
    """Symmetric 8-bit quantizer with max calibration and EMA updates."""

    def __init__(self, ema_decay: float = 0.9) -> None:
        super().__init__()
        self.bits = 8
        self.name = "q8bert"
        self.ema_decay = float(ema_decay)
        self._ema_max: float = 0.0

    @property
    def max_level(self) -> float:
        return 127.0

    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        return np.clip(np.round(grid), -127.0, 127.0)

    def fit(self, tensor: np.ndarray) -> "Q8BertQuantizer":
        """Update the EMA of the maximum magnitude and derive the scale."""
        flat = np.abs(np.asarray(tensor, dtype=np.float64).ravel())
        batch_max = float(np.max(flat)) if flat.size else 1.0
        if self._ema_max == 0.0:
            self._ema_max = batch_max
        else:
            self._ema_max = self.ema_decay * self._ema_max + (1.0 - self.ema_decay) * batch_max
        self._scale = max(self._ema_max, 1e-12) / self.max_level
        return self
