"""ANT (MICRO 2022) baseline: adaptive numerical data type, no outlier handling.

ANT selects, per tensor, the fixed-length data type that best matches the
tensor's distribution (the paper's Table 3 lists ``int4`` and ``flint4``).  It
achieves excellent results on CNNs but, as the OliVe paper shows, it cannot
cope with transformer outliers: whatever type it picks, a single scale has to
cover magnitudes hundreds of σ away from the bulk.

The model-level mixed-precision behaviour ("80 % of layers end up using int8",
paper Sec. 5.3) is reproduced by :class:`AntMixedQuantizer`, which falls back
to 8 bits whenever the 4-bit MSE is too large relative to the tensor's power.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dtypes import FLINT4, INT4, INT8, NormalDataType
from repro.quant.base import BaseQuantizer, mse_optimal_scale

__all__ = ["AntQuantizer", "AntMixedQuantizer"]


class AntQuantizer(BaseQuantizer):
    """Per-tensor adaptive data-type selection among int/flint (no outliers)."""

    def __init__(self, bits: int = 4) -> None:
        super().__init__()
        if bits not in (4, 8):
            raise ValueError("ANT supports 4- and 8-bit quantization")
        self.bits = int(bits)
        self.name = f"ant{bits}"
        self._candidates = [INT4, FLINT4] if bits == 4 else [INT8]
        self._selected: Optional[NormalDataType] = None

    @property
    def selected_dtype(self) -> Optional[NormalDataType]:
        """The data type chosen by the last :meth:`fit`."""
        return self._selected

    @property
    def max_level(self) -> float:
        dtype = self._selected or self._candidates[0]
        return dtype.max_value

    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        dtype = self._selected or self._candidates[0]
        return dtype.quantize(np.clip(grid, -dtype.max_value, dtype.max_value))

    def fit(self, tensor: np.ndarray) -> "AntQuantizer":
        """Pick the (data type, scale) pair with the smallest MSE."""
        tensor = np.asarray(tensor, dtype=np.float64)
        best = (np.inf, self._candidates[0], 1.0)
        for dtype in self._candidates:
            def grid_fn(grid, _dtype=dtype):
                return _dtype.quantize(np.clip(grid, -_dtype.max_value, _dtype.max_value))

            scale = mse_optimal_scale(tensor, grid_fn, _max_level(dtype))
            deq = grid_fn(tensor / scale) * scale
            mse = float(np.mean((deq - tensor) ** 2))
            if mse < best[0]:
                best = (mse, dtype, scale)
        self._selected = best[1]
        self._scale = best[2]
        return self


def _max_level(dtype: NormalDataType) -> float:
    return dtype.max_value


class AntMixedQuantizer(BaseQuantizer):
    """ANT with per-tensor 4-bit/8-bit fallback (the paper's PTQ configuration).

    The tensor is quantized at 4 bits first; if the resulting signal-to-noise
    ratio is below ``snr_threshold`` (quantization noise too large, typically
    because of outliers), the quantizer falls back to 8 bits for that tensor.
    """

    def __init__(self, snr_threshold: float = 20.0) -> None:
        super().__init__()
        self.name = "ant-mixed"
        self.snr_threshold = float(snr_threshold)
        self._inner: Optional[AntQuantizer] = None
        self.bits = 4

    @property
    def selected_bits(self) -> int:
        """Bit width chosen for the last fitted tensor."""
        return self.bits

    @property
    def max_level(self) -> float:
        return self._inner.max_level if self._inner else INT4.max_value

    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        if self._inner is None:
            raise RuntimeError("ant-mixed: quantizer not fitted")
        return self._inner._quantize_grid(grid)

    def fit(self, tensor: np.ndarray) -> "AntMixedQuantizer":
        tensor = np.asarray(tensor, dtype=np.float64)
        four_bit = AntQuantizer(bits=4).fit(tensor)
        power = float(np.mean(tensor ** 2)) + 1e-12
        mse4 = four_bit.quantization_mse(tensor)
        snr4 = 10.0 * np.log10(power / (mse4 + 1e-12))
        if snr4 >= self.snr_threshold:
            self._inner = four_bit
            self.bits = 4
        else:
            self._inner = AntQuantizer(bits=8).fit(tensor)
            self.bits = 8
        self._scale = self._inner.scale
        return self

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float64)
        if self._inner is None:
            self.fit(tensor)
        return self._inner.quantize(tensor)
