"""OLAccel (ISCA 2018) baseline: outlier-aware mixed-precision quantization.

OLAccel keeps the small fraction of large-magnitude values ("outliers") at
high precision (16-bit in the original paper; 8-bit integer here, matching the
OliVe paper's extension of OLAccel to transformers) while the dense majority
is quantized to 4 bits.  The outliers are stored sparsely with a coordinate
list, which is what makes the hardware expensive — numerically, however, the
scheme is accurate, and that is what this quantizer reproduces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["OLAccelQuantizer"]


class OLAccelQuantizer:
    """4-bit dense values + 8-bit sparse outliers (element-wise mixed precision)."""

    def __init__(
        self,
        normal_bits: int = 4,
        outlier_bits: int = 8,
        outlier_fraction: float = 0.01,
    ) -> None:
        self.normal_bits = int(normal_bits)
        self.outlier_bits = int(outlier_bits)
        self.outlier_fraction = float(outlier_fraction)
        self.name = "olaccel"
        self.bits = normal_bits
        self._threshold: Optional[float] = None
        self._normal_scale: Optional[float] = None
        self._outlier_scale: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._threshold is not None

    def fit(self, tensor: np.ndarray) -> "OLAccelQuantizer":
        """Split at the ``1 - outlier_fraction`` magnitude quantile and fit scales."""
        flat = np.abs(np.asarray(tensor, dtype=np.float64).ravel())
        if flat.size == 0:
            self._threshold = 0.0
            self._normal_scale = 1.0
            self._outlier_scale = 1.0
            return self
        self._threshold = float(np.quantile(flat, 1.0 - self.outlier_fraction))
        normal_max = max(self._threshold, 1e-12)
        outlier_max = max(float(np.max(flat)), normal_max)
        self._normal_scale = normal_max / self._normal_level
        self._outlier_scale = outlier_max / self._outlier_level
        return self

    @property
    def _normal_level(self) -> float:
        return float((1 << (self.normal_bits - 1)) - 1)

    @property
    def _outlier_level(self) -> float:
        return float((1 << (self.outlier_bits - 1)) - 1)

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Fake-quantize: normals at ``normal_bits``, outliers at ``outlier_bits``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        is_outlier = np.abs(tensor) > self._threshold
        normal_q = (
            np.clip(np.round(tensor / self._normal_scale), -self._normal_level, self._normal_level)
            * self._normal_scale
        )
        outlier_q = (
            np.clip(np.round(tensor / self._outlier_scale), -self._outlier_level, self._outlier_level)
            * self._outlier_scale
        )
        return np.where(is_outlier, outlier_q, normal_q)

    def quantization_mse(self, tensor: np.ndarray) -> float:
        """MSE of quantizing ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        return float(np.mean((self.quantize(tensor) - tensor) ** 2))
