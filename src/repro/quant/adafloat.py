"""AdaptivFloat (DAC 2020) baseline: float format with a tensor-wise exponent bias.

AdaptivFloat quantizes a tensor to a small floating-point format whose
exponent bias is chosen per tensor so the representable range covers the
tensor's maximum magnitude.  Unlike OliVe's ``abfloat`` (which biases the
range *above* the normal values to dedicate every code point to outliers),
AdaptivFloat spends its dynamic range on the whole tensor at once, so with few
mantissa bits the resolution around the Gaussian bulk is coarse.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["AdaptivFloatQuantizer"]


class AdaptivFloatQuantizer:
    """Sign + exponent + mantissa float quantizer with a learned exponent bias."""

    def __init__(self, bits: int = 8, exp_bits: int = 4) -> None:
        if exp_bits >= bits - 1:
            raise ValueError("exponent bits must leave room for sign and mantissa")
        self.bits = int(bits)
        self.exp_bits = int(exp_bits)
        self.man_bits = bits - 1 - exp_bits
        self.name = f"adafloat{bits}"
        self._bias: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._bias is not None

    @property
    def exponent_bias(self) -> int:
        """The fitted tensor-wise exponent bias."""
        if self._bias is None:
            raise RuntimeError("adafloat: quantizer not fitted")
        return self._bias

    def fit(self, tensor: np.ndarray) -> "AdaptivFloatQuantizer":
        """Choose the exponent bias so the format covers the tensor maximum."""
        flat = np.abs(np.asarray(tensor, dtype=np.float64).ravel())
        max_abs = float(np.max(flat)) if flat.size else 1.0
        if max_abs == 0.0:
            max_abs = 1.0
        # Pick the bias so the top exponent field covers the tensor maximum:
        # values in [2^e, 2^(e+1)) need exponent e, so e_max = floor(log2(max)).
        max_exp_field = (1 << self.exp_bits) - 1
        self._bias = int(math.floor(math.log2(max_abs))) - max_exp_field
        return self

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Fake-quantize ``tensor`` with the fitted AdaptivFloat format."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        sign = np.sign(tensor)
        mag = np.abs(tensor)
        out = np.zeros_like(tensor)
        nonzero = mag > 0
        if not np.any(nonzero):
            return out
        exp = np.floor(np.log2(mag[nonzero]))
        exp_field = exp - self._bias
        max_exp_field = (1 << self.exp_bits) - 1
        exp_field = np.clip(exp_field, 0, max_exp_field)
        exp = exp_field + self._bias
        # Quantize mantissa in [1, 2) to man_bits fractional bits.
        mantissa = mag[nonzero] / (2.0 ** exp)
        steps = 2.0 ** self.man_bits
        mantissa_q = np.round(np.clip(mantissa, 1.0, 2.0 - 1.0 / steps) * steps) / steps
        # Values below the smallest representable magnitude flush to zero.
        min_mag = 1.0 * 2.0 ** self._bias
        quantized = mantissa_q * (2.0 ** exp)
        quantized = np.where(mag[nonzero] < min_mag / 2.0, 0.0, quantized)
        out[nonzero] = quantized
        return sign * out

    def quantization_mse(self, tensor: np.ndarray) -> float:
        """MSE of quantizing ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        return float(np.mean((self.quantize(tensor) - tensor) ** 2))
