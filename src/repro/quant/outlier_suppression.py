"""Outlier Suppression (NeurIPS 2022) baseline, approximated for the substrate.

Outlier Suppression attacks activation outliers by (i) migrating the LayerNorm
gain into the following weight matrix (so the per-channel amplification is no
longer visible to the activation quantizer) and (ii) searching a clipping
range on a coarse-to-fine token-wise grid.  On our substrate the net numerical
effect is captured by an aggressive clipping-range search: the quantizer
evaluates many candidate clipping percentiles — far below the maximum — and
keeps the one with the best MSE, i.e. it *suppresses* outliers rather than
representing them.

This reproduces the qualitative behaviour the OliVe paper reports: OS is much
better than naive int quantization at 6 bits, but still loses noticeable
accuracy at 4 bits because the clipped outliers were genuinely important.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import BaseQuantizer

__all__ = ["OutlierSuppressionQuantizer"]


class OutlierSuppressionQuantizer(BaseQuantizer):
    """Clipping-search uniform quantizer (gamma-migration approximation)."""

    def __init__(self, bits: int = 6) -> None:
        super().__init__()
        self.bits = int(bits)
        self.name = f"os{bits}"
        self._max_level = float((1 << (bits - 1)) - 1)

    @property
    def max_level(self) -> float:
        return self._max_level

    def _quantize_grid(self, grid: np.ndarray) -> np.ndarray:
        return np.clip(np.round(grid), -self._max_level, self._max_level)

    def fit(self, tensor: np.ndarray) -> "OutlierSuppressionQuantizer":
        """Fine-grained clipping search over magnitude percentiles.

        Unlike the plain uniform quantizer (which searches between 5 % and
        100 % of the maximum), OS searches percentile-based clip points, which
        lets it discard the extreme tail entirely — the "suppression".
        """
        flat = np.asarray(tensor, dtype=np.float64).ravel()
        if flat.size == 0:
            self._scale = 1.0
            return self
        mags = np.abs(flat)
        percentiles = np.concatenate(
            [np.linspace(90.0, 99.9, 30), np.array([99.99, 100.0])]
        )
        best_scale, best_mse = None, np.inf
        for pct in percentiles:
            clip = float(np.percentile(mags, pct))
            if clip <= 0:
                continue
            scale = clip / self._max_level
            deq = self._quantize_grid(flat / scale) * scale
            mse = float(np.mean((deq - flat) ** 2))
            if mse < best_mse:
                best_mse = mse
                best_scale = scale
        self._scale = best_scale if best_scale is not None else float(np.max(mags)) / self._max_level
        return self
