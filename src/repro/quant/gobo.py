"""GOBO (MICRO 2020) baseline: weight-only outlier-aware quantization.

GOBO splits each weight tensor into a small "outlier group" kept at full
precision (stored sparsely with a coordinate list) and a "Gaussian group"
represented by a handful of centroids (3–4 bits per weight).  Activations are
not quantized and all arithmetic happens in FP16/FP32 — which is exactly why
the OliVe paper finds GOBO's *performance* gains small even though its
*accuracy* is good (paper Sec. 5.3: GOBO only compresses DRAM traffic).

This implementation follows the published scheme: outliers are values outside
``outlier_sigma`` standard deviations of the Gaussian fit, and the remaining
values are quantized to ``2**bits`` centroids refined with a few k-means
(Lloyd) iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["GoboQuantizer"]


class GoboQuantizer:
    """Weight-only centroid quantizer with full-precision outliers."""

    def __init__(self, bits: int = 3, outlier_sigma: float = 3.0, kmeans_iters: int = 8) -> None:
        if bits < 2 or bits > 6:
            raise ValueError("GOBO uses 2-6 bit centroid tables")
        self.bits = int(bits)
        self.name = f"gobo{bits}"
        self.outlier_sigma = float(outlier_sigma)
        self.kmeans_iters = int(kmeans_iters)
        self._centroids: Optional[np.ndarray] = None
        self._threshold: Optional[float] = None
        self._mean: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._centroids is not None

    @property
    def centroids(self) -> np.ndarray:
        """The fitted centroid table for the Gaussian (normal) group."""
        if self._centroids is None:
            raise RuntimeError("gobo: quantizer not fitted")
        return self._centroids

    def outlier_fraction(self, tensor: np.ndarray) -> float:
        """Fraction of values stored at full precision under the fitted threshold."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        return float(np.mean(np.abs(tensor - self._mean) > self._threshold))

    def fit(self, tensor: np.ndarray) -> "GoboQuantizer":
        """Fit the outlier threshold and centroid table on ``tensor``."""
        flat = np.asarray(tensor, dtype=np.float64).ravel()
        self._mean = float(np.mean(flat)) if flat.size else 0.0
        sigma = float(np.std(flat)) if flat.size else 0.0
        self._threshold = self.outlier_sigma * sigma if sigma > 0 else np.inf
        normal = flat[np.abs(flat - self._mean) <= self._threshold]
        if normal.size == 0:
            normal = flat
        n_centroids = 1 << self.bits
        # Initialise centroids at evenly spaced quantiles, then run Lloyd steps.
        quantiles = np.linspace(0.0, 1.0, n_centroids + 2)[1:-1]
        centroids = np.quantile(normal, quantiles)
        centroids = np.unique(centroids)
        for _ in range(self.kmeans_iters):
            assignments = np.argmin(np.abs(normal[:, None] - centroids[None, :]), axis=1)
            new_centroids = centroids.copy()
            for k in range(len(centroids)):
                members = normal[assignments == k]
                if members.size:
                    new_centroids[k] = float(np.mean(members))
            if np.allclose(new_centroids, centroids):
                break
            centroids = new_centroids
        self._centroids = np.sort(centroids)
        return self

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Fake-quantize ``tensor``: normals snap to centroids, outliers pass through."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if not self.is_fitted:
            self.fit(tensor)
        flat = tensor.ravel()
        out = flat.copy()
        normal_mask = np.abs(flat - self._mean) <= self._threshold
        normal_values = flat[normal_mask]
        if normal_values.size:
            idx = np.argmin(
                np.abs(normal_values[:, None] - self._centroids[None, :]), axis=1
            )
            out[normal_mask] = self._centroids[idx]
        # Outliers are stored at full precision: unchanged.
        return out.reshape(tensor.shape)

    def quantization_mse(self, tensor: np.ndarray) -> float:
        """MSE of quantizing ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        return float(np.mean((self.quantize(tensor) - tensor) ** 2))
