"""End-to-end workload pipelines built on the serving stack.

Where :mod:`repro.serve` provides the machinery (engine, scheduler,
gateway), this package provides *applications* of it — multi-request
pipelines with their own quality harnesses:

* :mod:`repro.workloads.docqa` — document question answering: fan each
  question across overlapping document chunks through the gateway's span
  family, aggregate the per-chunk answers by confidence, and check every
  answer against an expected span and a per-question confidence floor.
"""

from repro.workloads.docqa import (
    ChunkAnswer,
    DocQAPipeline,
    ExpectedAnswer,
    Question,
    QuestionResult,
    chunk_document,
    run_harness,
)

__all__ = [
    "ChunkAnswer",
    "DocQAPipeline",
    "ExpectedAnswer",
    "Question",
    "QuestionResult",
    "chunk_document",
    "run_harness",
]
