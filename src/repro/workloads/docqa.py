"""Document question answering over the multi-tenant gateway.

The pipeline mirrors a production retrieval-free document-QA service (the
DocuSenseLM review harness is the model): a long document is split into
overlapping token chunks, every question is fanned out as one span-extraction
request per chunk, and the per-chunk answers are aggregated by **normalized
span confidence** — the product of the start/end softmax probabilities the
span head assigned the argmax span (see ``ServingEngine._run_span``).  The
winning chunk's span, mapped back to document coordinates, is the answer.

Every request flows through the :class:`~repro.serve.gateway.Gateway`, so a
document-QA tenant is rate-limited, metered, and SLO-tracked exactly like
any other tenant, and the span fan-out exercises the micro-batcher path
(same-shape chunks batch together).

The quality harness follows the review-file idiom: each question carries an
*expected* answer span and a *minimum confidence* floor; :func:`run_harness`
reports, per question, the answer, its confidence, whether the floor held
and whether the expected span matched — plus an overall pass flag the
benchmark regression gate pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import ServingError
from repro.serve.requests import WorkloadFamily
from repro.serve.requests import InferenceRequest

__all__ = [
    "Question",
    "ExpectedAnswer",
    "ChunkAnswer",
    "QuestionResult",
    "chunk_document",
    "DocQAPipeline",
    "run_harness",
]


@dataclass(frozen=True)
class Question:
    """One question: an id and its token-id rendering."""

    question_id: str
    token_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.question_id:
            raise ServingError("question_id must be non-empty")
        if not self.token_ids:
            raise ServingError("a question needs at least one token")
        object.__setattr__(
            self, "token_ids", tuple(int(t) for t in self.token_ids)
        )


@dataclass(frozen=True)
class ExpectedAnswer:
    """The harness's expectation for one question.

    ``expected_span`` is ``(start, end)`` in *document* coordinates
    (inclusive, like the span head's output); ``min_confidence`` is the
    floor the aggregated answer's confidence must clear.  Leave
    ``expected_span`` ``None`` to check only the floor.
    """

    question_id: str
    min_confidence: float
    expected_span: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ServingError("min_confidence must be within [0, 1]")


@dataclass(frozen=True)
class ChunkAnswer:
    """The span head's answer for one (question, chunk) pair."""

    chunk_index: int
    doc_start: int          # document coordinates (inclusive)
    doc_end: int
    confidence: float
    score: float
    in_question: bool       # span landed inside the question prefix


@dataclass
class QuestionResult:
    """The aggregated answer to one question."""

    question_id: str
    answer: Optional[ChunkAnswer]
    chunk_answers: List[ChunkAnswer] = field(default_factory=list)

    @property
    def confidence(self) -> float:
        return self.answer.confidence if self.answer is not None else 0.0

    @property
    def span(self) -> Optional[Tuple[int, int]]:
        if self.answer is None:
            return None
        return (self.answer.doc_start, self.answer.doc_end)


def chunk_document(
    document: Sequence[int], chunk_tokens: int, overlap: int = 0
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Split ``document`` into ``(offset, tokens)`` windows.

    Windows are ``chunk_tokens`` long and successive windows share
    ``overlap`` tokens, so an answer span crossing a chunk boundary is
    still wholly inside some window (provided it is shorter than
    ``overlap``).
    """
    if chunk_tokens < 1:
        raise ServingError("chunk_tokens must be >= 1")
    if not 0 <= overlap < chunk_tokens:
        raise ServingError("overlap must satisfy 0 <= overlap < chunk_tokens")
    tokens = [int(t) for t in document]
    if not tokens:
        raise ServingError("document must be non-empty")
    stride = chunk_tokens - overlap
    chunks: List[Tuple[int, Tuple[int, ...]]] = []
    offset = 0
    while True:
        window = tokens[offset : offset + chunk_tokens]
        chunks.append((offset, tuple(window)))
        if offset + chunk_tokens >= len(tokens):
            break
        offset += stride
    return chunks


class DocQAPipeline:
    """Fan questions across document chunks through a gateway tenant.

    Parameters
    ----------
    gateway:
        The :class:`~repro.serve.gateway.Gateway` to submit through.
    api_key:
        The docqa tenant's API key.
    model:
        Span-family model name (``bert-base`` in the zoo).
    chunk_tokens / overlap:
        Document windowing (see :func:`chunk_document`).
    """

    def __init__(
        self,
        gateway,
        api_key: str,
        model: str = "bert-base",
        chunk_tokens: int = 48,
        overlap: int = 8,
    ) -> None:
        self.gateway = gateway
        self.api_key = api_key
        self.model = model
        self.chunk_tokens = int(chunk_tokens)
        self.overlap = int(overlap)

    def ask(
        self, questions: Sequence[Question], document: Sequence[int]
    ) -> Dict[str, QuestionResult]:
        """Answer every question against ``document``.

        Each (question, chunk) pair becomes one span request whose input is
        ``question.token_ids + chunk`` (SQuAD-style concatenation); the
        span head's indices map back to document coordinates through the
        chunk's offset.  Spans that land inside the question prefix are
        kept (flagged ``in_question``) but never win aggregation unless no
        chunk produced an in-document span.
        """
        chunks = chunk_document(document, self.chunk_tokens, self.overlap)
        pending: Dict[str, Tuple[str, int, int, int]] = {}
        for question in questions:
            q_len = len(question.token_ids)
            for chunk_index, (offset, window) in enumerate(chunks):
                request = InferenceRequest(
                    model=self.model,
                    family=WorkloadFamily.SPAN,
                    token_ids=np.asarray(
                        question.token_ids + window, dtype=np.int64
                    ),
                )
                envelope = self.gateway.submit(self.api_key, request)
                if envelope.status != 202:
                    raise ServingError(
                        f"gateway rejected docqa request "
                        f"({envelope.status}): {envelope.error}"
                    )
                pending[request.request_id] = (
                    question.question_id, chunk_index, offset, q_len
                )
        answers: Dict[str, List[ChunkAnswer]] = {
            q.question_id: [] for q in questions
        }
        settled = self.gateway.run_until_idle()
        for envelope in settled:
            meta = pending.pop(envelope.request_id, None)
            if meta is None:
                continue  # someone else's traffic settled in the same drain
            question_id, chunk_index, offset, q_len = meta
            if envelope.status != 200:
                raise ServingError(
                    f"docqa request failed ({envelope.status}): "
                    f"{envelope.error}"
                )
            body = envelope.body
            start, end = int(body["start"]), int(body["end"])
            in_question = start < q_len
            answers[question_id].append(ChunkAnswer(
                chunk_index=chunk_index,
                doc_start=max(0, start - q_len) + offset,
                doc_end=max(0, end - q_len) + offset,
                confidence=float(body["confidence"]),
                score=float(body["score"]),
                in_question=in_question,
            ))
        if pending:
            raise ServingError(
                f"{len(pending)} docqa requests never settled"
            )
        results: Dict[str, QuestionResult] = {}
        for question in questions:
            per_chunk = sorted(
                answers[question.question_id],
                key=lambda a: (not a.in_question, a.confidence, -a.chunk_index),
            )
            best = per_chunk[-1] if per_chunk else None
            results[question.question_id] = QuestionResult(
                question_id=question.question_id,
                answer=best,
                chunk_answers=per_chunk,
            )
        return results


def run_harness(
    pipeline: DocQAPipeline,
    questions: Sequence[Question],
    expectations: Sequence[ExpectedAnswer],
    document: Sequence[int],
) -> Dict[str, Any]:
    """Answer every question and grade against the expectations.

    Returns a JSON-shaped report: per question the answer span, its
    confidence, the floor, and the two checks (``confidence_ok``,
    ``span_ok``); ``passed`` is the conjunction across questions.
    """
    by_id = {e.question_id: e for e in expectations}
    missing = [q.question_id for q in questions if q.question_id not in by_id]
    if missing:
        raise ServingError(f"questions without expectations: {missing}")
    results = pipeline.ask(questions, document)
    graded: Dict[str, Any] = {}
    passed = True
    for question in questions:
        result = results[question.question_id]
        expected = by_id[question.question_id]
        confidence_ok = result.confidence >= expected.min_confidence
        span_ok = (
            expected.expected_span is None
            or result.span == tuple(expected.expected_span)
        )
        passed = passed and confidence_ok and span_ok
        graded[question.question_id] = {
            "span": list(result.span) if result.span else None,
            "confidence": round(result.confidence, 6),
            "min_confidence": expected.min_confidence,
            "confidence_ok": confidence_ok,
            "expected_span": (
                list(expected.expected_span)
                if expected.expected_span is not None else None
            ),
            "span_ok": span_ok,
            "chunks_consulted": len(result.chunk_answers),
        }
    return {"passed": passed, "questions": graded}
