"""Execution schemes: how each accelerator design runs a quantized GEMM.

An :class:`ExecutionScheme` captures the hardware-relevant properties of a
quantization scheme — the storage width of weights and activations, the
precision the math pipeline actually computes in, sparse-index overheads and
outlier-controller serialisation — i.e. exactly the properties Table 1 of the
paper contrasts.  The GPU and accelerator simulators consume these to produce
Figs. 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ExecutionPhase", "ExecutionScheme", "GPU_SCHEMES", "ACCEL_SCHEMES"]


@dataclass(frozen=True)
class ExecutionPhase:
    """One precision phase of a (possibly mixed-precision) execution scheme."""

    fraction: float               # fraction of the workload run in this phase
    weight_bits: float            # storage bits per weight element in DRAM
    activation_bits: float        # storage bits per activation element
    compute_bits: int             # precision of the math pipeline

    @property
    def weight_bytes(self) -> float:
        """DRAM bytes per weight element."""
        return self.weight_bits / 8.0

    @property
    def activation_bytes(self) -> float:
        """DRAM bytes per activation element."""
        return self.activation_bits / 8.0


@dataclass(frozen=True)
class ExecutionScheme:
    """Hardware execution properties of one quantization scheme."""

    name: str
    weight_bits: float            # storage bits per weight element in DRAM
    activation_bits: float        # storage bits per activation element
    compute_bits: int             # precision of the math pipeline
    onchip_weight_bits: float     # storage bits per weight once on chip
    index_overhead: float = 0.0   # extra traffic for sparse outlier indices
    compute_overhead: float = 0.0 # fractional math-pipeline slowdown (controllers)
    decode_per_element: bool = False  # OVP/abfloat decode in the operand path
    #: optional mixed-precision split; empty means a single phase at the
    #: precisions above (ANT's PTQ needs ~80% of layers at int8, Sec. 5.3).
    phases: Tuple[ExecutionPhase, ...] = ()

    @property
    def weight_bytes(self) -> float:
        """DRAM bytes per weight element."""
        return self.weight_bits / 8.0

    @property
    def activation_bytes(self) -> float:
        """DRAM bytes per activation element."""
        return self.activation_bits / 8.0

    def execution_phases(self) -> Tuple[ExecutionPhase, ...]:
        """The phases to simulate (a single phase when none were specified)."""
        if self.phases:
            return self.phases
        return (
            ExecutionPhase(
                fraction=1.0,
                weight_bits=self.weight_bits,
                activation_bits=self.activation_bits,
                compute_bits=self.compute_bits,
            ),
        )


#: GPU comparison (paper Fig. 9): OliVe vs ANT vs int8 tensor cores vs GOBO.
GPU_SCHEMES: Dict[str, ExecutionScheme] = {
    # OliVe: 4-bit aligned weights *and* activations, 4-bit tensor-core math.
    "olive": ExecutionScheme(
        "olive", weight_bits=4, activation_bits=4, compute_bits=4,
        onchip_weight_bits=4, decode_per_element=True,
    ),
    # ANT PTQ needs int8 for ~80% of the layers to preserve accuracy (Sec. 5.3).
    "ant": ExecutionScheme(
        "ant", weight_bits=0.8 * 8 + 0.2 * 4, activation_bits=0.8 * 8 + 0.2 * 4,
        compute_bits=8, onchip_weight_bits=0.8 * 8 + 0.2 * 4,
        phases=(
            ExecutionPhase(0.8, 8, 8, 8),
            ExecutionPhase(0.2, 4, 4, 4),
        ),
    ),
    # Plain int8 tensor cores (accuracy is unacceptable; performance reference).
    "int8": ExecutionScheme(
        "int8", weight_bits=8, activation_bits=8, compute_bits=8, onchip_weight_bits=8,
    ),
    # GOBO: 3-bit weights + outlier list in DRAM only; FP16 on-chip and FP16 math.
    "gobo": ExecutionScheme(
        "gobo", weight_bits=4, activation_bits=16, compute_bits=16,
        onchip_weight_bits=16, index_overhead=0.05,
    ),
}

#: Accelerator comparison (paper Fig. 10): OliVe vs ANT vs OLAccel vs AdaFloat.
ACCEL_SCHEMES: Dict[str, ExecutionScheme] = {
    "olive": ExecutionScheme(
        "olive", weight_bits=4, activation_bits=4, compute_bits=4,
        onchip_weight_bits=4, decode_per_element=True,
    ),
    "ant": ExecutionScheme(
        "ant", weight_bits=0.8 * 8 + 0.2 * 4, activation_bits=0.8 * 8 + 0.2 * 4,
        compute_bits=8, onchip_weight_bits=0.8 * 8 + 0.2 * 4,
        phases=(
            ExecutionPhase(0.8, 8, 8, 8),
            ExecutionPhase(0.2, 4, 4, 4),
        ),
    ),
    # OLAccel: 4-bit dense values plus sparse high-precision outliers handled
    # by a dedicated controller that serialises outlier MACs and inflates
    # traffic with coordinate lists (its controller costs 71% of the PE array).
    "olaccel": ExecutionScheme(
        "olaccel", weight_bits=4.8, activation_bits=4.8, compute_bits=4,
        onchip_weight_bits=4.8, index_overhead=0.12, compute_overhead=1.6,
    ),
    # AdaptivFloat: 8-bit float, no mixed precision.
    "adafloat": ExecutionScheme(
        "adafloat", weight_bits=8, activation_bits=8, compute_bits=8, onchip_weight_bits=8,
    ),
}
