"""End-to-end GPU performance and energy simulation (paper Fig. 9).

For every model workload and execution scheme, each GEMM is timed with the
tensor-core roofline model and its memory traffic is converted to energy with
the GPU energy model.  GOBO's special structure is honoured: only weight
tensors are compressed, the compression lives in DRAM only (on-chip data and
math stay FP16), and activation-activation GEMMs see no benefit at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.hardware.config import TuringGPUConfig
from repro.hardware.energy import EnergyBreakdown, EnergyModel, GPU_ENERGY_MODEL
from repro.hardware.memory import gemm_traffic
from repro.hardware.tensor_core import TensorCoreModel
from repro.sim.results import ComparisonTable, SimulationResult
from repro.sim.schemes import ExecutionScheme, GPU_SCHEMES
from repro.sim.workloads import ModelWorkload, build_workload

__all__ = ["GPUSimulator", "simulate_gpu_comparison"]


class GPUSimulator:
    """Simulate transformer inference on the OliVe-extended Turing GPU."""

    def __init__(
        self,
        config: TuringGPUConfig = TuringGPUConfig(),
        energy_model: EnergyModel = GPU_ENERGY_MODEL,
    ) -> None:
        self.config = config
        self.energy_model = energy_model
        self.timing = TensorCoreModel(config)

    def run(self, workload: ModelWorkload, scheme: ExecutionScheme) -> SimulationResult:
        """Simulate one model forward pass under one execution scheme."""
        total_seconds = 0.0
        total_macs = 0.0
        dram = l2 = l1 = 0.0
        decoded = 0.0
        for gemm in workload.gemms:
            for phase in scheme.execution_phases():
                weight_bytes = (
                    phase.weight_bytes if gemm.weight_operand else phase.activation_bytes
                )
                traffic = gemm_traffic(
                    gemm.m,
                    gemm.k,
                    gemm.n,
                    activation_bytes=phase.activation_bytes,
                    weight_bytes=weight_bytes,
                    output_bytes=2.0,
                    index_overhead=scheme.index_overhead if gemm.weight_operand else 0.0,
                )
                timing = self.timing.gemm(
                    gemm.m, gemm.k, gemm.n, phase.compute_bits, traffic,
                    compute_overhead=scheme.compute_overhead,
                )
                weight = gemm.count * phase.fraction
                total_seconds += timing.seconds * weight
                dram += traffic.dram_bytes * weight
                l2 += traffic.l2_bytes * weight
                l1 += traffic.l1_bytes * weight
                if scheme.decode_per_element:
                    decoded += (gemm.m * gemm.k + gemm.k * gemm.n) * weight
            total_macs += gemm.macs
        energy = self.energy_model.compute(
            runtime_s=total_seconds,
            macs=total_macs,
            mac_bits=scheme.compute_bits,
            dram_bytes=dram,
            l2_bytes=l2,
            l1_bytes=l1,
            decoded_elements=decoded,
        )
        return SimulationResult(
            model=workload.model,
            scheme=scheme.name,
            seconds=total_seconds,
            energy=energy,
            macs=total_macs,
            dram_bytes=dram,
        )


def simulate_gpu_comparison(
    models: Iterable[str] = ("bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1"),
    schemes: Optional[Dict[str, ExecutionScheme]] = None,
    baseline: str = "gobo",
) -> ComparisonTable:
    """Run the full Fig. 9 comparison and return the speedup/energy table."""
    schemes = schemes or GPU_SCHEMES
    simulator = GPUSimulator()
    table = ComparisonTable(baseline=baseline)
    for model in models:
        workload = build_workload(model)
        for scheme in schemes.values():
            table.add(simulator.run(workload, scheme))
    return table
