"""Result containers and aggregation helpers shared by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.hardware.energy import EnergyBreakdown

__all__ = ["SimulationResult", "ComparisonTable", "geometric_mean"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregation used by the paper's Figs. 9-10)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(np.maximum(values, 1e-30)))))


@dataclass(frozen=True)
class SimulationResult:
    """Runtime + energy of one (model, scheme) simulation."""

    model: str
    scheme: str
    seconds: float
    energy: EnergyBreakdown
    macs: float = 0.0
    dram_bytes: float = 0.0

    @property
    def energy_joules(self) -> float:
        """Total energy in joules."""
        return self.energy.total


@dataclass
class ComparisonTable:
    """Speedup/energy comparison across schemes for a set of models.

    ``baseline`` is the scheme everything is normalised against (GOBO for the
    GPU study, AdaFloat for the accelerator study — i.e. speedup > 1 means
    faster than the baseline, normalised energy < 1 means less energy).
    """

    baseline: str
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def add(self, result: SimulationResult) -> None:
        """Record one simulation result."""
        self.results.setdefault(result.model, {})[result.scheme] = result

    @property
    def models(self) -> List[str]:
        """Models present in insertion order."""
        return list(self.results)

    @property
    def schemes(self) -> List[str]:
        """Schemes present (from the first model)."""
        if not self.results:
            return []
        return list(next(iter(self.results.values())))

    def speedup(self, model: str, scheme: str) -> float:
        """Speedup of ``scheme`` over the baseline on ``model``."""
        base = self.results[model][self.baseline].seconds
        return base / self.results[model][scheme].seconds

    def normalized_energy(self, model: str, scheme: str) -> float:
        """Energy of ``scheme`` normalised to the baseline on ``model``."""
        base = self.results[model][self.baseline].energy_joules
        return self.results[model][scheme].energy_joules / base

    def geomean_speedup(self, scheme: str) -> float:
        """Geometric-mean speedup of ``scheme`` across all models."""
        return geometric_mean(self.speedup(m, scheme) for m in self.models)

    def geomean_normalized_energy(self, scheme: str) -> float:
        """Geometric-mean normalised energy of ``scheme`` across all models."""
        return geometric_mean(self.normalized_energy(m, scheme) for m in self.models)

    def speedup_table(self) -> Dict[str, Dict[str, float]]:
        """Nested dict: model (plus "geomean") → scheme → speedup."""
        table = {
            model: {s: self.speedup(model, s) for s in self.schemes} for model in self.models
        }
        table["geomean"] = {s: self.geomean_speedup(s) for s in self.schemes}
        return table

    def energy_table(self) -> Dict[str, Dict[str, float]]:
        """Nested dict: model (plus "geomean") → scheme → normalised energy."""
        table = {
            model: {s: self.normalized_energy(model, s) for s in self.schemes}
            for model in self.models
        }
        table["geomean"] = {s: self.geomean_normalized_energy(s) for s in self.schemes}
        return table
