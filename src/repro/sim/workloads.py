"""Transformer GEMM workload generator for the performance simulations.

The GPU and accelerator experiments (paper Figs. 9-10) run inference of the
*full-size* models (BERT-base/large, BART-base, GPT2-XL, BLOOM-7B1); only the
GEMM dimensions matter for the timing model, so this module expands each
model's architecture (from :data:`repro.models.configs.PAPER_CONFIGS`) into
the list of matrix multiplications one forward pass performs:

* QKV projections, attention output projection,
* the two feed-forward GEMMs,
* the attention score and context GEMMs (batched per head),

for every layer, at the batch/sequence sizes the paper uses (batch 16 for
BERT-like models, batch 2 for GPT-like models, Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import WorkloadError
from repro.models.configs import ModelConfig, ModelFamily, paper_config

__all__ = ["GemmSpec", "ModelWorkload", "transformer_gemms", "build_workload"]


@dataclass(frozen=True)
class GemmSpec:
    """One GEMM of the workload: ``C[m, n] = A[m, k] @ B[k, n]``.

    ``weight_operand`` is False for activation-activation GEMMs (attention
    scores/context), which matters to weight-only schemes such as GOBO.
    ``count`` collapses identical GEMMs (e.g. one per head / per layer).
    """

    name: str
    m: int
    k: int
    n: int
    count: int = 1
    weight_operand: bool = True

    @property
    def macs(self) -> float:
        """Total multiply-accumulates across all repetitions."""
        return float(self.m) * self.k * self.n * self.count


@dataclass(frozen=True)
class ModelWorkload:
    """The full GEMM list of one model forward pass."""

    model: str
    batch: int
    seq_len: int
    gemms: List[GemmSpec]

    @property
    def total_macs(self) -> float:
        """Total MACs of the forward pass."""
        return sum(g.macs for g in self.gemms)

    @property
    def total_weight_bytes_fp16(self) -> float:
        """Total weight footprint at FP16 (for sanity checks)."""
        return sum(g.k * g.n * 2.0 * g.count for g in self.gemms if g.weight_operand)


def transformer_gemms(config: ModelConfig, batch: int, seq_len: int) -> List[GemmSpec]:
    """Expand one transformer architecture into its per-forward GEMM list."""
    if batch <= 0 or seq_len <= 0:
        raise WorkloadError("batch and sequence length must be positive")
    tokens = batch * seq_len
    h = config.hidden_size
    ffn = config.intermediate_size
    heads = config.num_heads
    head_dim = h // heads

    def layer_gemms(prefix: str) -> List[GemmSpec]:
        return [
            GemmSpec(f"{prefix}.qkv", tokens, h, 3 * h),
            GemmSpec(f"{prefix}.attn_out", tokens, h, h),
            GemmSpec(
                f"{prefix}.attn_scores", seq_len, head_dim, seq_len,
                count=batch * heads, weight_operand=False,
            ),
            GemmSpec(
                f"{prefix}.attn_context", seq_len, seq_len, head_dim,
                count=batch * heads, weight_operand=False,
            ),
            GemmSpec(f"{prefix}.ffn_in", tokens, h, ffn),
            GemmSpec(f"{prefix}.ffn_out", tokens, ffn, h),
        ]

    gemms: List[GemmSpec] = []
    encoder_layers = config.num_layers
    if config.family == ModelFamily.ENCODER_DECODER:
        for i in range(encoder_layers):
            gemms.extend(layer_gemms(f"enc{i}"))
        for i in range(encoder_layers):
            gemms.extend(layer_gemms(f"dec{i}"))
            # Cross-attention adds another projection + score/context set.
            gemms.append(GemmSpec(f"dec{i}.cross_kv", tokens, h, 2 * h))
            gemms.append(GemmSpec(f"dec{i}.cross_q", tokens, h, h))
            gemms.append(
                GemmSpec(f"dec{i}.cross_scores", seq_len, head_dim, seq_len,
                         count=batch * heads, weight_operand=False)
            )
            gemms.append(
                GemmSpec(f"dec{i}.cross_context", seq_len, seq_len, head_dim,
                         count=batch * heads, weight_operand=False)
            )
    else:
        for i in range(encoder_layers):
            gemms.extend(layer_gemms(f"layer{i}"))
    return gemms


def build_workload(
    model_name: str,
    batch: Optional[int] = None,
    seq_len: Optional[int] = None,
) -> ModelWorkload:
    """Build the default workload of a paper model (paper batch sizes by default)."""
    config = paper_config(model_name)
    batch = batch if batch is not None else config.default_batch
    seq_len = seq_len if seq_len is not None else config.default_seq_len
    return ModelWorkload(
        model=model_name,
        batch=batch,
        seq_len=seq_len,
        gemms=transformer_gemms(config, batch, seq_len),
    )
