"""End-to-end systolic-array accelerator simulation (paper Fig. 10).

All four designs (OliVe, ANT, OLAccel, AdaptivFloat) are modelled as the same
64×64 output-stationary array (the paper implements all accelerators at a
similar area) and differ only in

* the precision their PEs compute in (4-bit native vs four-PE-ganged 8-bit),
* the bytes per element they move through DRAM and the on-chip buffers,
* sparse-index traffic and outlier-controller serialisation overheads.

Runtime per GEMM is the larger of the systolic-array cycle count and the DRAM
streaming time; energy follows the accelerator energy model's static/DRAM/
buffer/core split (the stack of Fig. 10b).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.hardware.config import SystolicArrayConfig
from repro.hardware.energy import ACCEL_ENERGY_MODEL, EnergyModel
from repro.hardware.memory import gemm_traffic
from repro.hardware.systolic import SystolicArrayModel
from repro.sim.results import ComparisonTable, SimulationResult
from repro.sim.schemes import ACCEL_SCHEMES, ExecutionScheme
from repro.sim.workloads import ModelWorkload, build_workload

__all__ = ["AcceleratorSimulator", "simulate_accelerator_comparison"]


class AcceleratorSimulator:
    """Simulate transformer inference on the OliVe systolic-array accelerator."""

    def __init__(
        self,
        config: SystolicArrayConfig = SystolicArrayConfig(),
        energy_model: EnergyModel = ACCEL_ENERGY_MODEL,
    ) -> None:
        self.config = config
        self.energy_model = energy_model
        self.array = SystolicArrayModel(config)

    def run(self, workload: ModelWorkload, scheme: ExecutionScheme) -> SimulationResult:
        """Simulate one model forward pass under one execution scheme."""
        total_seconds = 0.0
        total_macs = 0.0
        dram = buffer_bytes = 0.0
        decoded = 0.0
        dram_bw = self.config.dram_bandwidth_gbs * 1e9
        for gemm in workload.gemms:
            for phase in scheme.execution_phases():
                weight_bytes = (
                    phase.weight_bytes if gemm.weight_operand else phase.activation_bytes
                )
                traffic = gemm_traffic(
                    gemm.m,
                    gemm.k,
                    gemm.n,
                    activation_bytes=phase.activation_bytes,
                    weight_bytes=weight_bytes,
                    output_bytes=2.0,
                    tile=self.config.rows,
                    index_overhead=scheme.index_overhead if gemm.weight_operand else 0.0,
                )
                compute_seconds = self.array.gemm_seconds(
                    gemm.m, gemm.k, gemm.n, bits=phase.compute_bits,
                    outlier_serialisation=scheme.compute_overhead,
                )
                memory_seconds = traffic.dram_bytes / dram_bw
                weight = gemm.count * phase.fraction
                total_seconds += max(compute_seconds, memory_seconds) * weight
                dram += traffic.dram_bytes * weight
                buffer_bytes += traffic.l1_bytes * weight
                if scheme.decode_per_element:
                    decoded += (gemm.m * gemm.k + gemm.k * gemm.n) * weight
            total_macs += gemm.macs
        energy = self.energy_model.compute(
            runtime_s=total_seconds,
            macs=total_macs,
            mac_bits=scheme.compute_bits,
            dram_bytes=dram,
            l2_bytes=0.0,
            l1_bytes=buffer_bytes,
            decoded_elements=decoded,
        )
        return SimulationResult(
            model=workload.model,
            scheme=scheme.name,
            seconds=total_seconds,
            energy=energy,
            macs=total_macs,
            dram_bytes=dram,
        )


def simulate_accelerator_comparison(
    models: Iterable[str] = ("bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1"),
    schemes: Optional[Dict[str, ExecutionScheme]] = None,
    baseline: str = "adafloat",
) -> ComparisonTable:
    """Run the full Fig. 10 comparison and return the speedup/energy table."""
    schemes = schemes or ACCEL_SCHEMES
    simulator = AcceleratorSimulator()
    table = ComparisonTable(baseline=baseline)
    for model in models:
        workload = build_workload(model)
        for scheme in schemes.values():
            table.add(simulator.run(workload, scheme))
    return table
