"""End-to-end performance/energy simulators (GPU and systolic-array accelerator)."""

from repro.sim.accelerator import AcceleratorSimulator, simulate_accelerator_comparison
from repro.sim.gpu import GPUSimulator, simulate_gpu_comparison
from repro.sim.results import ComparisonTable, SimulationResult, geometric_mean
from repro.sim.schemes import ACCEL_SCHEMES, GPU_SCHEMES, ExecutionScheme
from repro.sim.workloads import GemmSpec, ModelWorkload, build_workload, transformer_gemms

__all__ = [
    "GemmSpec",
    "ModelWorkload",
    "transformer_gemms",
    "build_workload",
    "ExecutionScheme",
    "GPU_SCHEMES",
    "ACCEL_SCHEMES",
    "GPUSimulator",
    "simulate_gpu_comparison",
    "AcceleratorSimulator",
    "simulate_accelerator_comparison",
    "SimulationResult",
    "ComparisonTable",
    "geometric_mean",
]
