"""Packed-weight model repository: quantize once, serve many.

The repository is the serving engine's model store.  The first request for a
``(model, family)`` pair builds the full-precision analogue from
:mod:`repro.models.zoo`, fits one OVP quantizer per Linear weight and encodes
every weight into a memory-aligned :class:`~repro.core.ovp.PackedOVPTensor`
byte stream — the form the paper's accelerator keeps weights in DRAM.  The
packed streams are then decoded through the vectorized codec into the served
model's weights (the "on-chip" dequantized view) and the whole entry is
cached, so every later request pays neither the MSE threshold search nor the
encode cost again.

Embeddings, LayerNorms and biases stay in full precision: the paper quantizes
the GEMM operands, which for weight streaming are exactly the Linear weights.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.ovp import PackedOVPTensor
from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer
from repro.models.zoo import (
    build_causal_lm,
    build_classifier,
    build_span_model,
)
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve.requests import ServingError, WorkloadFamily, normalized_num_classes

__all__ = ["PackedModel", "RepositoryStats", "ModelRepository"]


@dataclass
class PackedModel:
    """One cached serving entry: packed weight streams + the decoded model.

    Attributes
    ----------
    model:
        The servable module; its Linear weights hold the values decoded from
        the packed streams (i.e. exactly what the hardware would compute on).
    packed_weights:
        Dotted weight name → memory-aligned OVP byte stream.
    quantize_seconds / decode_seconds:
        Build-time cost split: threshold search + encode vs. packed decode.
    """

    name: str
    family: str
    scheme: str
    model: Module
    packed_weights: Dict[str, PackedOVPTensor]
    quantize_seconds: float
    decode_seconds: float
    built_at: float = field(default_factory=time.time)

    @property
    def packed_bytes(self) -> int:
        """Total bytes of the packed weight streams (the DRAM footprint)."""
        return sum(p.nbytes for p in self.packed_weights.values())

    @property
    def fp32_bytes(self) -> int:
        """Footprint the same weights would need at float32."""
        return sum(p.num_elements * 4 for p in self.packed_weights.values())

    @property
    def compression_ratio(self) -> float:
        """fp32 footprint / packed footprint (≈8 for 4-bit OVP)."""
        packed = self.packed_bytes
        return self.fp32_bytes / packed if packed else 0.0

    @property
    def num_weight_tensors(self) -> int:
        """Number of packed Linear weight tensors."""
        return len(self.packed_weights)

    def linear_shapes(self) -> List[Tuple[int, int]]:
        """``(out_features, in_features)`` of every served Linear layer."""
        return [
            (module.out_features, module.in_features)
            for _, module in self.model.named_modules()
            if isinstance(module, Linear)
        ]


@dataclass
class RepositoryStats:
    """Cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_FAMILY_BUILDERS = {
    WorkloadFamily.CLASSIFY: "_build_classifier",
    WorkloadFamily.SPAN: "_build_span",
    WorkloadFamily.LM: "_build_lm",
}


class ModelRepository:
    """Thread-safe cache of OVP-packed serving models keyed by (model, scheme).

    Parameters
    ----------
    bits:
        OVP precision: 4 (int4 + E2M1) or 8 (int8 + E4M3).
    seed:
        Zoo seed; a given (model, seed) is bit-identical across processes.
    search_points:
        MSE threshold-search resolution used when fitting weight quantizers.
        The default is coarser than the experiment default because the search
        runs once per weight tensor at model-load time.
    max_entries:
        Upper bound on cached entries; the least recently used entry is
        evicted when the bound is exceeded.
    """

    def __init__(
        self,
        bits: int = 4,
        seed: int = 0,
        search_points: int = 12,
        max_entries: int = 16,
    ) -> None:
        if bits not in (4, 8):
            raise ServingError("the serving repository supports 4- and 8-bit OVP only")
        if max_entries < 1:
            raise ServingError("max_entries must be >= 1")
        self.bits = int(bits)
        self.seed = int(seed)
        self.search_points = int(search_points)
        self.max_entries = int(max_entries)
        self.scheme = f"olive-{bits}bit"
        self._cache: Dict[Tuple[str, str, int], PackedModel] = {}
        self._lock = threading.Lock()
        self.stats = RepositoryStats()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str, family: str, num_classes: int = 2) -> PackedModel:
        """Return the cached entry for ``(name, family)``, building it once."""
        if family not in WorkloadFamily.ALL:
            raise ServingError(f"unknown workload family {family!r}")
        key = (name, family, normalized_num_classes(family, num_classes))
        with self._lock:
            entry = self._cache.pop(key, None)
            if entry is not None:
                self._cache[key] = entry  # refresh LRU position
                self.stats.hits += 1
                return entry
        # Build outside the lock: quantization is the slow part and two
        # concurrent first requests at worst duplicate work, not corrupt state.
        entry = self._build_entry(name, family, num_classes)
        with self._lock:
            existing = self._cache.get(key)
            if existing is not None:
                self.stats.hits += 1
                return existing
            self.stats.misses += 1
            self._cache[key] = entry
            while len(self._cache) > self.max_entries:
                self._cache.pop(next(iter(self._cache)))
                self.stats.evictions += 1
        return entry

    def cached_entries(self) -> List[PackedModel]:
        """Snapshot of the currently cached entries (LRU order, oldest first)."""
        with self._lock:
            return list(self._cache.values())

    def evict(self, name: str, family: str, num_classes: int = 2) -> bool:
        """Drop one entry; returns True when something was evicted."""
        key = (name, family, normalized_num_classes(family, num_classes))
        with self._lock:
            found = self._cache.pop(key, None) is not None
            if found:
                self.stats.evictions += 1
            return found

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self.stats.evictions += len(self._cache)
            self._cache.clear()

    @property
    def packed_bytes(self) -> int:
        """Total packed footprint of all cached entries."""
        with self._lock:
            return sum(e.packed_bytes for e in self._cache.values())

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def _build_entry(self, name: str, family: str, num_classes: int) -> PackedModel:
        builder = getattr(self, _FAMILY_BUILDERS[family])
        model = builder(name, num_classes)
        quantize_seconds, decode_seconds, packed = self._pack_linear_weights(model)
        return PackedModel(
            name=name,
            family=family,
            scheme=self.scheme,
            model=model,
            packed_weights=packed,
            quantize_seconds=quantize_seconds,
            decode_seconds=decode_seconds,
        )

    def _build_classifier(self, name: str, num_classes: int) -> Module:
        return build_classifier(name, num_classes=max(int(num_classes), 1), seed=self.seed)

    def _build_span(self, name: str, num_classes: int) -> Module:
        return build_span_model(name, seed=self.seed)

    def _build_lm(self, name: str, num_classes: int) -> Module:
        return build_causal_lm(name, seed=self.seed)

    def _make_quantizer(self) -> OVPTensorQuantizer:
        normal_dtype = "int4" if self.bits == 4 else "int8"
        return OVPTensorQuantizer(
            OVPQuantizerConfig(normal_dtype=normal_dtype, search_points=self.search_points)
        )

    def _pack_linear_weights(
        self, model: Module
    ) -> Tuple[float, float, Dict[str, PackedOVPTensor]]:
        """Quantize, pack and decode-in-place every Linear weight of ``model``."""
        packed: Dict[str, PackedOVPTensor] = {}
        quantize_seconds = 0.0
        decode_seconds = 0.0
        for module_name, module in model.named_modules():
            if not isinstance(module, Linear):
                continue
            weight_name = f"{module_name}.weight" if module_name else "weight"
            quantizer = self._make_quantizer()
            t0 = time.perf_counter()
            stream = quantizer.encode(module.weight.data)
            t1 = time.perf_counter()
            decoded = quantizer.decode(stream)
            t2 = time.perf_counter()
            module.weight.copy_(decoded)
            packed[weight_name] = stream
            quantize_seconds += t1 - t0
            decode_seconds += t2 - t1
        if not packed:
            raise ServingError("model has no Linear weights to pack")
        return quantize_seconds, decode_seconds, packed
