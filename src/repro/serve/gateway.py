"""Multi-tenant serving gateway: the HTTP-style front door over the engine.

PR 8 gave the *scheduler* overload discipline — bounded admission, class
priorities, preemption, deadlines — but nothing mapped **tenants** onto it.
This module is that front door:

``TenantConfig`` / ``GatewayConfig``
    Declarative tenancy: each tenant has an API key, an admission priority,
    an SLO class (default: the tenant's own name, so the health monitor's
    ``serve_slo_attainment{slo_class,...}`` gauges are per-tenant for free),
    a token-bucket rate limit (``requests_per_second`` + ``burst``) and a
    concurrent-request quota (``max_concurrent``).  ``GatewayConfig``
    derives the scheduler-level :class:`~repro.serve.admission
    .AdmissionPolicy` (tenant priorities become class priorities) and the
    :class:`~repro.serve.health.HealthConfig` (one
    :class:`~repro.serve.health.SLOClass` per tenant) so the whole stack is
    configured from one place.

``Gateway``
    The façade itself.  :meth:`Gateway.submit` authenticates the API key,
    charges the tenant's token bucket and quota, stamps
    ``request.tenant`` / ``request.slo_class``, and forwards to the
    :class:`~repro.serve.engine.ServingEngine` — every outcome is a typed,
    JSON-shaped :class:`ResponseEnvelope` with an HTTP-ish status code and,
    on failure, an :class:`ErrorEnvelope` naming the
    :mod:`repro.serve.errors` class and whether it is retryable:

    =======  =========================  =========================
    status   condition                  error code
    =======  =========================  =========================
    202      accepted / still pending   —
    200      completed (poll)           —
    400      malformed request          ``ServingError``
    401      unknown API key            ``AuthenticationError``
    404      unknown request id         ``not_found``
    429      bucket dry / quota full    ``RateLimitedError`` /
                                        ``QuotaExceededError``
    500      request failed mid-serve   ``ServingError``
    503      scheduler queue rejected   ``QueueFullError`` /
                                        ``AdmissionRejectedError``
    =======  =========================  =========================

    :meth:`Gateway.handle` is the wire-shaped entry point: it parses a
    plain-dict request envelope (``{"api_key", "model", "family",
    "token_ids", ...}``) so a trivial HTTP adapter only json-decodes and
    calls it.  Gateway-level rejections are recorded as
    ``serve_requests_rejected_total{reason="auth"|"rate_limit"|"quota",
    tenant,...}`` in the same registry the scheduler uses.

The gateway is synchronous and deterministic (driven by :meth:`step`, timed
by the engine's clock — an injected fake clock makes rate limits exactly
replayable, which the load generator and tests rely on).  For the asyncio
front-end, :meth:`infer_async` wraps :meth:`~repro.serve.aio.AsyncServer
.infer` with the same authenticate→charge→release discipline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.admission import AdmissionPolicy
from repro.serve.errors import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
    RetryableServingError,
    ServingError,
    is_retryable,
)
from repro.serve.health import HealthConfig, SLOClass
from repro.serve.requests import InferenceRequest, InferenceResult, WorkloadFamily
from repro.serve.sampling import RequestOutput

__all__ = [
    "TenantConfig",
    "GatewayConfig",
    "ErrorEnvelope",
    "ResponseEnvelope",
    "Gateway",
]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity, limits, and service objectives.

    Parameters
    ----------
    name:
        Tenant name; becomes the ``tenant`` metrics label.
    api_key:
        The shared secret presented with every request.
    priority:
        Admission priority of this tenant's traffic (higher wins; feeds the
        derived policy's ``class_priority``).
    slo_class:
        SLO class the tenant's requests are stamped with; defaults to the
        tenant name, giving each tenant its own attainment gauges.
    requests_per_second:
        Token-bucket refill rate; ``None`` disables rate limiting.
    burst:
        Bucket capacity — how many requests may land back-to-back after an
        idle spell before the refill rate gates.
    max_concurrent:
        Maximum in-flight (accepted, not yet finished) requests; ``None``
        disables the quota.
    ttft_target_seconds / latency_target_seconds / attainment_target:
        The tenant's :class:`~repro.serve.health.SLOClass` objectives
        (defaults match the health layer's defaults).
    """

    name: str
    api_key: str
    priority: int = 0
    slo_class: Optional[str] = None
    requests_per_second: Optional[float] = None
    burst: int = 1
    max_concurrent: Optional[int] = None
    ttft_target_seconds: float = 0.2048
    latency_target_seconds: float = 1.6384
    attainment_target: float = 0.99

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ServingError("TenantConfig.name must be a non-empty string")
        if not self.api_key or not isinstance(self.api_key, str):
            raise ServingError("TenantConfig.api_key must be a non-empty string")
        if self.slo_class is None:
            object.__setattr__(self, "slo_class", self.name)
        if self.requests_per_second is not None and self.requests_per_second <= 0:
            raise ServingError("requests_per_second must be positive when set")
        if self.burst < 1:
            raise ServingError("burst must be >= 1")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ServingError("max_concurrent must be >= 1 when set")

    def slo(self) -> SLOClass:
        """This tenant's health-layer objectives."""
        return SLOClass(
            name=self.slo_class,
            ttft_target_seconds=self.ttft_target_seconds,
            latency_target_seconds=self.latency_target_seconds,
            attainment_target=self.attainment_target,
        )


@dataclass(frozen=True)
class GatewayConfig:
    """The full tenancy map plus the scheduler bounds derived from it."""

    tenants: Tuple[TenantConfig, ...]
    max_queue_depth: Optional[int] = 64
    queue_timeout_s: Optional[float] = None
    preempt: bool = True
    default_priority: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServingError("GatewayConfig needs at least one tenant")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate tenant names: {sorted(names)}")
        keys = [t.api_key for t in self.tenants]
        if len(set(keys)) != len(keys):
            raise ServingError("tenant api_keys must be unique")

    def admission_policy(self, **overrides: Any) -> AdmissionPolicy:
        """The scheduler policy this tenancy implies (tenant → class priority)."""
        kwargs: Dict[str, Any] = dict(
            max_queue_depth=self.max_queue_depth,
            queue_timeout_s=self.queue_timeout_s,
            class_priority={t.slo_class: t.priority for t in self.tenants},
            default_priority=self.default_priority,
            preempt=self.preempt,
        )
        kwargs.update(overrides)
        return AdmissionPolicy(**kwargs)

    def health_config(self, **overrides: Any) -> HealthConfig:
        """One SLO class per tenant, ready for ``ServingEngine(health=...)``."""
        kwargs: Dict[str, Any] = dict(
            classes=tuple(t.slo() for t in self.tenants)
        )
        kwargs.update(overrides)
        return HealthConfig(**kwargs)


@dataclass(frozen=True)
class ErrorEnvelope:
    """The JSON-shaped error half of a response."""

    code: str          # errors.py class name (or "not_found")
    message: str
    retryable: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }


@dataclass(frozen=True)
class ResponseEnvelope:
    """One gateway response: HTTP-ish status plus a JSON-shaped body."""

    status: int
    request_id: Optional[str] = None
    tenant: Optional[str] = None
    body: Optional[Dict[str, Any]] = None
    error: Optional[ErrorEnvelope] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"status": self.status}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.body is not None:
            payload["body"] = self.body
        if self.error is not None:
            payload["error"] = self.error.as_dict()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


class _TokenBucket:
    """Deterministic token bucket on the gateway's clock."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.last: Optional[float] = None

    def try_take(self, now: float) -> bool:
        if self.last is None or now < self.last:
            # First take, or a clock that stepped backwards: the elapsed
            # time is unknowable, so charge the current balance and
            # re-anchor without refilling.
            self.last = now
        elif now > self.last:
            # Refill is clamped to capacity (= burst), so a forward clock
            # jump — real or injected via the fault-injection seam — mints
            # at most one burst of tokens, never an unbounded backlog.
            self.tokens = min(
                self.capacity, self.tokens + (now - self.last) * self.rate
            )
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


def _json_safe(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class Gateway:
    """Authenticate, rate-limit and meter tenant traffic into an engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.ServingEngine` to front.  Build it
        with ``admission=config.admission_policy()`` and
        ``health=config.health_config()`` (see :meth:`GatewayConfig`) so
        tenant priorities and SLO gauges line up with the gateway's labels.
    config:
        The tenancy map.
    """

    def __init__(self, engine, config: GatewayConfig) -> None:
        self.engine = engine
        self.config = config
        self._by_key: Dict[str, TenantConfig] = {
            t.api_key: t for t in config.tenants
        }
        self._by_name: Dict[str, TenantConfig] = {t.name: t for t in config.tenants}
        self._buckets: Dict[str, _TokenBucket] = {
            t.name: _TokenBucket(t.requests_per_second, t.burst)
            for t in config.tenants
            if t.requests_per_second is not None
        }
        self._inflight: Dict[str, set] = {t.name: set() for t in config.tenants}
        self._owner: Dict[str, str] = {}        # request_id -> tenant name
        self._settled: Dict[str, ResponseEnvelope] = {}

    @property
    def clock(self) -> Callable[[], float]:
        """The engine scheduler's *live* clock.

        Resolved per call rather than captured at construction: the
        fault-injection harness rebinds ``scheduler.clock`` in place (e.g.
        ``clock_jump`` adds a forward offset), and per-tenant rate
        accounting must tick on the same time base as the scheduler it
        fronts — a gateway frozen on the original clock would refill token
        buckets against a time the rest of the stack no longer uses.
        """
        scheduler = getattr(self.engine, "lm_scheduler", None)
        if scheduler is not None:
            return scheduler.clock
        return self.engine.clock

    # ------------------------------------------------------------------ #
    # Tenant bookkeeping
    # ------------------------------------------------------------------ #
    def tenant(self, name: str) -> TenantConfig:
        """The tenant named ``name`` (raises on unknown)."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise ServingError(f"unknown tenant {name!r}") from exc

    def inflight(self, name: str) -> int:
        """In-flight (accepted, unfinished) requests of tenant ``name``."""
        return len(self._inflight[self.tenant(name).name])

    def authenticate(self, api_key: str) -> TenantConfig:
        """The tenant owning ``api_key``; raises :class:`AuthenticationError`."""
        tenant = self._by_key.get(api_key)
        if tenant is None:
            # The metrics label must never echo an attacker-controlled key.
            self.engine.stats.record_rejection("auth", "default", "-")
            raise AuthenticationError("unknown API key")
        return tenant

    def admit(self, tenant: TenantConfig) -> None:
        """Charge ``tenant``'s token bucket and quota (raises when dry/full)."""
        bucket = self._buckets.get(tenant.name)
        if bucket is not None and not bucket.try_take(self.clock()):
            self.engine.stats.record_rejection(
                "rate_limit", tenant.slo_class, tenant.name
            )
            raise RateLimitedError(
                f"tenant {tenant.name!r} exceeded "
                f"{tenant.requests_per_second}/s (burst {tenant.burst})"
            )
        if (
            tenant.max_concurrent is not None
            and len(self._inflight[tenant.name]) >= tenant.max_concurrent
        ):
            self.engine.stats.record_rejection(
                "quota", tenant.slo_class, tenant.name
            )
            raise QuotaExceededError(
                f"tenant {tenant.name!r} at max_concurrent="
                f"{tenant.max_concurrent}"
            )

    def release(self, request_id: str) -> None:
        """Return ``request_id``'s quota slot (idempotent)."""
        owner = self._owner.pop(request_id, None)
        if owner is not None:
            self._inflight[owner].discard(request_id)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, api_key: str, request: InferenceRequest) -> ResponseEnvelope:
        """Authenticate → charge → stamp → enqueue; never raises.

        On acceptance (202) the request is in the engine with
        ``request.tenant`` / ``request.slo_class`` stamped from the tenant;
        every failure returns its typed envelope instead of raising, so a
        wire adapter maps this 1:1 onto an HTTP response.
        """
        try:
            tenant = self.authenticate(api_key)
        except AuthenticationError as exc:
            return self._error_envelope(401, exc, request_id=request.request_id)
        try:
            self.admit(tenant)
        except (RateLimitedError, QuotaExceededError) as exc:
            return self._error_envelope(
                429, exc, request_id=request.request_id, tenant=tenant.name
            )
        request.tenant = tenant.name
        request.slo_class = tenant.slo_class
        try:
            self.engine.submit(request)
        except RetryableServingError as exc:
            return self._error_envelope(
                503, exc, request_id=request.request_id, tenant=tenant.name
            )
        except ServingError as exc:
            return self._error_envelope(
                400, exc, request_id=request.request_id, tenant=tenant.name
            )
        self._owner[request.request_id] = tenant.name
        self._inflight[tenant.name].add(request.request_id)
        return ResponseEnvelope(
            status=202,
            request_id=request.request_id,
            tenant=tenant.name,
            body={"state": "accepted"},
        )

    def handle(self, payload: Dict[str, Any]) -> ResponseEnvelope:
        """Serve one wire-shaped request dict (the JSON an HTTP body carries).

        Required keys: ``api_key``, ``model``, ``token_ids``.  Optional:
        ``family`` (default ``"lm"``), ``max_new_tokens``, ``num_classes``,
        ``deadline_s``, ``request_id``.
        """
        if not isinstance(payload, dict):
            return self._error_envelope(
                400, ServingError("request payload must be a JSON object")
            )
        api_key = payload.get("api_key")
        if not api_key or not isinstance(api_key, str):
            return self._error_envelope(
                401, AuthenticationError("missing api_key")
            )
        try:
            kwargs: Dict[str, Any] = dict(
                model=payload["model"],
                family=payload.get("family", WorkloadFamily.LM),
                token_ids=np.asarray(payload["token_ids"], dtype=np.int64),
            )
            for key in ("max_new_tokens", "num_classes", "deadline_s", "request_id"):
                if key in payload:
                    kwargs[key] = payload[key]
            request = InferenceRequest(**kwargs)
        except (KeyError, TypeError, ValueError, ServingError) as exc:
            return self._error_envelope(400, ServingError(f"bad request: {exc}"))
        return self.submit(api_key, request)

    # ------------------------------------------------------------------ #
    # Progress and results
    # ------------------------------------------------------------------ #
    def step(self, force: bool = False) -> List[ResponseEnvelope]:
        """Advance the engine one step and settle finished gateway requests.

        Each completed/failed gateway-submitted request releases its quota
        slot and parks its final envelope for :meth:`poll`; the freshly
        settled envelopes are also returned for push-style consumers.
        """
        results = self.engine.step(force=force)
        settled: List[ResponseEnvelope] = []
        for result in results:
            if result.request_id in self._owner:
                settled.append(self._settle_result(result))
        for request_id in [rid for rid in self._owner]:
            exc = self.engine.failure(request_id)
            if exc is not None:
                settled.append(self._settle_failure(request_id, exc))
        return settled

    def poll(self, request_id: str) -> ResponseEnvelope:
        """The request's current envelope: 200 settled, 202 pending, 404 unknown."""
        settled = self._settled.get(request_id)
        if settled is not None:
            return settled
        if request_id in self._owner:
            return ResponseEnvelope(
                status=202,
                request_id=request_id,
                tenant=self._owner[request_id],
                body={"state": "pending"},
            )
        return ResponseEnvelope(
            status=404,
            request_id=request_id,
            error=ErrorEnvelope(
                code="not_found",
                message=f"unknown request {request_id!r}",
                retryable=False,
            ),
        )

    def run_until_idle(self, max_steps: int = 100_000) -> List[ResponseEnvelope]:
        """Drive :meth:`step` until every gateway request settled."""
        settled: List[ResponseEnvelope] = []
        steps = 0
        while self._owner:
            settled.extend(self.step(force=True))
            steps += 1
            if steps >= max_steps:
                raise ServingError(
                    f"gateway did not drain within {max_steps} steps"
                )
        return settled

    # ------------------------------------------------------------------ #
    # Async front-end
    # ------------------------------------------------------------------ #
    async def infer_async(self, server, api_key: str, request: InferenceRequest):
        """Serve one request through an :class:`~repro.serve.aio.AsyncServer`.

        The same authenticate→charge discipline as :meth:`submit`, but the
        typed errors *raise* (natural for an async client awaiting a
        result) and the quota slot releases when the awaited result — or
        failure — lands.  The server must front the same engine.
        """
        tenant = self.authenticate(api_key)
        self.admit(tenant)
        request.tenant = tenant.name
        request.slo_class = tenant.slo_class
        self._owner[request.request_id] = tenant.name
        self._inflight[tenant.name].add(request.request_id)
        try:
            return await server.infer(request)
        finally:
            self.release(request.request_id)

    # ------------------------------------------------------------------ #
    # Envelope assembly
    # ------------------------------------------------------------------ #
    def _error_envelope(
        self,
        status: int,
        exc: ServingError,
        request_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> ResponseEnvelope:
        return ResponseEnvelope(
            status=status,
            request_id=request_id,
            tenant=tenant,
            error=ErrorEnvelope(
                code=type(exc).__name__,
                message=str(exc),
                retryable=is_retryable(exc),
            ),
        )

    def _result_body(self, result: InferenceResult) -> Dict[str, Any]:
        output = result.output
        if isinstance(output, RequestOutput):
            body: Dict[str, Any] = {
                "finish_reason": output.finish_reason,
                "token_ids": list(output.token_ids),
                "logprobs": list(output.logprobs),
                "next_tokens": list(output.next_tokens),
            }
        else:
            body = dict(output)
        body["latency_s"] = result.latency
        return _json_safe(body)

    def _park(self, envelope: ResponseEnvelope) -> ResponseEnvelope:
        self._settled[envelope.request_id] = envelope
        # Bound the settled buffer like the engine's result registries.
        while len(self._settled) > self.engine.result_buffer:
            self._settled.pop(next(iter(self._settled)))
        return envelope

    def _settle_result(self, result: InferenceResult) -> ResponseEnvelope:
        tenant = self._owner.get(result.request_id)
        self.release(result.request_id)
        self.engine.result(result.request_id)  # consume the engine-side record
        return self._park(
            ResponseEnvelope(
                status=200,
                request_id=result.request_id,
                tenant=tenant,
                body=self._result_body(result),
            )
        )

    def _settle_failure(self, request_id: str, exc: Exception) -> ResponseEnvelope:
        tenant = self._owner.get(request_id)
        self.release(request_id)
        try:
            self.engine.result(request_id)
        except ServingError:
            pass  # consuming the failure record is the point
        if not isinstance(exc, ServingError):
            exc = ServingError(str(exc))
        return self._park(
            self._error_envelope(500, exc, request_id=request_id, tenant=tenant)
        )
