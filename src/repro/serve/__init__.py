"""``repro.serve`` — batched quantized-inference serving.

The serving subsystem turns the repo's one-shot experiment scripts into a
request/response engine:

* :mod:`repro.serve.repository` — quantize-once/serve-many model store
  holding weights as memory-aligned packed OVP byte streams;
* :mod:`repro.serve.batcher` — dynamic micro-batching with a max-batch /
  max-wait policy;
* :mod:`repro.serve.engine` — batched forward passes for the three workload
  families (GLUE classification, SQuAD span extraction, LM next-token) plus
  the synchronous scheduler;
* :mod:`repro.serve.kvcache` — per-sequence paged KV caches whose sealed
  pages are memory-aligned OVP byte streams (quantize-on-append) held in a
  shared refcounted :class:`~repro.serve.kvcache.PagePool` with a decode-once
  LRU and a prompt-prefix index for copy-on-write page sharing;
* :mod:`repro.serve.sampling` — the generation API surface:
  :class:`~repro.serve.sampling.SamplingParams` (temperature / top-k / top-p /
  stop tokens / seed), a pluggable logits-processor chain and
  :class:`~repro.serve.sampling.Sampler`, plus the typed streamed/final
  outputs :class:`~repro.serve.sampling.TokenChunk` and
  :class:`~repro.serve.sampling.RequestOutput`;
* :mod:`repro.serve.scheduler` — slot-level continuous batching that admits
  and retires generation sequences mid-flight, samples per-slot with
  per-request seeded generators, honors stop tokens mid-round and cancels
  in-flight sequences on demand;
* :mod:`repro.serve.spec` — draft-model speculative decoding: a
  layer-truncated zoo draft with calibrated multi-position speculative
  heads proposes ``k`` tokens per slot per round, confidence-gated, and the
  target verifies all ``k + 1`` positions in one batched multi-token pass
  (greedy outputs stay token-for-token identical);
* :mod:`repro.serve.aio` — asyncio front-end for concurrent clients
  (``infer`` / ``stream`` / ``cancel``);
* :mod:`repro.serve.stats` — throughput, p50/p95 latency, batch fill,
  DRAM-byte, KV-cache/slot-occupancy, finish-reason and streamed-token
  latency (TTFT / inter-token) accounting aligned with the performance
  simulators;
* :mod:`repro.serve.telemetry` — span-based request-lifecycle tracing and
  per-phase round profiling (:class:`~repro.serve.telemetry.Tracer`, off by
  default via the :data:`~repro.serve.telemetry.NULL_TRACER` null object)
  plus the Prometheus-style
  :class:`~repro.serve.telemetry.MetricsRegistry`; exports Chrome
  ``trace_event`` JSON, JSONL span logs and ``phase_report()`` wall-clock
  breakdowns;
* :mod:`repro.serve.health` — the serving health layer: declarative
  :class:`~repro.serve.health.SLOClass` objectives (TTFT / latency /
  availability per traffic class) evaluated continuously against the
  telemetry instruments, a multi-window burn-rate alert engine with
  hysteresis emitting correlation-id'd
  :class:`~repro.serve.health.HealthEvent` records, and the
  ``health_report()`` / ``event_log()`` snapshots on
  :class:`~repro.serve.engine.ServingEngine` and
  :class:`~repro.serve.aio.AsyncServer`;
* :mod:`repro.serve.admission` — overload resilience:
  :class:`~repro.serve.admission.AdmissionPolicy` bounds the queue with
  typed rejections, orders admission by per-class priority, enforces
  request deadlines / queue timeouts (terminal
  ``finish_reason="deadline"``), lets higher-priority arrivals preempt
  lower-priority active slots (sealed pages re-attach copy-on-write via
  the prefix index, so resume re-prefills only the unsealed suffix), and
  optionally sheds below-floor traffic while burn-rate alerts fire;
* :mod:`repro.serve.errors` — the retryable/terminal
  :class:`~repro.serve.requests.ServingError` taxonomy, paired with the
  bounded jittered-backoff :class:`~repro.serve.aio.RetryPolicy` on
  :class:`~repro.serve.aio.AsyncServer`;
* :mod:`repro.serve.faultinject` — deterministic, seeded fault-injection
  harness (phase errors, pool-decode failures, clock jumps, queue-pressure
  bursts) driving chaos suites that assert the scheduler's refcount /
  stream / terminal-finish invariants under every schedule;
* :mod:`repro.serve.gateway` — the multi-tenant front door: per-tenant API
  keys, token-bucket rate limits and concurrent-request quotas mapped onto
  admission priorities, JSON-shaped request/response/error envelopes with
  HTTP-ish status codes, and a ``tenant`` label threaded through the
  scheduler into ``serve_requests_*_total{tenant,...}`` and the per-tenant
  SLO gauges (each tenant's ``slo_class`` defaults to its own name);
* :mod:`repro.serve.loadgen` — seeded trace-driven load generation: bursty
  on/off arrivals per tenant, multi-turn conversations that re-walk shared
  prefixes, a replayable JSON trace format and a virtual-round
  :class:`~repro.serve.loadgen.LoadRunner` whose per-tenant SLO-attainment
  report is byte-identical across runs of the same trace.

The scheduler additionally supports **chunked prefill**
(``prefill_chunk_tokens=`` on :class:`~repro.serve.engine.ServingEngine` /
:class:`~repro.serve.scheduler.ContinuousBatchingScheduler`): long prompts
append K/V one bounded, page-aligned chunk per round, interleaved with
decode, so a single long document cannot stall interactive streams for a
whole prompt-length prefill pass — greedy outputs stay token-identical.
"""

from repro.serve.admission import AdmissionPolicy
from repro.serve.aio import AsyncServer, RetryPolicy
from repro.serve.batcher import MicroBatcher, QueuedRequest
from repro.serve.errors import (
    AdmissionRejectedError,
    AuthenticationError,
    InjectedFault,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    RetryableServingError,
    is_retryable,
)
from repro.serve.faultinject import FaultInjector, FaultSchedule, FaultSpec
from repro.serve.engine import InferenceEngine, ServingEngine
from repro.serve.gateway import (
    ErrorEnvelope,
    Gateway,
    GatewayConfig,
    ResponseEnvelope,
    TenantConfig,
)
from repro.serve.loadgen import (
    LoadRunner,
    TenantLoad,
    TraceConfig,
    TraceEvent,
    VirtualClock,
    generate_trace,
    load_trace,
    save_trace,
)
from repro.serve.health import (
    BurnRatePolicy,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
    SLOClass,
    unified_event_log,
)
from repro.serve.sampling import (
    FinishReason,
    LogitsProcessor,
    RequestOutput,
    SampledToken,
    Sampler,
    SamplingParams,
    TemperatureWarper,
    TokenChunk,
    TopKFilter,
    TopPFilter,
    default_processors,
    top_k_candidates,
)
from repro.serve.spec import SpeculativeConfig, SpeculativeDecoder
from repro.serve.kvcache import (
    KVCacheConfig,
    LayerKVCache,
    PageHandle,
    PagePool,
    SequenceKVCache,
    cache_for_model,
)
from repro.serve.repository import ModelRepository, PackedModel, RepositoryStats
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    ServingError,
    WorkloadFamily,
)
from repro.serve.scheduler import ContinuousBatchingScheduler
from repro.serve.stats import (
    BatchRecord,
    DecodeRoundRecord,
    ServingStats,
    ServingSummary,
)
from repro.serve.telemetry import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    PhaseReport,
    PhaseRow,
    Span,
    Tracer,
    exponential_buckets,
    validate_chrome_trace,
    validate_exposition,
)

__all__ = [
    "AdmissionPolicy",
    "AdmissionRejectedError",
    "AsyncServer",
    "AuthenticationError",
    "BatchRecord",
    "BurnRatePolicy",
    "ContinuousBatchingScheduler",
    "Counter",
    "DecodeRoundRecord",
    "ErrorEnvelope",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FinishReason",
    "Gateway",
    "GatewayConfig",
    "Gauge",
    "HealthConfig",
    "HealthEvent",
    "HealthMonitor",
    "Histogram",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceResult",
    "InjectedFault",
    "KVCacheConfig",
    "LayerKVCache",
    "LoadRunner",
    "LogitsProcessor",
    "MicroBatcher",
    "MetricsRegistry",
    "ModelRepository",
    "NULL_TRACER",
    "NullTracer",
    "PackedModel",
    "PageHandle",
    "PagePool",
    "PhaseReport",
    "PhaseRow",
    "QueueFullError",
    "QueuedRequest",
    "QuotaExceededError",
    "RateLimitedError",
    "RepositoryStats",
    "RequestOutput",
    "ResponseEnvelope",
    "RetryPolicy",
    "RetryableServingError",
    "SLOClass",
    "SampledToken",
    "Sampler",
    "SamplingParams",
    "SequenceKVCache",
    "Span",
    "SpeculativeConfig",
    "SpeculativeDecoder",
    "ServingEngine",
    "ServingError",
    "ServingStats",
    "ServingSummary",
    "TemperatureWarper",
    "TenantConfig",
    "TenantLoad",
    "TokenChunk",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "TopKFilter",
    "TopPFilter",
    "VirtualClock",
    "WorkloadFamily",
    "cache_for_model",
    "default_processors",
    "exponential_buckets",
    "generate_trace",
    "is_retryable",
    "load_trace",
    "save_trace",
    "top_k_candidates",
    "unified_event_log",
    "validate_chrome_trace",
    "validate_exposition",
]
