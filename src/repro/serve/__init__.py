"""``repro.serve`` — batched quantized-inference serving.

The serving subsystem turns the repo's one-shot experiment scripts into a
request/response engine:

* :mod:`repro.serve.repository` — quantize-once/serve-many model store
  holding weights as memory-aligned packed OVP byte streams;
* :mod:`repro.serve.batcher` — dynamic micro-batching with a max-batch /
  max-wait policy;
* :mod:`repro.serve.engine` — batched forward passes for the three workload
  families (GLUE classification, SQuAD span extraction, LM next-token) plus
  the synchronous scheduler;
* :mod:`repro.serve.aio` — asyncio front-end for concurrent clients;
* :mod:`repro.serve.stats` — throughput, p50/p95 latency, batch fill and
  DRAM-byte accounting aligned with the performance simulators.
"""

from repro.serve.aio import AsyncServer
from repro.serve.batcher import MicroBatcher, QueuedRequest
from repro.serve.engine import InferenceEngine, ServingEngine
from repro.serve.repository import ModelRepository, PackedModel, RepositoryStats
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    ServingError,
    WorkloadFamily,
)
from repro.serve.stats import BatchRecord, ServingStats, ServingSummary

__all__ = [
    "AsyncServer",
    "BatchRecord",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceResult",
    "MicroBatcher",
    "ModelRepository",
    "PackedModel",
    "QueuedRequest",
    "RepositoryStats",
    "ServingEngine",
    "ServingError",
    "ServingStats",
    "ServingSummary",
    "WorkloadFamily",
]
