"""Request/response types of the serving engine.

A request names a model from :mod:`repro.models.zoo`, one of the three
workload families the paper evaluates (GLUE-style classification, SQuAD-style
span extraction, LM next-token prediction) and a token-id sequence.  Requests
are only batchable together when their :attr:`InferenceRequest.batch_key`
matches: the micro-batcher never mixes models, families or sequence lengths
inside one forward pass.

LM decoding behaviour lives on :attr:`InferenceRequest.sampling` — a
:class:`~repro.serve.sampling.SamplingParams` describing temperature /
top-k / top-p filtering, stop tokens, token budget, reported logprobs and
seed.  The pre-redesign ``top_k=`` / ``max_new_tokens=`` keyword arguments
remain as a deprecation shim that maps into it (and the two stay mirrored, so
old call sites read the same values they always did).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.serve.errors import ServingError
from repro.serve.sampling import RequestOutput, SamplingParams

__all__ = [
    "ServingError",
    "WorkloadFamily",
    "InferenceRequest",
    "InferenceResult",
    "normalized_num_classes",
]


class WorkloadFamily:
    """The three workload families the serving engine supports."""

    CLASSIFY = "classify"   # GLUE-style sequence classification
    SPAN = "span"           # SQuAD-style span extraction
    LM = "lm"               # next-token prediction / scoring

    ALL = (CLASSIFY, SPAN, LM)


def normalized_num_classes(family: str, num_classes: int) -> int:
    """``num_classes`` shapes only classification models; normalize to 0 elsewhere.

    Shared by the request batch key and the repository cache key so the
    batcher's homogeneity rule and the model cache can never disagree.
    """
    return int(num_classes) if family == WorkloadFamily.CLASSIFY else 0


_REQUEST_COUNTER = itertools.count()


def _next_request_id() -> str:
    return f"req-{next(_REQUEST_COUNTER)}"


@dataclass
class InferenceRequest:
    """One inference request.

    Parameters
    ----------
    model:
        Zoo model name (e.g. ``"bert-base"`` or ``"gpt2-xl"``).
    family:
        One of :class:`WorkloadFamily`.
    token_ids:
        1-D array of input token ids.
    num_classes:
        Output classes for the classification family (ignored otherwise).
    top_k:
        **Deprecated** — number of candidates reported for the final scored
        position (the pre-redesign report).  New callers set
        ``sampling.logprobs``, which also streams per-token candidates.
    max_new_tokens:
        **Deprecated** — maps to ``sampling.max_new_tokens`` (LM tokens to
        generate after the prompt; 0 scores the prompt only).
    sampling:
        The request's :class:`~repro.serve.sampling.SamplingParams`.  When
        omitted, one is built from the legacy kwargs (greedy decode).
        Passing both ``sampling`` and conflicting legacy kwargs is an error.
    slo_class:
        The SLO traffic class this request's latency/TTFT/availability is
        accounted under (see :mod:`repro.serve.health`).  Purely an
        accounting label — it never fragments batches and unknown names are
        still recorded (just not evaluated unless a matching
        :class:`~repro.serve.health.SLOClass` is configured).
    deadline_s:
        Optional end-to-end deadline in seconds, measured from enqueue on the
        scheduler clock.  A request that exceeds it — queued or mid-decode —
        terminates with ``finish_reason="deadline"``, freeing its slot and KV
        pages exactly like :meth:`cancel`.  ``None`` means no deadline.
    priority:
        Optional explicit admission priority (higher wins).  Overrides the
        :class:`~repro.serve.admission.AdmissionPolicy` class-priority
        mapping for this one request; ``None`` defers to the policy.
    tenant:
        The tenant this request is billed to (see
        :mod:`repro.serve.gateway`).  Like ``slo_class`` it is purely an
        accounting label — it never fragments batches — but it is threaded
        through the scheduler into the
        ``serve_requests_{submitted,rejected,finished}_total`` counters so
        per-tenant traffic and rejection rates are observable.  The default
        ``"-"`` marks untenanted (direct-to-engine) traffic.
    """

    model: str
    family: str
    token_ids: np.ndarray
    num_classes: int = 2
    top_k: int = 1
    max_new_tokens: int = 0
    sampling: Optional[SamplingParams] = None
    request_id: str = field(default_factory=_next_request_id)
    slo_class: str = "default"
    deadline_s: Optional[float] = None
    priority: Optional[int] = None
    tenant: str = "-"

    def __post_init__(self) -> None:
        if not self.slo_class or not isinstance(self.slo_class, str):
            raise ServingError("slo_class must be a non-empty string")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServingError("tenant must be a non-empty string")
        if self.deadline_s is not None:
            self.deadline_s = float(self.deadline_s)
            if not self.deadline_s > 0:
                raise ServingError("deadline_s must be positive when set")
        if self.priority is not None:
            self.priority = int(self.priority)
        if self.family not in WorkloadFamily.ALL:
            raise ServingError(
                f"unknown workload family {self.family!r}; "
                f"expected one of {sorted(WorkloadFamily.ALL)}"
            )
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        if self.token_ids.ndim != 1 or self.token_ids.size == 0:
            raise ServingError("token_ids must be a non-empty 1-D array")
        if self.num_classes < 1:
            raise ServingError("num_classes must be >= 1")
        if self.sampling is None:
            self.sampling = SamplingParams.from_legacy(self.top_k, self.max_new_tokens)
            self.top_k = int(self.top_k)
        else:
            if not isinstance(self.sampling, SamplingParams):
                raise ServingError("sampling must be a SamplingParams")
            if self.top_k != 1 and self.top_k != max(1, self.sampling.logprobs):
                raise ServingError(
                    "pass top_k (deprecated) or sampling.logprobs, not both"
                )
            if (
                self.max_new_tokens != 0
                and self.max_new_tokens != self.sampling.max_new_tokens
            ):
                raise ServingError(
                    "pass max_new_tokens (deprecated) or "
                    "sampling.max_new_tokens, not both"
                )
            # New-API requests report sampling.logprobs candidates at the
            # final position too; legacy requests keep their top_k as-is.
            self.top_k = max(1, self.sampling.logprobs)
        # Mirror so pre-redesign readers (request.max_new_tokens) stay correct.
        self.max_new_tokens = self.sampling.max_new_tokens
        if self.max_new_tokens > 0 and self.family != WorkloadFamily.LM:
            raise ServingError("max_new_tokens applies to the LM family only")

    @property
    def seq_len(self) -> int:
        """Number of input tokens."""
        return int(self.token_ids.size)

    @property
    def batch_key(self) -> Tuple[str, str, int, int]:
        """Requests with equal keys can share one batched forward pass.

        ``num_classes`` is normalized through the same helper the model
        repository keys on, so span/LM batches are not fragmented by a field
        their families ignore.  Sampling parameters never fragment batches:
        each slot/row samples with its own generator.
        """
        num_classes = normalized_num_classes(self.family, self.num_classes)
        return (self.model, self.family, num_classes, self.seq_len)


@dataclass
class InferenceResult:
    """The answer to one :class:`InferenceRequest`.

    ``output`` is family-specific:

    * classify — ``label`` (int), ``probs`` (per-class list);
    * span — ``start``/``end`` (ints), ``score`` (float);
    * lm — a typed :class:`~repro.serve.sampling.RequestOutput` carrying the
      generated ``token_ids``/``logprobs``, the ``finish_reason``
      (``stop`` / ``length`` / ``aborted`` / ``error`` / ``deadline``;
      ``None`` for score-only requests) and the final position's top
      candidates.  It also
      answers the legacy dict keys (``next_tokens``, ``log_probs``,
      ``generated_tokens``, ``kv_cache``).
    """

    request_id: str
    model: str
    family: str
    output: Union[Dict[str, Any], RequestOutput]
    batch_size: int
    enqueued_at: float
    completed_at: float
    scheme: Optional[str] = None

    @property
    def latency(self) -> float:
        """Seconds from enqueue to completion (queueing + compute)."""
        return self.completed_at - self.enqueued_at

    @property
    def finish_reason(self) -> Optional[str]:
        """The LM finish reason (``None`` for non-LM / score-only outputs)."""
        return getattr(self.output, "finish_reason", None)
