"""Request/response types of the serving engine.

A request names a model from :mod:`repro.models.zoo`, one of the three
workload families the paper evaluates (GLUE-style classification, SQuAD-style
span extraction, LM next-token prediction) and a token-id sequence.  Requests
are only batchable together when their :attr:`InferenceRequest.batch_key`
matches: the micro-batcher never mixes models, families or sequence lengths
inside one forward pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.errors import ReproError

__all__ = [
    "ServingError",
    "WorkloadFamily",
    "InferenceRequest",
    "InferenceResult",
    "normalized_num_classes",
]


class ServingError(ReproError):
    """Raised for malformed requests or serving-engine misuse."""


class WorkloadFamily:
    """The three workload families the serving engine supports."""

    CLASSIFY = "classify"   # GLUE-style sequence classification
    SPAN = "span"           # SQuAD-style span extraction
    LM = "lm"               # next-token prediction / scoring

    ALL = (CLASSIFY, SPAN, LM)


def normalized_num_classes(family: str, num_classes: int) -> int:
    """``num_classes`` shapes only classification models; normalize to 0 elsewhere.

    Shared by the request batch key and the repository cache key so the
    batcher's homogeneity rule and the model cache can never disagree.
    """
    return int(num_classes) if family == WorkloadFamily.CLASSIFY else 0


_REQUEST_COUNTER = itertools.count()


def _next_request_id() -> str:
    return f"req-{next(_REQUEST_COUNTER)}"


@dataclass
class InferenceRequest:
    """One inference request.

    Parameters
    ----------
    model:
        Zoo model name (e.g. ``"bert-base"`` or ``"gpt2-xl"``).
    family:
        One of :class:`WorkloadFamily`.
    token_ids:
        1-D array of input token ids.
    num_classes:
        Output classes for the classification family (ignored otherwise).
    top_k:
        Number of next-token candidates returned by the LM family.
    max_new_tokens:
        LM only: number of tokens to generate greedily after the prompt
        (incremental decode through a KV cache).  0 (the default) scores the
        prompt's next token without generating.
    """

    model: str
    family: str
    token_ids: np.ndarray
    num_classes: int = 2
    top_k: int = 1
    max_new_tokens: int = 0
    request_id: str = field(default_factory=_next_request_id)

    def __post_init__(self) -> None:
        if self.family not in WorkloadFamily.ALL:
            raise ServingError(
                f"unknown workload family {self.family!r}; "
                f"expected one of {sorted(WorkloadFamily.ALL)}"
            )
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        if self.token_ids.ndim != 1 or self.token_ids.size == 0:
            raise ServingError("token_ids must be a non-empty 1-D array")
        if self.num_classes < 1:
            raise ServingError("num_classes must be >= 1")
        if self.top_k < 1:
            raise ServingError("top_k must be >= 1")
        if self.max_new_tokens < 0:
            raise ServingError("max_new_tokens must be >= 0")
        if self.max_new_tokens > 0 and self.family != WorkloadFamily.LM:
            raise ServingError("max_new_tokens applies to the LM family only")

    @property
    def seq_len(self) -> int:
        """Number of input tokens."""
        return int(self.token_ids.size)

    @property
    def batch_key(self) -> Tuple[str, str, int, int]:
        """Requests with equal keys can share one batched forward pass.

        ``num_classes`` is normalized through the same helper the model
        repository keys on, so span/LM batches are not fragmented by a field
        their families ignore.
        """
        num_classes = normalized_num_classes(self.family, self.num_classes)
        return (self.model, self.family, num_classes, self.seq_len)


@dataclass
class InferenceResult:
    """The answer to one :class:`InferenceRequest`.

    ``output`` is family-specific:

    * classify — ``label`` (int), ``probs`` (per-class list);
    * span — ``start``/``end`` (ints), ``score`` (float);
    * lm — ``next_tokens``/``log_probs`` (top-k lists of the final position);
      generation requests (``max_new_tokens > 0``) add ``generated_tokens``.
    """

    request_id: str
    model: str
    family: str
    output: Dict[str, Any]
    batch_size: int
    enqueued_at: float
    completed_at: float
    scheme: Optional[str] = None

    @property
    def latency(self) -> float:
        """Seconds from enqueue to completion (queueing + compute)."""
        return self.completed_at - self.enqueued_at
