"""Slot-level continuous batching for LM generation.

The micro-batcher (:mod:`repro.serve.batcher`) releases *whole* batches: every
request in a batch completes before any slot is reused.  For multi-token LM
generation that wastes capacity — a batch with one long sequence ends up
decoding at occupancy 1 while finished slots sit idle.  The continuous
scheduler here keeps a fixed pool of ``num_slots`` decode slots and
admits/retires sequences *mid-flight*:

* **admit** — whenever a slot is free and a request is queued, the prompt is
  prefilled through the model's incremental path into a fresh per-sequence
  OVP-paged KV cache (:mod:`repro.serve.kvcache`), producing the first
  generated token; prompts whose page-aligned token prefix hashes to pages
  another request already sealed *attach* to those pool entries copy-on-write
  and prefill only the remaining suffix;
* **decode round** — all active slots advance one token in a single batched
  incremental forward (the Linear/FFN/head GEMMs stack across slots; only
  the attention core runs per-slot, since every sequence has its own past).
  Each slot *samples* its token with its request's
  :class:`~repro.serve.sampling.SamplingParams` — a per-request seeded
  generator, so co-batched sequences never perturb each other's draws — and
  stop tokens end a sequence mid-round;
* **retire** — a sequence that finishes (``stop`` or ``length``) releases its
  slot immediately, so the next queued request joins the very next round;
* **cancel** — :meth:`ContinuousBatchingScheduler.cancel` retires an
  in-flight (or still-queued) sequence *now*: its KV cache and page-pool
  references are released immediately, the freed slot admits a queued request
  the same step, and the client sees ``finish_reason="aborted"``;
* **speculate** — with ``speculative=`` set, slots first collect draft-token
  proposals (:mod:`repro.serve.spec`) and verify all of them in one batched
  multi-token round, emitting several tokens per slot per round while
  staying token-for-token identical to plain decode; un-proposed slots ride
  the same round as ordinary one-token rows;
* **admit control / deadlines / preemption** — with an
  :class:`~repro.serve.admission.AdmissionPolicy` attached, the queue is
  bounded (:class:`~repro.serve.errors.QueueFullError` past the cap, with an
  optional shed-on-burn-rate mode consulting the health monitor), requests
  carrying ``deadline_s`` (or hitting the policy's queue timeout) terminate
  with ``finish_reason="deadline"`` exactly like :meth:`cancel`, and a
  queued higher-priority request may *preempt* the lowest-priority active
  slot.  Eviction is cheap: the victim's sealed pages are already packed OVP
  bytes, so they are registered under the prefix index, the slot drops, and
  the re-queued request resumes by re-attaching them copy-on-write and
  prefilling only the open-page suffix — greedy output is token-identical
  to an uninterrupted run;
* **chunked prefill** — with ``prefill_chunk_tokens`` set, a prompt whose
  un-shared suffix exceeds the chunk admits into its slot immediately but
  appends K/V one bounded chunk per round, interleaved with the other
  slots' decode steps; intermediate chunks skip the LM-head GEMM entirely.
  One tenant's long document therefore delays each decode round by at most
  a chunk instead of the whole prompt, and greedy output stays
  token-identical to unchunked prefill (chunk boundaries are page-aligned
  for quantized caches, so every position attends the same
  quantized/fp32 past either way).

Every sampled token is also emitted as a
:class:`~repro.serve.sampling.TokenChunk` (drained by the engine's
``stream()``), and every round is recorded as a
:class:`~repro.serve.stats.DecodeRoundRecord` — slot occupancy, resident KV
bytes, finish reasons and streamed-token latencies (time-to-first-token and
inter-token gaps).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.attention import AttendScratch
from repro.serve.admission import AdmissionPolicy
from repro.serve.batcher import QueuedRequest
from repro.serve.errors import AdmissionRejectedError, QueueFullError
from repro.serve.kvcache import (
    KVCacheConfig,
    PagePool,
    SequenceKVCache,
    cache_for_model,
    validate_token_budget,
)
from repro.serve.repository import ModelRepository, PackedModel
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    ServingError,
    WorkloadFamily,
    normalized_num_classes,
)
from repro.serve.sampling import (
    FinishReason,
    RequestOutput,
    Sampler,
    TokenChunk,
    top_k_candidates,
)
from repro.serve.spec import SpeculativeConfig, SpeculativeDecoder
from repro.serve.stats import DecodeRoundRecord, ServingStats
from repro.serve.telemetry import NULL_TRACER

__all__ = ["ContinuousBatchingScheduler", "greedy_top_k"]


def greedy_top_k(log_probs: np.ndarray, top_k: int) -> dict:
    """Top-k next-token candidates of one vocabulary distribution.

    Runs on every retired request and every scored prompt.  Selection and
    ordering go through :func:`~repro.serve.sampling.top_k_candidates`, which
    re-derives the winner set from the k-th value and stable-sorts it —
    ``np.argpartition`` alone leaves ties unspecified across NumPy versions.
    ``top_k < 1`` is a caller bug (a bare ``[:0]`` slice would silently
    return no candidates) and is rejected up front.
    """
    top = top_k_candidates(log_probs, top_k)
    return {
        "next_tokens": [int(t) for t in top],
        "log_probs": [float(log_probs[t]) for t in top],
    }


@dataclass
class _Slot:
    """One in-flight sequence: its request, KV cache and decode progress."""

    queued: QueuedRequest
    entry: PackedModel
    cache: SequenceKVCache
    sampler: Sampler
    generator: np.random.Generator
    generated: List[int] = field(default_factory=list)
    logprobs: List[float] = field(default_factory=list)
    top_logprobs: List[Tuple[Tuple[int, float], ...]] = field(default_factory=list)
    last_log_probs: Optional[np.ndarray] = None
    finish_reason: Optional[str] = None
    last_token_at: Optional[float] = None
    prefill_tokens: int = 0   # prompt tokens actually prefilled (suffix only
    shared_tokens: int = 0    # ... when shared_tokens came from the page pool)
    # Chunked prefill: the chain tokens not yet appended to the cache (None
    # once prefill completed) and the full chain for prefix registration.
    pending_tokens: Optional[np.ndarray] = None
    chain: Optional[np.ndarray] = None

    @property
    def prefilling(self) -> bool:
        """True while the slot still owes prompt chunks (no decode yet)."""
        return self.pending_tokens is not None

    @property
    def request(self) -> InferenceRequest:
        return self.queued.request

    @property
    def done(self) -> bool:
        return self.finish_reason is not None


@dataclass
class _ResumeState:
    """Decode state saved when a slot is preempted, restored at re-admission.

    Everything needed to continue the stream exactly where it paused: the
    tokens already emitted, the sampler *and its generator* (so a seeded
    sampled request keeps drawing from the same stream), and the last
    distribution (for the final-position report if the request is cancelled
    or expires while re-queued).  The KV bytes themselves are *not* here —
    the sealed pages live on in the page pool under the prefix index, and
    resume re-attaches them copy-on-write.
    """

    generated: List[int]
    logprobs: List[float]
    top_logprobs: List[Tuple[Tuple[int, float], ...]]
    sampler: Sampler
    generator: np.random.Generator
    last_log_probs: Optional[np.ndarray]
    last_token_at: Optional[float]
    preempted_at: float


class ContinuousBatchingScheduler:
    """Admit/retire LM generation sequences over a fixed slot pool.

    Parameters
    ----------
    repository:
        The packed-model store; admitted requests fetch their entry from it.
    num_slots:
        Concurrent decode slots (the continuous-batching analogue of
        ``max_batch_size``).
    cache_config:
        KV-cache precision/paging; defaults to the repository's bit width.
    stats:
        Optional :class:`~repro.serve.stats.ServingStats` that receives one
        :class:`~repro.serve.stats.DecodeRoundRecord` per non-empty round.
    page_pool:
        Optional shared :class:`~repro.serve.kvcache.PagePool`; by default the
        scheduler builds its own from ``cache_config`` (decoded-page LRU
        capacity, prefix sharing on/off).
    share_generated_suffix:
        Also register pages sealed *during decode* in the pool's prefix index
        at retirement, so a follow-up turn whose prompt is
        ``prompt + generated`` attaches the whole previous conversation
        copy-on-write.  Off by default (generated suffixes are rarely
        re-prompted outside multi-turn chat, and each registration pins
        pages in the index LRU).
    speculative:
        Enable draft-model speculative decoding: a
        :class:`~repro.serve.spec.SpeculativeConfig` (the scheduler builds
        its own :class:`~repro.serve.spec.SpeculativeDecoder`) or an
        existing decoder instance to share calibrated pairs across
        schedulers.  Slots then propose up to ``k`` draft tokens per round
        and verify them in one batched multi-token target pass; slots whose
        model cannot be paired keep decoding plainly.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionPolicy` bounding
        the queue, ordering admission by priority, expiring queue-timeout
        waits, and (with ``preempt=True``) letting queued higher-priority
        requests evict lower-priority active slots.  ``None`` preserves the
        pre-admission behaviour exactly (unbounded FIFO, no preemption).
    health_monitor:
        Optional :class:`~repro.serve.health.HealthMonitor` consulted by the
        policy's shed-on-burn-rate mode: while any burn-rate alert is
        firing, below-floor-priority submissions are rejected.
    prefill_chunk_tokens:
        Enable chunked prefill: a prompt whose un-shared suffix exceeds this
        many tokens admits into its slot immediately but appends K/V in
        chunks of at most this size, one chunk per :meth:`step`, interleaved
        with the other slots' decode rounds — so one tenant's long document
        cannot monopolise a round and starve interactive streams.  Greedy
        output is token-identical to unchunked prefill; with quantized
        caches the chunk size must be a multiple of ``page_size`` (chunk
        boundaries then land exactly on page seals, so every position
        attends the same mix of quantized/fp32 past either way).  ``None``
        (default) prefills whole prompts in one pass, exactly as before.
    decode_micro_rounds:
        Run up to this many plain decode micro-rounds per :meth:`step`
        (default 1, the historical behaviour).  Amortises the per-step
        bookkeeping (deadline sweeps, admission, stats records) over
        several batched model passes when no speculation is configured —
        the speculative path re-plans proposals every round and therefore
        ignores this knob.  Trade-off: admission, cancellation and
        deadline checks happen between steps, so a value of ``m`` makes
        those up to ``m`` tokens coarser; keep it small (2–4) when
        latency SLOs are tight.
    """

    def __init__(
        self,
        repository: ModelRepository,
        num_slots: int = 4,
        cache_config: Optional[KVCacheConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[ServingStats] = None,
        page_pool: Optional[PagePool] = None,
        share_generated_suffix: bool = False,
        speculative=None,
        tracer=None,
        admission: Optional[AdmissionPolicy] = None,
        health_monitor=None,
        prefill_chunk_tokens: Optional[int] = None,
        decode_micro_rounds: int = 1,
    ) -> None:
        if num_slots < 1:
            raise ServingError("num_slots must be >= 1")
        if decode_micro_rounds < 1:
            raise ServingError("decode_micro_rounds must be >= 1")
        self.decode_micro_rounds = int(decode_micro_rounds)
        self.repository = repository
        self.num_slots = int(num_slots)
        self.cache_config = cache_config or KVCacheConfig(bits=repository.bits)
        if prefill_chunk_tokens is not None:
            prefill_chunk_tokens = int(prefill_chunk_tokens)
            if prefill_chunk_tokens < 1:
                raise ServingError("prefill_chunk_tokens must be >= 1")
            if (
                self.cache_config.quantize
                and prefill_chunk_tokens % self.cache_config.page_size
            ):
                raise ServingError(
                    "prefill_chunk_tokens must be a multiple of page_size "
                    f"({self.cache_config.page_size}) for quantized caches: "
                    "chunk boundaries must land on page seals to keep chunked "
                    "prefill token-identical to unchunked"
                )
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.share_generated_suffix = bool(share_generated_suffix)
        if speculative is None:
            self.spec = None
        elif isinstance(speculative, SpeculativeDecoder):
            self.spec = speculative
        elif isinstance(speculative, SpeculativeConfig):
            self.spec = SpeculativeDecoder(
                repository,
                speculative,
                target_cache_config=self.cache_config,
                tracer=self.tracer,
            )
        else:
            raise ServingError(
                "speculative must be a SpeculativeConfig or SpeculativeDecoder"
            )
        # One shared pool for every admitted sequence: sealed pages decode at
        # most once across rounds/sequences, and the prefix index lives here.
        self.page_pool = page_pool if page_pool is not None else self.cache_config.make_pool()
        if tracer is not None:
            # Only adopt the pool when a tracer was passed explicitly, so a
            # shared pool's tracer is never clobbered with the null default.
            self.page_pool.tracer = self.tracer
        self._queue: Deque[QueuedRequest] = deque()
        self._slots: List[Optional[_Slot]] = [None] * self.num_slots
        self._failed: List[Tuple[str, Exception]] = []
        self._chunks: List[TokenChunk] = []
        # Streamed-token latencies and finish reasons accumulate between
        # stats records; cancellations land here too, so the next recorded
        # round carries them even though they happened outside step().
        self._pending_ttfts: List[float] = []
        self._pending_ttft_classes: List[str] = []
        self._pending_gaps: List[float] = []
        self._pending_finishes: List[str] = []
        self._pending_finish_classes: List[str] = []
        self._pending_finish_tenants: List[str] = []
        self._pending_latencies: List[float] = []
        self._pending_latency_classes: List[str] = []
        self._pending_proposed = 0
        self._pending_accepted = 0
        self._pending_preempt_classes: List[str] = []
        # Deadline-expired results a failed round could not deliver; the
        # next step() call returns them first (see the round's except path).
        self._expired_stash: List[InferenceResult] = []
        self.admission = admission
        self.health_monitor = health_monitor
        # Deadline scanning costs a queue+slot sweep per step; only pay it
        # once a deadline-carrying request (or a queue-timeout policy) shows
        # up, so the deadline-free hot path stays inside the telemetry pin.
        self._deadline_watch = bool(
            admission is not None and admission.queue_timeout_s is not None
        )
        # One AttendScratch for the scheduler's lifetime: decode/verify
        # rounds reuse the padded K/V buffers, masks and fused-QKV/score
        # temporaries round after round instead of reallocating per round
        # (see AttendScratch for the persistence contract).
        self._round_scratch = AttendScratch()
        self.admitted = 0
        self.retired = 0
        self.cancelled = 0
        self.preempted = 0
        self.rejected = 0
        self.deadline_expired = 0

    # ------------------------------------------------------------------ #
    # Queueing
    # ------------------------------------------------------------------ #
    def submit(self, request: InferenceRequest) -> str:
        """Queue one LM generation request; returns its id.

        With an admission policy attached this may raise
        :class:`~repro.serve.errors.QueueFullError` (bounded queue at
        capacity) or :class:`~repro.serve.errors.AdmissionRejectedError`
        (shed-on-burn-rate active and the request's priority is below the
        floor).  Both are retryable; the request took no slot, cache or pool
        reference.
        """
        if request.family != WorkloadFamily.LM:
            raise ServingError("the continuous scheduler serves LM requests only")
        if request.max_new_tokens < 1:
            raise ServingError(
                "continuous batching schedules generation requests; "
                "use the micro-batcher for score-only LM requests"
            )
        self._check_admission(request)
        if request.deadline_s is not None:
            self._deadline_watch = True
        self._queue.append(QueuedRequest(request=request, enqueued_at=self.clock()))
        if self.stats is not None:
            self.stats.record_submitted(request.tenant, request.slo_class)
        if self.tracer.enabled:
            self.tracer.lifecycle_begin(
                request.request_id, "queued", {"model": request.model}
            )
        return request.request_id

    def _check_admission(self, request: InferenceRequest) -> None:
        """Reject the submission when the admission policy says to."""
        policy = self.admission
        if policy is None:
            return
        if (
            policy.max_queue_depth is not None
            and len(self._queue) >= policy.max_queue_depth
        ):
            self.rejected += 1
            if self.stats is not None:
                self.stats.record_rejection(
                    "queue_full", request.slo_class, request.tenant
                )
            raise QueueFullError(
                f"scheduler queue full "
                f"({len(self._queue)}/{policy.max_queue_depth}); "
                f"rejecting {request.request_id!r}"
            )
        if (
            policy.shed_on_burn_rate
            and self.health_monitor is not None
            and self.health_monitor.firing
            and policy.priority_of(request) < policy.shed_priority_floor
        ):
            self.rejected += 1
            if self.stats is not None:
                self.stats.record_rejection("shed", request.slo_class, request.tenant)
            raise AdmissionRejectedError(
                f"shedding {request.request_id!r} "
                f"(class {request.slo_class!r}, priority "
                f"{policy.priority_of(request)} < floor "
                f"{policy.shed_priority_floor}) while burn-rate alerts fire"
            )

    def __len__(self) -> int:
        return len(self._queue) + self.num_active

    @property
    def num_queued(self) -> int:
        """Requests waiting for a free slot."""
        return len(self._queue)

    @property
    def num_active(self) -> int:
        """Sequences currently holding a slot."""
        return sum(1 for slot in self._slots if slot is not None)

    @property
    def slot_occupancy(self) -> float:
        """Fraction of slots currently held."""
        return self.num_active / self.num_slots

    def has_request(self, request_id: str) -> bool:
        """True while ``request_id`` is queued or holding a slot."""
        if any(q.request.request_id == request_id for q in self._queue):
            return True
        return any(
            slot is not None and slot.request.request_id == request_id
            for slot in self._slots
        )

    def take_failures(self) -> List[Tuple[str, Exception]]:
        """Pop ``(request_id, exception)`` pairs of failed admissions."""
        failures = self._failed
        self._failed = []
        return failures

    def take_chunks(self) -> List[TokenChunk]:
        """Pop the :class:`TokenChunk`'s emitted since the last call."""
        chunks = self._chunks
        self._chunks = []
        return chunks

    def warm_speculative(self, model: str) -> None:
        """Calibrate ``model``'s draft pairing now instead of on first decode.

        Raises :class:`ServingError` when speculation is not enabled, and
        re-raises the pairing error when ``model`` cannot be paired.
        """
        if self.spec is None:
            raise ServingError(
                "speculative decoding is not enabled on this scheduler"
            )
        self.spec.warm(model)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def step(self) -> List[InferenceResult]:
        """Run one round: expire deadlines, admit, decode, retire finished.

        Returns the results of sequences retired (or deadline-expired) this
        round.  A plain round generates at most one token per active slot (a
        speculative verify round up to ``k + 1``), so callers interleave
        rounds with micro-batch steps without starving either path.
        """
        expired = self._expired_stash
        self._expired_stash = []
        if self._deadline_watch:
            expired.extend(self._expire_deadlines())
        if not len(self):
            if self._pending_finishes:
                self._record_round(0, 0, 0, [], self.clock(), self.page_pool.counters())
            return expired
        start = self.clock()
        pool_before = self.page_pool.counters()
        chunk_mark = len(self._chunks)
        try:
            with self.tracer.span("round"):
                prefill_tokens, fresh, resumed = self._admit()
                # Chunk-prefilling slots advance one bounded chunk per round;
                # a slot whose final chunk lands emits its first token here
                # (fresh) or rejoins decode immediately (resumed).
                chunk_tokens, chunk_fresh = self._advance_prefills()
                prefill_tokens += chunk_tokens
                fresh = fresh + chunk_fresh
                # Fresh admissions already produced their first token during
                # prefill; resumed slots produced nothing new, so they rejoin
                # the decode round immediately (preemption costs zero rounds).
                decoded = self._decode_round(exclude=fresh)
                results = self._retire()
        except BaseException:
            # A raised round must be atomic for still-live slots: discard
            # the chunks it streamed for them and roll the slots back to the
            # delivered prefix, so a later abort/cancel terminal lands at
            # the right index instead of double-terminating the stream.
            # Chunks of slots _retire already freed stay — their salvaged
            # results are delivered next call, as are deadline expiries
            # computed before the round: no terminal outcome is ever lost
            # to the error.
            self._rollback_round_chunks(chunk_mark)
            self._expired_stash = expired + self._expired_stash
            raise
        self._record_round(
            prefill_tokens, len(fresh), decoded, results, start, pool_before
        )
        return expired + results

    def _rollback_round_chunks(self, mark: int) -> None:
        """Undo the failed round's stream effects for still-active slots.

        A slot may have sampled its final token (emitting a chunk that
        carries ``finish_reason``) before a later phase of the same round
        raised.  The slot is still occupied, so the caller's ``abort_active``
        or ``cancel`` will emit a terminal for it — keeping the round's
        chunks would double-terminate the stream and desync its indices.
        Chunks for requests no longer in a slot (retired or expired within
        the round) are preserved.
        """
        tail = self._chunks[mark:]
        if not tail:
            return
        live = {
            slot.request.request_id: slot
            for slot in self._slots
            if slot is not None
        }
        kept = []
        dropped: Dict[str, int] = {}
        for chunk in tail:
            if chunk.request_id in live:
                if chunk.is_token:
                    dropped[chunk.request_id] = dropped.get(chunk.request_id, 0) + 1
            else:
                kept.append(chunk)
        del self._chunks[mark:]
        self._chunks.extend(kept)
        for request_id, count in dropped.items():
            slot = live[request_id]
            keep = len(slot.generated) - count
            del slot.generated[keep:]
            del slot.logprobs[keep:]
            del slot.top_logprobs[keep:]
            slot.finish_reason = None

    def _record_round(
        self,
        prefill_tokens: int,
        admitted: int,
        decoded: int,
        results: List[InferenceResult],
        start: float,
        pool_before: Dict[str, int],
    ) -> None:
        compute_seconds = self.clock() - start
        active = self.num_active + len(results)
        finish_reasons = tuple(self._pending_finishes)
        finish_classes = tuple(self._pending_finish_classes)
        finish_tenants = tuple(self._pending_finish_tenants)
        latencies = tuple(self._pending_latencies)
        latency_classes = tuple(self._pending_latency_classes)
        ttfts = tuple(self._pending_ttfts)
        ttft_classes = tuple(self._pending_ttft_classes)
        gaps = tuple(self._pending_gaps)
        proposed, accepted = self._pending_proposed, self._pending_accepted
        preempt_classes = tuple(self._pending_preempt_classes)
        self._pending_finishes = []
        self._pending_finish_classes = []
        self._pending_finish_tenants = []
        self._pending_latencies = []
        self._pending_latency_classes = []
        self._pending_ttfts = []
        self._pending_ttft_classes = []
        self._pending_gaps = []
        self._pending_proposed = 0
        self._pending_accepted = 0
        self._pending_preempt_classes = []
        if self.stats is None or not (active or finish_reasons or preempt_classes):
            return
        pool_after = self.page_pool.counters()
        slot_kv_bytes = tuple(
            slot.cache.cache_bytes if slot is not None else 0
            for slot in self._slots
        )
        self.stats.record_decode_round(
            DecodeRoundRecord(
                active_slots=active,
                num_slots=self.num_slots,
                new_tokens=prefill_tokens + admitted + decoded,
                generated_tokens=admitted + decoded,
                compute_seconds=compute_seconds,
                kv_cache_bytes=sum(slot_kv_bytes),
                kv_fp32_bytes=self.kv_fp32_bytes,
                latencies=latencies,
                pool_hits=pool_after["decode_hits"] - pool_before["decode_hits"],
                pool_misses=pool_after["decode_misses"] - pool_before["decode_misses"],
                pool_decoded_bytes_saved=(
                    pool_after["decoded_bytes_saved"]
                    - pool_before["decoded_bytes_saved"]
                ),
                prefix_pages_attached=(
                    pool_after["prefix_pages_attached"]
                    - pool_before["prefix_pages_attached"]
                ),
                shared_pages=self.page_pool.num_shared_pages,
                finish_reasons=finish_reasons,
                first_token_seconds=ttfts,
                inter_token_seconds=gaps,
                draft_proposed_tokens=proposed,
                draft_accepted_tokens=accepted,
                latency_classes=latency_classes,
                first_token_classes=ttft_classes,
                finish_classes=finish_classes,
                finish_tenants=finish_tenants,
                preempted_classes=preempt_classes,
                queue_depth=len(self._queue),
                slot_kv_bytes=slot_kv_bytes,
                pool_sealed_bytes=self.page_pool.sealed_bytes,
                pool_decoded_lru_bytes=self.page_pool.decoded_cache_bytes,
            )
        )

    def run_until_idle(self) -> List[InferenceResult]:
        """Drain queue and slots completely."""
        results: List[InferenceResult] = []
        while len(self):
            results.extend(self.step())
        return results

    # ------------------------------------------------------------------ #
    # KV accounting (across all active slots)
    # ------------------------------------------------------------------ #
    @property
    def kv_cache_bytes(self) -> int:
        """Resident KV bytes: packed sealed pages + fp32 open pages."""
        return sum(slot.cache.cache_bytes for slot in self._slots if slot is not None)

    @property
    def kv_fp32_bytes(self) -> int:
        """Bytes fp32 caches would need for the same cached tokens."""
        return sum(slot.cache.fp32_bytes for slot in self._slots if slot is not None)

    def resource_snapshot(self) -> Dict[str, object]:
        """Live resource accounting for ``health_report()`` / dashboards.

        Everything here is a point-in-time gauge read: queue depth, slot
        occupancy, resident KV bytes per slot, the shared pool's sealed vs.
        decoded-LRU footprint, and the top KV consumers (largest resident
        caches first) so the memory-pressure question "who is holding the
        bytes?" has an answer before eviction policy work needs it.
        """
        consumers = []
        for index, slot in enumerate(self._slots):
            if slot is None:
                continue
            consumers.append(
                {
                    "slot": index,
                    "request_id": slot.request.request_id,
                    "slo_class": slot.request.slo_class,
                    "tenant": slot.request.tenant,
                    "kv_bytes": slot.cache.cache_bytes,
                    "kv_fp32_bytes": slot.cache.fp32_bytes,
                    "prompt_tokens": slot.request.seq_len,
                    "generated_tokens": len(slot.generated),
                }
            )
        consumers.sort(key=lambda c: (-c["kv_bytes"], c["slot"]))
        # Queue depth broken down the way operators triage it: which SLO
        # class / priority / tenant is the backlog, not just how deep.
        by_class: Dict[str, int] = {}
        by_priority: Dict[str, int] = {}
        by_tenant: Dict[str, int] = {}
        for queued in self._queue:
            request = queued.request
            by_class[request.slo_class] = by_class.get(request.slo_class, 0) + 1
            by_tenant[request.tenant] = by_tenant.get(request.tenant, 0) + 1
            if self.admission is not None:
                prio = str(self.admission.priority_of(request))
                by_priority[prio] = by_priority.get(prio, 0) + 1
        return {
            "queue_depth": len(self._queue),
            "queue_depth_by_class": by_class,
            "queue_depth_by_priority": by_priority,
            "queue_depth_by_tenant": by_tenant,
            "active_slots": self.num_active,
            "num_slots": self.num_slots,
            "slot_occupancy": self.slot_occupancy,
            "kv_cache_bytes": self.kv_cache_bytes,
            "kv_fp32_bytes": self.kv_fp32_bytes,
            "pool": {
                "entries": self.page_pool.num_entries,
                "sealed_bytes": self.page_pool.sealed_bytes,
                "decoded_lru_bytes": self.page_pool.decoded_cache_bytes,
                "shared_pages": self.page_pool.num_shared_pages,
                "prefix_nodes": self.page_pool.num_prefix_nodes,
            },
            "top_consumers": consumers[:5],
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admit(self) -> Tuple[int, List[_Slot], List[_Slot]]:
        """Fill free slots from the queue (preempting when policy allows).

        Returns ``(prompt_tokens_prefilled, fresh_slots, resumed_slots)``.
        Each staged request first probes the page pool's prefix index for
        its token *chain* — the prompt for a fresh request, prompt plus
        already-generated tokens for a preempted one resuming — so pages
        already sealed attach copy-on-write instead of re-prefilling.
        Admissions sharing a model entry and *suffix* length (the tokens
        actually prefilled; cached pasts may differ) prefill in one batched
        incremental pass.  Prefill produces a fresh sequence's first
        generated token, so fresh slots skip this round's decode step;
        a resumed slot's prefill output is discarded (its next token was
        already emitted before eviction) and it decodes immediately.
        """
        with self.tracer.span("admit"):
            free = [index for index, slot in enumerate(self._slots) if slot is None]
            free.extend(self._preempt_for_queue(len(free)))
            staged: List[
                Tuple[int, QueuedRequest, PackedModel, Optional[tuple], np.ndarray]
            ] = []
            while free and self._queue:
                queued = self._pop_next()
                if self.tracer.enabled:
                    self.tracer.lifecycle_begin(queued.request.request_id, "prefill")
                entry = self._prepare(queued)
                if entry is not None:
                    chain = self._token_chain(queued)
                    shared = self._lookup_prefix(queued.request, chain)
                    staged.append((free.pop(0), queued, entry, shared, chain))
                elif self.tracer.enabled:
                    self.tracer.lifecycle_end(
                        queued.request.request_id, {"reason": FinishReason.ERROR}
                    )
            groups = {}
            chunk = self.prefill_chunk_tokens
            for item in staged:
                _, queued, entry, shared, chain = item
                shared_tokens = shared[0] * self.cache_config.page_size if shared else 0
                suffix_len = int(chain.size) - shared_tokens
                if chunk is not None and suffix_len > chunk:
                    # Long suffix: take the slot now but append K/V in
                    # bounded chunks over the coming rounds (_advance_prefills)
                    # instead of one monopolising pass.
                    self._stage_chunked(item, shared_tokens)
                    continue
                groups.setdefault((id(entry), suffix_len), []).append(item)
            fresh: List[_Slot] = []
            resumed: List[_Slot] = []
            for group in groups.values():
                for slot in self._prefill_group(group):
                    (resumed if slot.queued.resume is not None else fresh).append(slot)
            self.admitted += len(fresh)
            prefilled = sum(slot.prefill_tokens for slot in fresh + resumed)
            return prefilled, fresh, resumed

    def _stage_chunked(
        self,
        item: Tuple[int, QueuedRequest, PackedModel, Optional[tuple], np.ndarray],
        shared_tokens: int,
    ) -> None:
        """Occupy a slot for chunked prefill without running the model yet.

        The cache is built (shared prefix attached copy-on-write) and the
        un-appended chain suffix parks on the slot as ``pending_tokens``;
        :meth:`_advance_prefills` feeds it through the model one bounded
        chunk per round.  A resumed request restores its stream state here
        so a cancel/deadline landing mid-prefill still reports everything
        delivered before its eviction.
        """
        index, queued, entry, shared, chain = item
        try:
            cache = cache_for_model(entry.model, self.cache_config, pool=self.page_pool)
            if shared is not None:
                num_pages, layers_k, layers_v = shared
                cache.attach_prefix(
                    layers_k, layers_v, num_pages * self.cache_config.page_size
                )
        except Exception as exc:
            self._failed.append((queued.request.request_id, exc))
            if self.tracer.enabled:
                self.tracer.lifecycle_end(
                    queued.request.request_id, {"reason": FinishReason.ERROR}
                )
            return
        resume = queued.resume
        if resume is None:
            sampler = Sampler(queued.request.sampling)
            slot = _Slot(
                queued=queued,
                entry=entry,
                cache=cache,
                sampler=sampler,
                generator=sampler.make_generator(),
                shared_tokens=shared_tokens,
                pending_tokens=chain[cache.seq_len:],
                chain=chain,
            )
            self.admitted += 1
        else:
            slot = _Slot(
                queued=queued,
                entry=entry,
                cache=cache,
                sampler=resume.sampler,
                generator=resume.generator,
                generated=list(resume.generated),
                logprobs=list(resume.logprobs),
                top_logprobs=list(resume.top_logprobs),
                last_log_probs=resume.last_log_probs,
                last_token_at=resume.last_token_at,
                shared_tokens=shared_tokens,
                pending_tokens=chain[cache.seq_len:],
                chain=chain,
            )
        self._slots[index] = slot

    def _advance_prefills(self) -> Tuple[int, List[_Slot]]:
        """Feed every chunk-prefilling slot its next bounded chunk.

        Slots sharing a model entry, chunk length and finality advance in
        one batched incremental pass.  Intermediate chunks run the backbone
        only — their hidden states are never consumed, so the O(t × vocab)
        LM-head GEMM is skipped.  The final chunk runs the full
        ``last_only`` pass: the chain's pages register under the prefix
        index and a fresh request emits its first token (a resumed one
        discards the output — its next token was already delivered before
        eviction — and rejoins decode this same round).

        Returns ``(chunk_tokens_appended, fresh_slots_completed)``.
        """
        pending = [
            slot
            for slot in self._slots
            if slot is not None and slot.prefilling and not slot.done
        ]
        if not pending:
            return 0, []
        chunk = self.prefill_chunk_tokens
        groups: Dict[Tuple[int, int, bool], List[_Slot]] = {}
        for slot in pending:
            take = min(chunk, int(slot.pending_tokens.size))
            final = take == int(slot.pending_tokens.size)
            groups.setdefault((id(slot.entry), take, final), []).append(slot)
        tokens = 0
        completed_fresh: List[_Slot] = []
        with self.tracer.span("chunked_prefill"):
            for (_, take, final), slots in groups.items():
                completed, appended = self._prefill_chunk(slots, take, final)
                tokens += appended
                completed_fresh.extend(completed)
        return tokens, completed_fresh

    def _prefill_chunk(
        self, slots: List[_Slot], take: int, final: bool
    ) -> Tuple[List[_Slot], int]:
        """Run one ``take``-token chunk for ``slots`` (one batched pass).

        On a failed pass a multi-slot group retries slot by slot so one bad
        sequence cannot fail its co-batched neighbours; a single slot's
        failure frees it with a terminal ``error`` exactly like a failed
        admission prefill would have.  Returns the fresh slots whose prefill
        completed (first token emitted) and the tokens actually appended.
        """
        entry = slots[0].entry
        step_tokens = np.stack([slot.pending_tokens[:take] for slot in slots])
        caches = [slot.cache for slot in slots]
        try:
            if final:
                log_probs = entry.model.log_probs_incremental(
                    step_tokens, caches, last_only=True
                )[:, -1, :]
            else:
                entry.model.backbone.forward_incremental(step_tokens, caches)
                log_probs = None
        except Exception as exc:
            if len(slots) > 1:
                completed: List[_Slot] = []
                appended = 0
                for slot in slots:
                    done, tokens = self._prefill_chunk([slot], take, final)
                    completed.extend(done)
                    appended += tokens
                return completed, appended
            self._fail_prefilling_slot(slots[0], exc)
            return [], 0
        now = self.clock()
        completed: List[_Slot] = []
        for row, slot in enumerate(slots):
            slot.prefill_tokens += take
            if not final:
                slot.pending_tokens = slot.pending_tokens[take:]
                continue
            slot.pending_tokens = None
            if self.cache_config.prefix_sharing:
                self.page_pool.register_prefix(
                    self._prefix_key(slot.request), slot.chain, slot.cache
                )
            if slot.queued.resume is None:
                self._emit_token(slot, log_probs[row], now)
                completed.append(slot)
            if self.tracer.enabled:
                self.tracer.lifecycle_begin(
                    slot.request.request_id,
                    "decode",
                    {"resumed": True} if slot.queued.resume is not None else None,
                )
        return completed, take * len(slots)

    def _fail_prefilling_slot(self, slot: _Slot, exc: Exception) -> None:
        """Free a slot whose prefill chunk failed; the stream ends in ``error``."""
        index = self._slots.index(slot)
        self._failed.append((slot.request.request_id, exc))
        self._chunks.append(
            TokenChunk(
                request_id=slot.request.request_id,
                index=len(slot.generated),
                token_id=None,
                finish_reason=FinishReason.ERROR,
            )
        )
        self._pending_finishes.append(FinishReason.ERROR)
        self._pending_finish_classes.append(slot.request.slo_class)
        self._pending_finish_tenants.append(slot.request.tenant)
        if self.tracer.enabled:
            self.tracer.lifecycle_end(
                slot.request.request_id, {"reason": FinishReason.ERROR}
            )
        slot.cache.release()
        self._slots[index] = None

    def _pop_next(self) -> QueuedRequest:
        """Pop the next request to admit: highest priority, FIFO among ties."""
        policy = self.admission
        if policy is None:
            return self._queue.popleft()
        best_pos = 0
        best_prio = None
        for pos, queued in enumerate(self._queue):
            prio = policy.priority_of(queued.request)
            if best_prio is None or prio > best_prio:
                best_pos, best_prio = pos, prio
        queued = self._queue[best_pos]
        del self._queue[best_pos]
        return queued

    def _token_chain(self, queued: QueuedRequest) -> np.ndarray:
        """The token ids whose K/V the admitted cache must hold.

        For a fresh request that is the prompt.  For a preempted request it
        is ``prompt + generated[:-1]`` — the final generated token was
        emitted but never fed back, so its K/V does not exist yet; the
        resumed slot feeds it in its first decode round, exactly as the
        uninterrupted run would have.
        """
        resume = queued.resume
        if resume is None:
            return queued.request.token_ids
        return np.concatenate(
            [
                queued.request.token_ids,
                np.asarray(resume.generated[:-1], dtype=np.int64),
            ]
        )

    # ------------------------------------------------------------------ #
    # Preemption
    # ------------------------------------------------------------------ #
    def _preempt_for_queue(self, num_free: int) -> List[int]:
        """Evict low-priority active slots for queued higher-priority work.

        Only the queued demand that will *not* fit the free slots shops for
        victims (best-priority first), and a victim must rank strictly
        below the queued request — equal-priority traffic never preempts,
        so a saturating single-class workload cannot thrash.  Returns the
        freed slot indices.
        """
        policy = self.admission
        freed: List[int] = []
        if policy is None or not policy.preempt or not self._queue:
            return freed
        demand = sorted(
            (policy.priority_of(q.request) for q in self._queue), reverse=True
        )
        for prio in demand[num_free:]:
            victim = self._preemption_victim(prio)
            if victim is None:
                break
            self._preempt(victim)
            freed.append(victim)
        return freed

    def _preemption_victim(self, priority: int) -> Optional[int]:
        """Slot index to evict for a ``priority`` request (None when none ranks below).

        Among strictly-lower-priority active slots, picks the lowest
        priority, breaking ties toward the *youngest* (latest enqueue):
        older sequences are closer to finishing and have the most sunk
        prefill cost, so evicting the newcomer wastes the least work.
        """
        best = None
        best_key = None
        for index, slot in enumerate(self._slots):
            if slot is None:
                continue
            prio = self.admission.priority_of(slot.request)
            if prio >= priority:
                continue
            key = (prio, -slot.queued.enqueued_at)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def _preempt(self, index: int) -> None:
        """Evict one active slot and re-queue its request for resume.

        The cheap-evict path ROADMAP item 4 promised: the sequence's sealed
        pages are *already* packed OVP bytes, so registering them under the
        prefix index (taking index references) and dropping the slot costs
        no re-quantization; only the open page's rows (< page_size tokens)
        will be re-prefilled at resume.  No terminal chunk is emitted — the
        stream simply pauses and continues at the same index after resume,
        preserving the exactly-one-terminal-marker invariant.
        """
        slot = self._slots[index]
        request = slot.request
        if self.cache_config.prefix_sharing:
            if slot.prefilling:
                # Mid-chunked-prefill: only the appended (sealed-page) part
                # of the chain exists; index exactly that, so the resume
                # re-attaches it and re-prefills only the rest.
                chain = slot.chain[: slot.cache.seq_len]
            else:
                chain = np.concatenate(
                    [
                        request.token_ids,
                        np.asarray(slot.generated[:-1], dtype=np.int64),
                    ]
                )
            self.page_pool.register_prefix(self._prefix_key(request), chain, slot.cache)
        if slot.prefilling and not slot.generated:
            # A fresh request evicted before its prefill completed has
            # emitted nothing and drawn nothing from its generator: it
            # re-queues as if never admitted (the indexed pages still make
            # its next admission cheap).
            resume = None
        else:
            resume = _ResumeState(
                generated=list(slot.generated),
                logprobs=list(slot.logprobs),
                top_logprobs=list(slot.top_logprobs),
                sampler=slot.sampler,
                generator=slot.generator,
                last_log_probs=slot.last_log_probs,
                last_token_at=slot.last_token_at,
                preempted_at=self.clock(),
            )
        slot.cache.release()
        self._slots[index] = None
        self.preempted += 1
        self._pending_preempt_classes.append(request.slo_class)
        self._queue.append(
            QueuedRequest(
                request=request, enqueued_at=slot.queued.enqueued_at, resume=resume
            )
        )
        if self.tracer.enabled:
            self.tracer.lifecycle_begin(
                request.request_id,
                "queued",
                {
                    "preempted": True,
                    "tokens": len(resume.generated) if resume is not None else 0,
                },
            )

    def _prefix_key(self, request: InferenceRequest) -> tuple:
        """Prefix-index scope: one model's pages never serve another model.

        Repository models are built deterministically from (name, family,
        num_classes, bits, seed), so the request-level identity is a stable
        key even across entry rebuilds after LRU eviction.
        """
        return (
            request.model,
            request.family,
            normalized_num_classes(request.family, request.num_classes),
        )

    def _lookup_prefix(
        self, request: InferenceRequest, chain: np.ndarray
    ) -> Optional[tuple]:
        """Longest sealed-page run matching ``chain``'s page-aligned prefix.

        At least one token is always left for prefill — the model must still
        run the final position to produce the admission pass's output (and
        the batched prefill kernel needs a non-empty suffix) — so sharing is
        capped at ``(len(chain) - 1) // page_size`` pages.  For a resumed
        request the chain extends past the prompt into the generated tokens,
        so the pages its own eviction registered are found here.
        """
        if not self.cache_config.prefix_sharing:
            return None
        max_pages = (int(chain.size) - 1) // self.cache_config.page_size
        if max_pages < 1:
            return None
        found = self.page_pool.lookup_prefix(
            self._prefix_key(request),
            chain,
            self.cache_config.page_size,
            max_pages,
        )
        return found if found[0] else None

    def _prepare(self, queued: QueuedRequest) -> Optional[PackedModel]:
        """Fetch the request's model entry and validate its token budget."""
        request = queued.request
        try:
            entry = self.repository.get(request.model, request.family, request.num_classes)
            validate_token_budget(entry.model, request)
        except Exception as exc:
            self._failed.append((request.request_id, exc))
            return None
        return entry

    def abort_active(self, exc: Exception) -> List[str]:
        """Fail every in-flight sequence after an unrecoverable round error.

        Frees the slots (and their page-pool references) so the scheduler
        keeps serving later requests; returns the aborted request ids (the
        engine records the failures).  Streams of the aborted sequences end
        with a terminal ``finish_reason="error"`` marker chunk.
        """
        aborted = []
        for index, slot in enumerate(self._slots):
            if slot is None:
                continue
            self._failed.append((slot.request.request_id, exc))
            aborted.append(slot.request.request_id)
            self._chunks.append(
                TokenChunk(
                    request_id=slot.request.request_id,
                    index=len(slot.generated),
                    token_id=None,
                    finish_reason=FinishReason.ERROR,
                )
            )
            self._pending_finishes.append(FinishReason.ERROR)
            self._pending_finish_classes.append(slot.request.slo_class)
            self._pending_finish_tenants.append(slot.request.tenant)
            if self.tracer.enabled:
                self.tracer.lifecycle_end(
                    slot.request.request_id, {"reason": FinishReason.ERROR}
                )
            slot.cache.release()
            self._slots[index] = None
        if aborted:
            # The failed round never reached _record_round; flush the error
            # finishes now if no later round is coming, so the registry
            # mirror stays consistent with the summary.
            self._flush_if_idle(self.clock())
        return aborted

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, request_id: str) -> Optional[InferenceResult]:
        """Abort one request *now*; returns its ``finish_reason="aborted"`` result.

        A queued request is removed before it ever takes a slot.  An active
        sequence retires immediately: its slot frees for the next queued
        request the very next step, and its KV cache / page-pool references
        are released before this method returns (refcounts drop back to
        their pre-admission values).  Returns ``None`` when ``request_id``
        is not queued or in flight here.
        """
        now = self.clock()
        for position, queued in enumerate(self._queue):
            if queued.request.request_id == request_id:
                del self._queue[position]
                self.cancelled += 1
                result = self._aborted_result(queued, now, active=self.num_active)
                if self.tracer.enabled:
                    self.tracer.lifecycle_end(
                        request_id, {"reason": FinishReason.ABORTED}
                    )
                self._flush_if_idle(now)
                return result
        for index, slot in enumerate(self._slots):
            if slot is None or slot.request.request_id != request_id:
                continue
            result = self._finish_slot(index, slot, now, FinishReason.ABORTED)
            self.cancelled += 1
            self._flush_if_idle(now)
            return result
        return None

    def _finish_slot(
        self, index: int, slot: _Slot, now: float, reason: str
    ) -> InferenceResult:
        """Terminate an active slot *now* (cancel / deadline expiry).

        Builds the result from whatever the stream produced so far, then
        releases the KV cache and page-pool references before returning —
        the sequence's memory is reclaimable immediately, not at the next
        step — and emits the terminal marker chunk.
        """
        slot.finish_reason = reason
        result = self._build_result(slot, now, self.num_active)
        slot.cache.release()
        self._slots[index] = None
        self._pending_finishes.append(reason)
        self._pending_finish_classes.append(slot.request.slo_class)
        self._pending_finish_tenants.append(slot.request.tenant)
        self._pending_latencies.append(result.latency)
        self._pending_latency_classes.append(slot.request.slo_class)
        self._chunks.append(
            TokenChunk(
                request_id=slot.request.request_id,
                index=len(slot.generated),
                token_id=None,
                finish_reason=reason,
            )
        )
        if self.tracer.enabled:
            self.tracer.lifecycle_end(
                slot.request.request_id,
                {"reason": reason, "tokens": len(slot.generated)},
            )
        return result

    def _flush_if_idle(self, now: float) -> None:
        """Surface a cancellation to stats when no later round will.

        With traffic still queued/active the pending finish rides the next
        real round's record; emitting a synthetic zero-token round there
        would dilute occupancy and decode-round counts.  Only when the
        cancel emptied the scheduler — so no further round is coming — is
        the event recorded on its own.
        """
        if not len(self):
            self._record_round(0, 0, 0, [], now, self.page_pool.counters())

    def _aborted_result(
        self, queued: QueuedRequest, now: float, active: int
    ) -> InferenceResult:
        """Result of a request cancelled while still queued."""
        return self._queued_terminal_result(queued, now, active, FinishReason.ABORTED)

    def _queued_terminal_result(
        self, queued: QueuedRequest, now: float, active: int, reason: str
    ) -> InferenceResult:
        """Terminal result of a request that never (re)gained a slot.

        A fresh queued request has produced nothing, but a *preempted*
        request waiting to resume already streamed tokens — its terminal
        chunk continues the stream at the next index and its output carries
        everything emitted before eviction, so clients never lose delivered
        tokens to a cancel/deadline that lands mid-requeue.
        """
        request = queued.request
        resume = queued.resume
        self._pending_finishes.append(reason)
        self._pending_finish_classes.append(request.slo_class)
        self._pending_finish_tenants.append(request.tenant)
        self._pending_latencies.append(now - queued.enqueued_at)
        self._pending_latency_classes.append(request.slo_class)
        self._chunks.append(
            TokenChunk(
                request_id=request.request_id,
                index=len(resume.generated) if resume is not None else 0,
                token_id=None,
                finish_reason=reason,
            )
        )
        if resume is not None:
            top = greedy_top_k(resume.last_log_probs, request.top_k)
            output = RequestOutput(
                request_id=request.request_id,
                finish_reason=reason,
                token_ids=list(resume.generated),
                logprobs=list(resume.logprobs),
                top_logprobs=list(resume.top_logprobs),
                next_tokens=top["next_tokens"],
                log_probs=top["log_probs"],
            )
        else:
            output = RequestOutput(
                request_id=request.request_id, finish_reason=reason
            )
        return InferenceResult(
            request_id=request.request_id,
            model=request.model,
            family=request.family,
            output=output,
            batch_size=active,
            enqueued_at=queued.enqueued_at,
            completed_at=now,
        )

    # ------------------------------------------------------------------ #
    # Deadlines
    # ------------------------------------------------------------------ #
    def _expire_deadlines(self) -> List[InferenceResult]:
        """Terminate every request past its deadline or queue timeout.

        Runs at the top of :meth:`step`, before admission — an expired
        queued request must not waste a prefill, and an expired active slot
        must free before this round's admissions look for space.  Deadlines
        are end-to-end (measured from the original enqueue, spanning any
        preemption); the policy queue timeout measures *waiting* only, so a
        preempted request's wait restarts at its eviction.
        """
        now = self.clock()
        policy = self.admission
        timeout = policy.queue_timeout_s if policy is not None else None
        expired: List[InferenceResult] = []
        survivors: Deque[QueuedRequest] = deque()
        while self._queue:
            queued = self._queue.popleft()
            request = queued.request
            over_deadline = (
                request.deadline_s is not None
                and now - queued.enqueued_at >= request.deadline_s
            )
            waiting_since = (
                queued.resume.preempted_at
                if queued.resume is not None
                else queued.enqueued_at
            )
            over_timeout = timeout is not None and now - waiting_since >= timeout
            if not (over_deadline or over_timeout):
                survivors.append(queued)
                continue
            expired.append(
                self._queued_terminal_result(
                    queued, now, self.num_active, FinishReason.DEADLINE
                )
            )
            if self.tracer.enabled:
                self.tracer.lifecycle_end(
                    request.request_id, {"reason": FinishReason.DEADLINE}
                )
        self._queue = survivors
        for index, slot in enumerate(self._slots):
            if slot is None or slot.request.deadline_s is None:
                continue
            if now - slot.queued.enqueued_at >= slot.request.deadline_s:
                expired.append(
                    self._finish_slot(index, slot, now, FinishReason.DEADLINE)
                )
        self.deadline_expired += len(expired)
        return expired

    # ------------------------------------------------------------------ #
    # Token emission
    # ------------------------------------------------------------------ #
    def _emit_token(self, slot: _Slot, log_probs: np.ndarray, now: float) -> None:
        """Sample one token for ``slot``, stream it, and settle finish state."""
        sampled = slot.sampler.sample(log_probs, slot.generator)
        slot.last_log_probs = log_probs
        index = len(slot.generated)
        slot.generated.append(sampled.token_id)
        slot.logprobs.append(sampled.logprob)
        if sampled.top_logprobs:
            slot.top_logprobs.append(sampled.top_logprobs)
        if index == 0:
            self._pending_ttfts.append(now - slot.queued.enqueued_at)
            self._pending_ttft_classes.append(slot.request.slo_class)
        elif slot.last_token_at is not None:
            self._pending_gaps.append(now - slot.last_token_at)
        slot.last_token_at = now
        if slot.sampler.is_stop(sampled.token_id):
            slot.finish_reason = FinishReason.STOP
        elif len(slot.generated) >= slot.request.max_new_tokens:
            slot.finish_reason = FinishReason.LENGTH
        self._chunks.append(
            TokenChunk(
                request_id=slot.request.request_id,
                index=index,
                token_id=sampled.token_id,
                logprob=sampled.logprob,
                top_logprobs=sampled.top_logprobs,
                finish_reason=slot.finish_reason,
            )
        )

    def _prefill_group(
        self,
        group: List[
            Tuple[int, QueuedRequest, PackedModel, Optional[tuple], np.ndarray]
        ],
    ) -> List[_Slot]:
        """Prefill a same-model/same-suffix-length admission group in one pass.

        Requests with a shared-prefix hit attach the sealed pages first
        (copy-on-write references, no recompute/re-quantize), then only the
        remaining chain suffix runs through the model — each row at its own
        positional offset.  Successful prefills register their chain pages
        in the pool's prefix index for later requests.

        A resumed request restores its saved decode state instead of
        emitting the pass's output: the distribution computed at the chain's
        final position predicts a token the stream already delivered before
        eviction, so it is discarded and the slot rejoins decode feeding its
        real last token.  Re-prefilled suffix K/V is bit-identical to what
        the evicted cache held (same tokens, same attended past — the
        re-attached pages are the *same* quantized bytes), which is what
        makes resume token-identical for greedy decode.
        """
        entry = group[0][2]
        caches: List[SequenceKVCache] = []
        try:
            for _, queued, _, shared, chain in group:
                cache = cache_for_model(entry.model, self.cache_config, pool=self.page_pool)
                if shared is not None:
                    num_pages, layers_k, layers_v = shared
                    cache.attach_prefix(
                        layers_k, layers_v, num_pages * self.cache_config.page_size
                    )
                caches.append(cache)
            suffixes = np.stack(
                [
                    chain[cache.seq_len:]
                    for (_, _, _, _, chain), cache in zip(group, caches)
                ]
            )
            log_probs = entry.model.log_probs_incremental(
                suffixes, caches, last_only=True
            )[:, -1, :]
        except Exception as exc:
            # The failed pass may have partially appended K/V and holds
            # references to any attached shared pages — release them all.
            for cache in caches:
                cache.release()
            if len(group) == 1:
                self._failed.append((group[0][1].request.request_id, exc))
                if self.tracer.enabled:
                    self.tracer.lifecycle_end(
                        group[0][1].request.request_id, {"reason": FinishReason.ERROR}
                    )
                return []
            # One bad prompt (e.g. an out-of-vocabulary id) fails the batched
            # pass; retry individually with fresh caches.
            admitted = []
            for item in group:
                admitted.extend(self._prefill_group([item]))
            return admitted
        admitted = []
        now = self.clock()
        for row, (index, queued, _, shared, chain) in enumerate(group):
            if self.cache_config.prefix_sharing:
                self.page_pool.register_prefix(
                    self._prefix_key(queued.request), chain, caches[row]
                )
            shared_tokens = shared[0] * self.cache_config.page_size if shared else 0
            resume = queued.resume
            if resume is None:
                sampler = Sampler(queued.request.sampling)
                slot = _Slot(
                    queued=queued,
                    entry=entry,
                    cache=caches[row],
                    sampler=sampler,
                    generator=sampler.make_generator(),
                    prefill_tokens=int(chain.size) - shared_tokens,
                    shared_tokens=shared_tokens,
                )
                self._emit_token(slot, log_probs[row], now)
            else:
                slot = _Slot(
                    queued=queued,
                    entry=entry,
                    cache=caches[row],
                    sampler=resume.sampler,
                    generator=resume.generator,
                    generated=list(resume.generated),
                    logprobs=list(resume.logprobs),
                    top_logprobs=list(resume.top_logprobs),
                    last_log_probs=resume.last_log_probs,
                    last_token_at=resume.last_token_at,
                    prefill_tokens=int(chain.size) - shared_tokens,
                    shared_tokens=shared_tokens,
                )
            if self.tracer.enabled:
                self.tracer.lifecycle_begin(
                    queued.request.request_id,
                    "decode",
                    {"resumed": True} if resume is not None else None,
                )
            self._slots[index] = slot
            admitted.append(slot)
        return admitted

    def _decode_round(self, exclude: List[_Slot]) -> int:
        """One batched incremental step for every unfinished slot.

        With speculation enabled, each slot first gets a (possibly empty)
        draft proposal; slots sharing a model entry and proposal depth
        verify all their ``k + 1`` positions in one batched multi-token
        pass, while un-proposed slots advance one token exactly as before —
        speculative and plain slots mix freely in the same round.
        """
        skip = {id(slot) for slot in exclude}
        active = [
            slot
            for slot in self._slots
            if slot is not None
            and not slot.done
            and not slot.prefilling
            and id(slot) not in skip
        ]
        if not active:
            return 0
        # All zoo LMs of one model name share the entry object, but a round
        # may mix models; group so each batched forward uses one model.
        by_entry = {}
        for slot in active:
            by_entry.setdefault(id(slot.entry), []).append(slot)
        decoded = 0
        for slots in by_entry.values():
            proposals = self._plan_speculation(slots)
            if any(proposals):
                decoded += self._verify_round(slots, proposals)
            else:
                # No slot speculates this round: the classic single-token
                # path, numerically untouched.  Extra micro-rounds amortise
                # the per-step bookkeeping over several batched passes;
                # finished slots drop out between micro-iterations.
                decoded += self._plain_round(slots)
                for _ in range(self.decode_micro_rounds - 1):
                    alive = [slot for slot in slots if not slot.done]
                    if not alive:
                        break
                    decoded += self._plain_round(alive)
        return decoded

    def _plain_round(self, slots: List[_Slot]) -> int:
        """Advance ``slots`` one token in a single batched incremental pass."""
        tracer = self.tracer
        with tracer.span("plain_round"):
            step_tokens = np.array(
                [[slot.generated[-1]] for slot in slots], dtype=np.int64
            )
            caches = [slot.cache for slot in slots]
            log_probs = slots[0].entry.model.log_probs_incremental(
                step_tokens,
                caches,
                tracer=tracer if tracer.enabled else None,
                scratch=self._round_scratch,
            )
            now = self.clock()
            with tracer.span("sample"):
                for row, slot in enumerate(slots):
                    self._emit_token(slot, log_probs[row, -1], now)
            return len(slots)

    def _plan_speculation(self, slots: List[_Slot]) -> List[List[int]]:
        """Draft proposals for one entry group (all empty when not speculating).

        Each slot's proposal depth is capped so a fully accepted round —
        ``k`` drafts plus the bonus token — never overruns the request's
        ``max_new_tokens`` (which also keeps the verify pass inside the
        positional budget the admission check validated).

        Quantized caches add a page-boundary cap: a slot's *kept* verify
        tokens must not complete a KV page under deferred seals, because
        eager plain decode attends a page quantized from the moment it
        seals, while the deferred window sees its own in-flight rows in
        full precision.  Speculation therefore stops one token short of
        every boundary; the boundary token itself still rides the verify
        batch, just with eager sealing (see ``_verify_batch``), keeping
        speculative greedy decode token-for-token identical to the
        non-speculative path.
        """
        if self.spec is None:
            return [[] for _ in slots]
        cap = self.spec.config.num_speculative_tokens
        page_size = self.cache_config.page_size
        max_tokens = []
        for slot in slots:
            if slot.prefilling or not slot.generated:
                # A slot mid-chunked-prefill has no emitted token to extend
                # and its cache holds only a prompt prefix: it must neither
                # receive draft proposals nor join a verify batch.  The
                # round loop already filters prefilling slots, but plan()
                # would otherwise read slot.generated[-1] after paying the
                # calibration cost — guard here so every caller is safe.
                max_tokens.append(0)
                continue
            depth = min(
                cap, slot.request.max_new_tokens - len(slot.generated) - 1
            )
            if self.cache_config.quantize:
                room = page_size - 1 - slot.cache.seq_len % page_size
                depth = min(depth, room - 1)
            max_tokens.append(depth)
        with self.tracer.span("draft_propose"):
            return self.spec.plan(slots, max_tokens)

    def _verify_round(self, slots: List[_Slot], proposals: List[List[int]]) -> int:
        """Verify one entry group's proposals in as few target passes as possible.

        Proposal depths are ragged, but per-depth sub-passes would fragment
        the round into several tiny forwards, wasting the batching the
        scheduler exists to provide.  Instead every slot's verify row pads to
        the group's deepest proposal (repeating its last token): the padded
        positions ride the same batched pass, their log-probs are simply
        never consumed, and their K/V roll back with the rejected suffix.
        Un-proposed slots join the same pass as plain one-token rows.  Only
        a slot whose positional table cannot absorb the padding (possible
        right at the context limit) drops to an exact-depth sub-pass.
        """
        entry = slots[0].entry
        max_positions = getattr(
            getattr(entry.model, "config", None), "max_positions", None
        )
        page_size = self.cache_config.page_size
        width = 1 + max(len(proposal) for proposal in proposals)
        padded: List[Tuple[_Slot, List[int]]] = []
        leftover: Dict[int, List[Tuple[_Slot, List[int]]]] = {}
        eager: List[_Slot] = []
        for slot, proposal in zip(slots, proposals):
            at_boundary = (
                self.cache_config.quantize
                and slot.cache.seq_len % page_size == page_size - 1
            )
            if at_boundary and width > page_size:
                # Padding would spill past the fresh page and seal garbage;
                # only possible when page_size < k + 1.  Decode plainly.
                eager.append(slot)
            elif max_positions is None or slot.cache.seq_len + width <= max_positions:
                padded.append((slot, proposal))
            else:
                leftover.setdefault(len(proposal), []).append((slot, proposal))
        emitted = 0
        if eager:
            emitted += self._plain_round(eager)
        if padded:
            emitted += self._verify_batch(entry, padded, width)
        for depth, group in sorted(leftover.items()):
            emitted += self._verify_batch(entry, group, depth + 1)
        return emitted

    def _verify_batch(
        self, entry: PackedModel, group: List[Tuple[_Slot, List[int]]], width: int
    ) -> int:
        """One batched ``width``-token verify pass over ``group``.

        Feeds ``[last_token, d_1 … d_k, pad…]`` per slot through the
        multi-token round kernel (seals deferred so the rollback below is
        exact), then samples each verified position with the slot's own
        sampler: the sampled token is always emitted, and the row keeps
        consuming positions while the sample matches the draft's proposal —
        ending with a correction, the post-acceptance bonus token, or the
        stop/length finish.  The rejected (and padded) suffix of the
        optimistic K/V append rolls back with ``truncate_to``; pool-shared
        sealed pages stay untouched.
        """
        tracer = self.tracer
        page_size = self.cache_config.page_size
        rows = []
        for slot, proposal in group:
            fed = [slot.generated[-1], *proposal]
            fed.extend(fed[-1:] * (width - len(fed)))
            rows.append(fed)
        step_tokens = np.array(rows, dtype=np.int64)
        caches = [slot.cache for slot, _ in group]
        base_lengths = [cache.seq_len for cache in caches]
        with tracer.span(
            "verify_batch",
            attrs={"slots": len(group), "width": width} if tracer.enabled else None,
        ):
            for (slot, proposal), cache in zip(group, caches):
                # A slot whose next token completes a KV page must seal it
                # *during the append* — eager plain decode attends a
                # just-sealed page quantized, and deferring the seal would
                # attend it in full precision and could emit a different
                # token.  Such a slot never carries proposals (the
                # page-boundary cap in _plan_speculation zeroed them), so its
                # only consumed row seals exactly the boundary page from
                # correct rows, the padding lands in the fresh open page, and
                # the rollback below drops it without reopening anything.
                # Every other slot defers seals so the rejected-suffix
                # rollback is exact.
                boundary = (
                    self.cache_config.quantize
                    and not proposal
                    and cache.seq_len % page_size == page_size - 1
                    and width <= page_size
                )
                if not boundary:
                    cache.hold_seals()
            log_probs = entry.model.log_probs_incremental(
                step_tokens,
                caches,
                batched_rounds=True,
                tracer=tracer if tracer.enabled else None,
                scratch=self._round_scratch,
            )
            now = self.clock()
            emitted_total = 0
            with tracer.span("sample"):
                for row, (slot, proposal) in enumerate(group):
                    emitted = 0
                    accepted = 0
                    for position in range(len(proposal) + 1):
                        self._emit_token(slot, log_probs[row, position], now)
                        emitted += 1
                        matched = (
                            position < len(proposal)
                            and slot.generated[-1] == proposal[position]
                        )
                        if matched:
                            accepted += 1
                        if slot.done or not matched:
                            break
                    with tracer.span("kv_rollback"):
                        slot.cache.truncate_to(base_lengths[row] + emitted)
                        slot.cache.flush_seals()
                    self._pending_proposed += len(proposal)
                    self._pending_accepted += accepted
                    emitted_total += emitted
            return emitted_total

    def _build_result(
        self, slot: _Slot, completed_at: float, occupancy_now: int
    ) -> InferenceResult:
        """Assemble the typed output of a finished (or cancelled) slot."""
        request = slot.request
        if slot.last_log_probs is None:
            # Terminated mid-chunked-prefill: no position was ever scored,
            # so there is no final distribution to report candidates from.
            top = {"next_tokens": [], "log_probs": []}
        else:
            top = greedy_top_k(slot.last_log_probs, request.top_k)
        kv_summary = slot.cache.memory_summary()
        kv_summary["prefix_shared_tokens"] = slot.shared_tokens
        output = RequestOutput(
            request_id=request.request_id,
            finish_reason=slot.finish_reason,
            token_ids=list(slot.generated),
            logprobs=list(slot.logprobs),
            top_logprobs=list(slot.top_logprobs),
            next_tokens=top["next_tokens"],
            log_probs=top["log_probs"],
            kv_cache=kv_summary,
        )
        return InferenceResult(
            request_id=request.request_id,
            model=request.model,
            family=request.family,
            output=output,
            batch_size=occupancy_now,
            enqueued_at=slot.queued.enqueued_at,
            completed_at=completed_at,
            scheme=slot.entry.scheme,
        )

    def _register_generated_suffix(self, slot: _Slot) -> None:
        """Index the pages sealed during decode under ``prompt + generated``.

        The final generated token is returned but never fed back through the
        model, so the cache holds ``prompt + generated[:-1]`` — exactly the
        token chain a follow-up conversation turn re-submits as its prompt.
        Guarded by ``share_generated_suffix`` (and the config's
        ``prefix_sharing``); indexed pages take prefix-index references, so
        they outlive this sequence's retirement.
        """
        if not (self.share_generated_suffix and self.cache_config.prefix_sharing):
            return
        chain = np.concatenate(
            [
                slot.request.token_ids,
                np.asarray(slot.generated[:-1], dtype=np.int64),
            ]
        )
        self.page_pool.register_prefix(
            self._prefix_key(slot.request), chain, slot.cache
        )

    def _retire(self) -> List[InferenceResult]:
        """Free slots whose sequences finished (stop token or token budget)."""
        with self.tracer.span("retire"):
            completed_at = self.clock()
            results: List[InferenceResult] = []
            occupancy_now = self.num_active
            try:
                for index, slot in enumerate(self._slots):
                    if slot is None or not slot.done:
                        continue
                    results.append(
                        self._build_result(slot, completed_at, occupancy_now)
                    )
                    self._pending_finishes.append(slot.finish_reason)
                    self._pending_finish_classes.append(slot.request.slo_class)
                    self._pending_finish_tenants.append(slot.request.tenant)
                    self._pending_latencies.append(results[-1].latency)
                    self._pending_latency_classes.append(slot.request.slo_class)
                    self._register_generated_suffix(slot)
                    if self.tracer.enabled:
                        self.tracer.lifecycle_end(
                            slot.request.request_id,
                            {
                                "reason": slot.finish_reason,
                                "tokens": len(slot.generated),
                            },
                        )
                    # Retirement releases the sequence's page references;
                    # pages kept alive by the prefix index go on serving
                    # later requests.
                    slot.cache.release()
                    self._slots[index] = None
                    self.retired += 1
            except BaseException:
                # Slots freed before the raise already released their pages
                # and left the slot table; losing the local list would erase
                # their terminal outcome.  Stash the completed results so
                # the next step() delivers them.
                self._expired_stash.extend(results)
                raise
            return results
