"""Dynamic micro-batching of inference requests.

The batcher coalesces queued requests into batches of up to
``max_batch_size``, never mixing requests with different
:attr:`~repro.serve.requests.InferenceRequest.batch_key` values (different
models, workload families or sequence lengths cannot share a forward pass).
A partially filled group is released once its oldest request has waited
``max_wait`` seconds — the classic latency/throughput dial of dynamic
batching servers.

The batcher is synchronous and clock-injectable: the scheduler (or a test)
decides when time advances and when batches are taken.  The asyncio front-end
in :mod:`repro.serve.aio` drives the same object from an event loop.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.serve.errors import QueueFullError
from repro.serve.requests import InferenceRequest, ServingError

__all__ = ["QueuedRequest", "MicroBatcher"]


@dataclass
class QueuedRequest:
    """A request plus its enqueue timestamp (for latency accounting).

    ``resume`` is ``None`` for fresh submissions; the continuous-batching
    scheduler re-queues a preempted request with its saved decode state
    attached so admission can restore the slot instead of restarting it.
    """

    request: InferenceRequest
    enqueued_at: float
    resume: object = None


class MicroBatcher:
    """Coalesce requests into homogeneous micro-batches.

    Parameters
    ----------
    max_batch_size:
        Largest batch released to the engine.
    max_wait:
        Seconds a partially filled batch may wait for company before it is
        released anyway.
    clock:
        Monotonic time source; injectable for deterministic tests.
    max_queue_depth:
        Total queued requests (across all groups) past which :meth:`submit`
        raises :class:`~repro.serve.errors.QueueFullError` instead of
        growing the queue.  ``None`` (the default) keeps the pre-admission
        unbounded behaviour.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if max_wait < 0:
            raise ServingError("max_wait must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServingError("max_queue_depth must be >= 1 when set")
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self.clock = clock
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self._queues: "OrderedDict[Tuple, Deque[QueuedRequest]]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Enqueue
    # ------------------------------------------------------------------ #
    def submit(self, request: InferenceRequest) -> QueuedRequest:
        """Queue one request and return its queue record.

        Raises :class:`~repro.serve.errors.QueueFullError` when a
        ``max_queue_depth`` bound is configured and already met.
        """
        queued = QueuedRequest(request=request, enqueued_at=self.clock())
        with self._lock:
            if self.max_queue_depth is not None:
                depth = sum(len(q) for q in self._queues.values())
                if depth >= self.max_queue_depth:
                    raise QueueFullError(
                        f"micro-batcher queue full "
                        f"({depth}/{self.max_queue_depth}); "
                        f"rejecting {request.request_id!r}"
                    )
            self._queues.setdefault(request.batch_key, deque()).append(queued)
        return queued

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def cancel(self, request_id: str) -> Optional[QueuedRequest]:
        """Remove a still-queued request; returns its record (None if absent).

        A request already released in a batch cannot be cancelled here — the
        forward pass is not interruptible mid-GEMM.
        """
        with self._lock:
            for key, queue in self._queues.items():
                for position, queued in enumerate(queue):
                    if queued.request.request_id == request_id:
                        del queue[position]
                        if not queue:
                            del self._queues[key]
                        return queued
        return None

    @property
    def num_groups(self) -> int:
        """Number of distinct batch keys currently queued."""
        with self._lock:
            return len(self._queues)

    def queue_depths(self) -> Dict[Tuple, int]:
        """Snapshot of per-group queue depths."""
        with self._lock:
            return {key: len(q) for key, q in self._queues.items()}

    # ------------------------------------------------------------------ #
    # Dequeue
    # ------------------------------------------------------------------ #
    def next_batch(self, force: bool = False) -> Optional[List[QueuedRequest]]:
        """Release the next ready batch, oldest-request first.

        A group is *ready* when it holds ``max_batch_size`` requests or its
        oldest request has waited ``max_wait`` seconds.  With ``force=True``
        any non-empty group is ready (used to drain the queue at shutdown or
        in strictly synchronous serving loops).
        """
        now = self.clock()
        with self._lock:
            candidate_key = None
            candidate_age = -1.0
            for key, queue in self._queues.items():
                if not queue:
                    continue
                age = now - queue[0].enqueued_at
                ready = force or len(queue) >= self.max_batch_size or age >= self.max_wait
                if ready and age > candidate_age:
                    candidate_key = key
                    candidate_age = age
            if candidate_key is None:
                return None
            queue = self._queues[candidate_key]
            batch = [queue.popleft() for _ in range(min(self.max_batch_size, len(queue)))]
            if not queue:
                del self._queues[candidate_key]
            return batch

    def next_wait(self) -> Optional[float]:
        """Seconds until the oldest queued request hits ``max_wait`` (None if empty).

        Returns 0.0 when a batch is already ready.  The asyncio front-end
        sleeps exactly this long between scheduling passes.
        """
        now = self.clock()
        with self._lock:
            best: Optional[float] = None
            for queue in self._queues.values():
                if not queue:
                    continue
                if len(queue) >= self.max_batch_size:
                    return 0.0
                remaining = self.max_wait - (now - queue[0].enqueued_at)
                if remaining <= 0:
                    return 0.0
                if best is None or remaining < best:
                    best = remaining
            return best

    def drain(self) -> List[List[QueuedRequest]]:
        """Release every queued request as a list of forced batches."""
        batches: List[List[QueuedRequest]] = []
        while True:
            batch = self.next_batch(force=True)
            if batch is None:
                return batches
            batches.append(batch)
