"""Serving-subsystem errors.

``ServingError`` historically lived in :mod:`repro.serve.requests`; it moved
here so the bottom-of-stack modules (:mod:`repro.serve.sampling`) can raise it
without importing the request types that themselves depend on the sampling
surface.  :mod:`repro.serve.requests` re-exports it, so existing imports keep
working.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["ServingError"]


class ServingError(ReproError):
    """Raised for malformed requests or serving-engine misuse."""
