"""Serving-subsystem errors.

``ServingError`` historically lived in :mod:`repro.serve.requests`; it moved
here so the bottom-of-stack modules (:mod:`repro.serve.sampling`) can raise it
without importing the request types that themselves depend on the sampling
surface.  :mod:`repro.serve.requests` re-exports it, so existing imports keep
working.

The resilience layer splits serving failures into a *retryable/terminal*
taxonomy.  ``ServingError`` itself (and every subclass not marked retryable)
is **terminal**: retrying the identical request cannot help — the request is
malformed, the model unknown, the API misused.  ``RetryableServingError``
marks failures a client (or the :class:`~repro.serve.aio.AsyncServer` retry
policy) may reasonably retry after backing off:

* :class:`QueueFullError` — a bounded admission queue rejected the request;
  capacity frees as in-flight sequences retire;
* :class:`AdmissionRejectedError` — the shed-on-burn-rate admission policy
  rejected a low-priority request while an SLO burn-rate alert fires;
* :class:`InjectedFault` — a deterministic fault from
  :mod:`repro.serve.faultinject`, modelling the transient round errors
  (allocator hiccups, cache-decode failures) real serving fleets retry;
* :class:`RateLimitedError` / :class:`QuotaExceededError` — the gateway's
  per-tenant token bucket ran dry / the tenant's concurrent-request quota is
  full; both clear as time passes or in-flight requests finish.

:class:`AuthenticationError` (unknown or wrong tenant API key) is terminal:
resending the same bad credential can never succeed.

Use :func:`is_retryable` rather than ``isinstance`` checks so call sites
survive taxonomy growth.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "AdmissionRejectedError",
    "AuthenticationError",
    "InjectedFault",
    "QueueFullError",
    "QuotaExceededError",
    "RateLimitedError",
    "RetryableServingError",
    "ServingError",
    "is_retryable",
]


class ServingError(ReproError):
    """Raised for malformed requests or serving-engine misuse (terminal)."""


class RetryableServingError(ServingError):
    """A transient serving failure; the identical request may be retried."""


class QueueFullError(RetryableServingError):
    """A bounded admission queue is at capacity; retry after backoff."""


class AdmissionRejectedError(RetryableServingError):
    """Admission control shed this request (e.g. burn-rate alert firing)."""


class InjectedFault(RetryableServingError):
    """A deterministic fault injected by :mod:`repro.serve.faultinject`."""


class AuthenticationError(ServingError):
    """The gateway rejected the request's tenant API key (terminal)."""


class RateLimitedError(RetryableServingError):
    """The tenant's token-bucket rate limit ran dry; retry after backoff."""


class QuotaExceededError(RetryableServingError):
    """The tenant's concurrent-request quota is full; retry as work drains."""


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` models a transient failure worth retrying."""
    return isinstance(exc, RetryableServingError)
