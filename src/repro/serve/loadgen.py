"""Trace-driven multi-tenant load generation for the serving gateway.

Benchmarking a multi-tenant gateway needs load that is *realistic* (bursty
arrivals, mixed tenants, multi-turn conversations that re-walk shared
prefixes) yet *replayable* — the same trace must produce the same schedule,
the same admissions, and byte-identical reports, or an overload regression
cannot be told apart from luck.  This module provides both halves:

``TraceConfig`` / ``generate_trace``
    A seeded generator.  Each :class:`TenantLoad` describes one tenant's
    traffic shape: mean arrivals per round, an on/off burst modulation
    (``burst_factor`` during bursts, idle otherwise), prompt/output length
    ranges, and multi-turn conversations (``turns_range``) whose follow-up
    turns *continue the previous prompt + its generated tokens* — exactly
    the shape the prefix-sharing cache accelerates.  The same
    ``TraceConfig`` always yields the same :class:`TraceEvent` list.

``save_trace`` / ``load_trace``
    The trace file format: one JSON object per event, sorted keys, so a
    trace recorded on one machine replays bit-for-bit on another.

``LoadRunner``
    The replay engine.  Time is **virtual rounds**: each round advances an
    injected :class:`VirtualClock` by ``seconds_per_round``, submits the
    events due that round through :meth:`Gateway.submit
    <repro.serve.gateway.Gateway.submit>`, then drives one
    ``gateway.step(force=True)``.  Turn *n > 0* of a conversation is
    scheduled ``think_rounds`` after turn *n-1* settles, with its prompt
    composed from the settled turn's prompt + generated tokens + the
    trace's new tokens.  Because everything — clock, arrivals, engine — is
    deterministic, :meth:`LoadRunner.report` (per-tenant counts, latencies
    and SLO attainment, serialized with sorted keys) is byte-identical
    across runs of the same trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.errors import ServingError
from repro.serve.requests import InferenceRequest, WorkloadFamily

__all__ = [
    "TenantLoad",
    "TraceConfig",
    "TraceEvent",
    "VirtualClock",
    "generate_trace",
    "save_trace",
    "load_trace",
    "LoadRunner",
]


class VirtualClock:
    """A settable clock: inject into the engine, advance from the runner."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = float(start)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ServingError("VirtualClock cannot run backwards")
        self.t += dt
        return self.t


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic shape inside a :class:`TraceConfig`.

    ``arrivals_per_round`` is the mean Poisson rate while the tenant is in
    a burst; outside bursts the tenant is idle.  ``burst_rounds`` /
    ``idle_rounds`` set the mean on/off dwell times (geometric), so
    ``burst_rounds=None`` means always-on (no modulation).  Conversations
    draw ``turns_range`` turns; follow-up turns reuse the previous turn's
    full token stream as their prefix and arrive ``think_rounds`` after it
    finishes.
    """

    name: str
    arrivals_per_round: float = 0.5
    burst_rounds: Optional[int] = None
    idle_rounds: int = 4
    prompt_tokens: Tuple[int, int] = (8, 24)
    max_new_tokens: int = 4
    turns_range: Tuple[int, int] = (1, 1)
    think_rounds: int = 1
    vocab: int = 96

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("TenantLoad.name must be non-empty")
        if self.arrivals_per_round <= 0:
            raise ServingError("arrivals_per_round must be positive")
        lo, hi = self.prompt_tokens
        if lo < 1 or hi < lo:
            raise ServingError("prompt_tokens must be a (lo, hi) range, lo >= 1")
        lo, hi = self.turns_range
        if lo < 1 or hi < lo:
            raise ServingError("turns_range must be a (lo, hi) range, lo >= 1")
        if self.max_new_tokens < 1:
            raise ServingError("max_new_tokens must be >= 1")


@dataclass(frozen=True)
class TraceConfig:
    """What :func:`generate_trace` needs: tenants, horizon, seed."""

    tenants: Tuple[TenantLoad, ...]
    rounds: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServingError("TraceConfig needs at least one tenant")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.rounds < 1:
            raise ServingError("rounds must be >= 1")


@dataclass(frozen=True)
class TraceEvent:
    """One request in a trace.

    Turn 0 arrives at ``round``; turn *n > 0* arrives ``think_rounds``
    rounds after turn *n-1* of the same ``conversation`` settles (its
    ``round`` records the opening turn's arrival for bookkeeping).
    ``new_tokens`` are the tokens this turn *appends*; the runner prefixes
    them with the conversation's accumulated stream.
    """

    round: int
    tenant: str
    conversation: str
    turn: int
    new_tokens: Tuple[int, ...]
    max_new_tokens: int
    think_rounds: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "tenant": self.tenant,
            "conversation": self.conversation,
            "turn": self.turn,
            "new_tokens": list(self.new_tokens),
            "max_new_tokens": self.max_new_tokens,
            "think_rounds": self.think_rounds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            round=int(data["round"]),
            tenant=str(data["tenant"]),
            conversation=str(data["conversation"]),
            turn=int(data["turn"]),
            new_tokens=tuple(int(t) for t in data["new_tokens"]),
            max_new_tokens=int(data["max_new_tokens"]),
            think_rounds=int(data.get("think_rounds", 1)),
        )


def generate_trace(config: TraceConfig) -> List[TraceEvent]:
    """The deterministic event list ``config`` describes.

    Each tenant gets its own child RNG stream (seeded from
    ``config.seed`` and the tenant's position), so adding a tenant to the
    mix never perturbs the others' schedules.
    """
    events: List[TraceEvent] = []
    for index, tenant in enumerate(config.tenants):
        rng = np.random.default_rng((config.seed, index))
        bursting = tenant.burst_rounds is None or bool(rng.integers(0, 2))
        conversations = 0
        for rnd in range(config.rounds):
            if tenant.burst_rounds is not None:
                # Geometric on/off dwell: flip with probability 1/mean.
                flip = 1.0 / (
                    tenant.burst_rounds if bursting else tenant.idle_rounds
                )
                if rng.random() < flip:
                    bursting = not bursting
            arrivals = (
                int(rng.poisson(tenant.arrivals_per_round)) if bursting else 0
            )
            for _ in range(arrivals):
                conversations += 1
                conv = f"{tenant.name}/c{conversations:04d}"
                turns = int(rng.integers(tenant.turns_range[0],
                                         tenant.turns_range[1] + 1))
                for turn in range(turns):
                    length = int(rng.integers(tenant.prompt_tokens[0],
                                              tenant.prompt_tokens[1] + 1))
                    tokens = tuple(
                        int(t)
                        for t in rng.integers(0, tenant.vocab, size=length)
                    )
                    events.append(TraceEvent(
                        round=rnd,
                        tenant=tenant.name,
                        conversation=conv,
                        turn=turn,
                        new_tokens=tokens,
                        max_new_tokens=tenant.max_new_tokens,
                        think_rounds=tenant.think_rounds,
                    ))
    # Stable order: by arrival round, then tenant, conversation, turn.
    events.sort(key=lambda e: (e.round, e.tenant, e.conversation, e.turn))
    return events


def save_trace(events: List[TraceEvent], path: str) -> None:
    """Write ``events`` as replayable JSON-lines (sorted keys)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")


def load_trace(path: str) -> List[TraceEvent]:
    """Read a trace written by :func:`save_trace`."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


@dataclass
class _Conversation:
    """Replay state of one conversation: its stream and queued turns."""

    stream: Tuple[int, ...] = ()            # prompt + generated so far
    next_turn: int = 0
    queued: List[TraceEvent] = field(default_factory=list)
    inflight_request: Optional[str] = None


class LoadRunner:
    """Replay a trace against a gateway on a virtual-round clock.

    Parameters
    ----------
    gateway:
        The :class:`~repro.serve.gateway.Gateway` under load.  Its engine
        **must** run on the ``clock`` passed here, or rate limits and SLO
        measurements drift off the virtual schedule.
    clock:
        The shared :class:`VirtualClock`.
    api_keys:
        Tenant name → API key (defaults to the keys in the gateway's own
        config, which is what benchmarks want; pass explicitly to model a
        client using the wrong key).
    model:
        Model name each request targets.
    seconds_per_round:
        Virtual seconds one round advances the clock.
    """

    def __init__(
        self,
        gateway,
        clock: VirtualClock,
        api_keys: Optional[Dict[str, str]] = None,
        model: str = "gpt2-xl",
        seconds_per_round: float = 0.05,
    ) -> None:
        self.gateway = gateway
        self.clock = clock
        self.model = model
        self.seconds_per_round = float(seconds_per_round)
        if api_keys is None:
            api_keys = {t.name: t.api_key for t in gateway.config.tenants}
        self.api_keys = dict(api_keys)
        self._conversations: Dict[str, _Conversation] = {}
        self._schedule: Dict[int, List[Tuple[str, TraceEvent]]] = {}
        self._request_conv: Dict[str, str] = {}
        self._counts: Dict[str, Dict[str, int]] = {}
        self._latencies: Dict[str, List[float]] = {}
        self.round = 0

    # ------------------------------------------------------------------ #
    def _count(self, tenant: str, what: str) -> None:
        per = self._counts.setdefault(
            tenant,
            {"submitted": 0, "accepted": 0, "rejected": 0, "completed": 0,
             "failed": 0},
        )
        per[what] = per.get(what, 0) + 1

    def _submit_event(self, event: TraceEvent) -> None:
        conv = self._conversations.setdefault(event.conversation,
                                              _Conversation())
        tokens = conv.stream + event.new_tokens
        request = InferenceRequest(
            model=self.model,
            family=WorkloadFamily.LM,
            token_ids=np.asarray(tokens, dtype=np.int64),
            max_new_tokens=event.max_new_tokens,
            request_id=f"{event.conversation}/t{event.turn}",
        )
        self._count(event.tenant, "submitted")
        envelope = self.gateway.submit(self.api_keys[event.tenant], request)
        if envelope.status == 202:
            self._count(event.tenant, "accepted")
            conv.stream = tokens
            conv.inflight_request = request.request_id
            self._request_conv[request.request_id] = event.conversation
        else:
            self._count(event.tenant, "rejected")
            # The conversation's later turns still replay (prefix unchanged).
            self._advance_conversation(event.conversation, self.round)

    def _advance_conversation(self, name: str, settle_round: int) -> None:
        conv = self._conversations[name]
        conv.next_turn += 1
        conv.inflight_request = None
        if conv.queued and conv.queued[0].turn == conv.next_turn:
            event = conv.queued.pop(0)
            due = settle_round + event.think_rounds
            self._schedule.setdefault(due, []).append((event.tenant, event))

    def _settle(self, envelopes) -> None:
        for envelope in envelopes:
            conv_name = self._request_conv.pop(envelope.request_id, None)
            if conv_name is None:
                continue
            tenant = envelope.tenant or "-"
            if envelope.status == 200:
                self._count(tenant, "completed")
                conv = self._conversations[conv_name]
                generated = tuple(
                    int(t) for t in envelope.body.get("token_ids", [])
                )
                conv.stream = conv.stream + generated
                self._latencies.setdefault(tenant, []).append(
                    float(envelope.body.get("latency_s", 0.0))
                )
            else:
                self._count(tenant, "failed")
            self._advance_conversation(conv_name, self.round)

    # ------------------------------------------------------------------ #
    def run(self, events: List[TraceEvent], max_rounds: int = 100_000) -> None:
        """Replay ``events`` to completion (arrivals, then drain)."""
        for event in events:
            if event.turn == 0:
                self._schedule.setdefault(event.round, []).append(
                    (event.tenant, event)
                )
            else:
                conv = self._conversations.setdefault(event.conversation,
                                                      _Conversation())
                conv.queued.append(event)
        for conv in self._conversations.values():
            conv.queued.sort(key=lambda e: e.turn)
        horizon = max((e.round for e in events), default=0)
        rounds = 0
        while (self._schedule or self._request_conv
               or self.round <= horizon):
            due = self._schedule.pop(self.round, [])
            for _, event in sorted(
                due, key=lambda pair: (pair[0], pair[1].conversation,
                                       pair[1].turn)
            ):
                self._submit_event(event)
            self._settle(self.gateway.step(force=True))
            self.clock.advance(self.seconds_per_round)
            self.round += 1
            rounds += 1
            if rounds >= max_rounds:
                raise ServingError(
                    f"trace did not drain within {max_rounds} rounds"
                )

    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, Any]:
        """Per-tenant counts, latency stats, and SLO attainment."""
        monitor = getattr(self.gateway.engine, "health", None)
        slo: Dict[str, Any] = {}
        if monitor is not None:
            monitor.evaluate()
            slo = monitor.report()["slo"]
        tenants: Dict[str, Any] = {}
        for tenant in sorted(self._counts):
            latencies = sorted(self._latencies.get(tenant, []))
            entry: Dict[str, Any] = dict(self._counts[tenant])
            if latencies:
                entry["latency_mean_s"] = round(
                    sum(latencies) / len(latencies), 9
                )
                entry["latency_p95_s"] = round(
                    latencies[min(len(latencies) - 1,
                                  int(0.95 * len(latencies)))], 9
                )
            cfg = self.gateway._by_name.get(tenant)
            if cfg is not None and cfg.slo_class in slo:
                entry["slo"] = {
                    objective: {
                        "attainment": values["attainment"],
                        "target": values["target"],
                    }
                    for objective, values in slo[cfg.slo_class].items()
                }
            tenants[tenant] = entry
        return {"rounds": self.round, "tenants": tenants}

    def report_json(self) -> str:
        """The report serialized byte-identically across runs."""
        return json.dumps(self.report(), sort_keys=True, indent=2) + "\n"
