"""Deterministic fault injection for the serving stack.

Chaos testing only earns its keep when a failing schedule can be replayed
byte-for-byte, so everything here is seeded and counter-driven: a
:class:`FaultSchedule` is a plain list of :class:`FaultSpec` triggers
("raise at the 3rd ``round`` span", "jump the clock 2s at the 2nd
``admit``", "burst 4 extra submissions at round 5"), either written by
hand or generated from a seed, and a :class:`FaultInjector` arms it
against a live :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`
through the seams the scheduler already exposes:

* the **tracer** — every phase the scheduler enters goes through
  ``tracer.span(name)``, so wrapping the tracer gives a precise,
  zero-new-hooks injection point for phase errors and clock jumps;
* the **clock** — the scheduler reads ``self.clock()`` for every
  timestamp, so a wrapped clock with a forward-only offset simulates
  stalls and deadline pressure without sleeping;
* the **page pool** — ``decoded_many`` is the single funnel every packed
  KV read passes through, so shadowing it on the pool instance simulates
  decode failures mid-round.

Faults raise :class:`~repro.serve.errors.InjectedFault` (retryable), and
:func:`drive` mirrors the engine's recovery discipline — a fault escaping
``step()`` aborts the in-flight slots via ``abort_active`` and stepping
continues — so the chaos suite can assert the PR-5 invariants (balanced
refcounts, exactly one terminal finish reason per request, a still-serving
scheduler) under every schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import InjectedFault, RetryableServingError, ServingError

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "drive",
    "check_refcounts",
]


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: *kind* fires the *at_count*-th time its seam is crossed.

    Parameters
    ----------
    kind:
        ``"phase_error"`` raises :class:`InjectedFault` entering the
        *at_count*-th ``phase`` span; ``"pool_decode_error"`` raises from
        the *at_count*-th packed-page decode call; ``"clock_jump"``
        advances the scheduler clock by ``jump_s`` entering the
        *at_count*-th ``phase`` span; ``"queue_burst"`` tells
        :func:`drive` to submit ``burst`` extra requests at round
        *at_count*.
    phase:
        Span name the counter watches (``phase_error`` / ``clock_jump``
        only).  The scheduler's phases are ``round``, ``admit``,
        ``plain_round``, ``sample``, ``retire`` and the speculative
        ``draft_propose`` / ``verify``.
    at_count:
        1-based occurrence at which the fault fires.  Each spec fires at
        most once.
    jump_s:
        Seconds added to the clock offset (``clock_jump`` only).
    burst:
        Extra same-round submissions (``queue_burst`` only).
    """

    KINDS = ("phase_error", "pool_decode_error", "clock_jump", "queue_burst")

    kind: str
    phase: str = "round"
    at_count: int = 1
    jump_s: float = 0.0
    burst: int = 0

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if int(self.at_count) < 1:
            raise ServingError("at_count is 1-based and must be >= 1")
        object.__setattr__(self, "at_count", int(self.at_count))
        if self.kind == "clock_jump" and not float(self.jump_s) > 0:
            raise ServingError("clock_jump requires jump_s > 0")
        object.__setattr__(self, "jump_s", float(self.jump_s))
        if self.kind == "queue_burst" and int(self.burst) < 1:
            raise ServingError("queue_burst requires burst >= 1")
        object.__setattr__(self, "burst", int(self.burst))


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable set of :class:`FaultSpec` triggers."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ServingError("FaultSchedule holds FaultSpec entries only")

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def generate(
        cls,
        seed: int,
        num_faults: int = 4,
        phases: Sequence[str] = ("round", "admit", "sample"),
        max_round: int = 8,
        max_jump_s: float = 4.0,
        max_burst: int = 4,
    ) -> "FaultSchedule":
        """Seeded random schedule: same seed, same faults, every run."""
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(int(num_faults)):
            kind = FaultSpec.KINDS[int(rng.integers(0, len(FaultSpec.KINDS)))]
            at_count = int(rng.integers(1, max_round + 1))
            if kind == "clock_jump":
                specs.append(
                    FaultSpec(
                        kind,
                        phase=str(phases[int(rng.integers(0, len(phases)))]),
                        at_count=at_count,
                        jump_s=float(rng.uniform(0.1, max_jump_s)),
                    )
                )
            elif kind == "queue_burst":
                specs.append(
                    FaultSpec(
                        kind,
                        at_count=at_count,
                        burst=int(rng.integers(1, max_burst + 1)),
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        kind,
                        phase=str(phases[int(rng.integers(0, len(phases)))]),
                        at_count=at_count,
                    )
                )
        return cls(tuple(specs))


class _InjectingTracer:
    """Tracer proxy: counts span entries and lets the injector act on them.

    ``span()`` consults the injector *before* delegating, so a phase error
    raises before the span opens (no dangling open spans in the report).
    Everything else — ``enabled``, lifecycle tracks, report methods —
    passes through to the wrapped tracer untouched, so a NULL_TRACER stays
    free and an enabled tracer's output is unchanged apart from the
    injected behaviour.
    """

    def __init__(self, inner, injector: "FaultInjector") -> None:
        self._inner = inner
        self._injector = injector

    @property
    def enabled(self):
        return self._inner.enabled

    def span(self, name: str = "", cat: str = "phase", attrs=None):
        self._injector.on_span(name)
        return self._inner.span(name, cat=cat, attrs=attrs)

    def __getattr__(self, item):
        return getattr(self._inner, item)


class FaultInjector:
    """Arms a :class:`FaultSchedule` against a scheduler's seams.

    ``attach(scheduler)`` wraps the scheduler's tracer, clock and page
    pool in place; the scheduler itself is unmodified code running under
    instrumented dependencies.  Each spec fires at most once; ``fired``
    records the specs that actually triggered (a schedule may over-provision
    counts the run never reaches — that is fine, chaos schedules are
    upper bounds, not scripts).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._specs: List[FaultSpec] = list(schedule.specs)
        self.fired: List[FaultSpec] = []
        self._consumed: set = set()
        self._phase_counts: Dict[str, int] = {}
        self._decode_calls = 0
        self._clock_offset = 0.0

    def add(self, spec: FaultSpec) -> FaultSpec:
        """Arm one more spec mid-run (state-machine tests inject on demand)."""
        if not isinstance(spec, FaultSpec):
            raise ServingError("add() takes a FaultSpec")
        self._specs.append(spec)
        return spec

    def occurrences(self, phase: str) -> int:
        """How many times the ``phase`` span has been entered so far."""
        return self._phase_counts.get(phase, 0)

    def disarm(self) -> List[FaultSpec]:
        """Consume every still-pending spec so no further fault fires.

        The seams stay attached (and the clock keeps its accumulated
        forward offset — unwinding it would move time backwards); only the
        unfired schedule is cancelled.  Returns the specs that never fired,
        so a chaos run can report leftover faults before probing that the
        scheduler still serves.
        """
        leftover = [
            spec
            for position, spec in enumerate(self._specs)
            if position not in self._consumed
        ]
        self._consumed.update(range(len(self._specs)))
        return leftover

    # -------------------------------------------------------------- #
    # Arming
    # -------------------------------------------------------------- #
    def attach(self, scheduler) -> "FaultInjector":
        """Wrap ``scheduler``'s tracer, clock and pool decode in place."""
        scheduler.tracer = _InjectingTracer(scheduler.tracer, self)
        inner_clock = scheduler.clock
        scheduler.clock = lambda: inner_clock() + self._clock_offset
        pool = scheduler.page_pool
        inner_decode = pool.decoded_many

        def decoded_many(handles, codec):
            self._decode_calls += 1
            spec = self._take("pool_decode_error", self._decode_calls)
            if spec is not None:
                raise InjectedFault(
                    f"injected pool decode failure "
                    f"(call {self._decode_calls}, spec {spec})"
                )
            return inner_decode(handles, codec)

        # Instance attribute shadows the bound method for every caller
        # holding a reference to the pool (slot caches included).
        pool.decoded_many = decoded_many
        return self

    # -------------------------------------------------------------- #
    # Seam callbacks
    # -------------------------------------------------------------- #
    def on_span(self, name: str) -> None:
        """Called on every span entry; fires matching clock/phase faults."""
        count = self._phase_counts.get(name, 0) + 1
        self._phase_counts[name] = count
        while True:
            spec = self._take("clock_jump", count, phase=name)
            if spec is None:
                break
            self._clock_offset += spec.jump_s
        spec = self._take("phase_error", count, phase=name)
        if spec is not None:
            raise InjectedFault(
                f"injected failure entering phase {name!r} "
                f"(occurrence {count}, spec {spec})"
            )

    def burst_at(self, round_index: int) -> int:
        """Extra submissions :func:`drive` should attempt at this round."""
        extra = 0
        while True:
            spec = self._take("queue_burst", round_index)
            if spec is None:
                return extra
            extra += spec.burst

    def _take(
        self, kind: str, count: int, phase: Optional[str] = None
    ) -> Optional[FaultSpec]:
        """Pop the first unconsumed spec of ``kind`` due at ``count``."""
        for position, spec in enumerate(self._specs):
            if position in self._consumed or spec.kind != kind:
                continue
            if phase is not None and spec.phase != phase:
                continue
            if spec.at_count == count:
                self._consumed.add(position)
                self.fired.append(spec)
                return spec
        return None


def drive(
    scheduler,
    injector: FaultInjector,
    requests: Sequence,
    max_rounds: int = 256,
) -> Dict[str, object]:
    """Run every request to a terminal state under the armed schedule.

    Submits one pending request per round (plus any ``queue_burst``
    extras), steps the scheduler, and absorbs faults exactly the way the
    engine does: admission rejections are recorded and dropped, an
    :class:`InjectedFault` escaping ``step()`` aborts the in-flight slots
    with ``abort_active`` and the loop keeps stepping.  Raises
    ``AssertionError`` if the scheduler fails to drain within
    ``max_rounds`` — a converging scheduler under chaos is itself one of
    the invariants.
    """
    pending = list(requests)
    results: List = []
    rejected: List[Tuple[str, Exception]] = []
    aborted: List[str] = []
    round_index = 0
    while pending or len(scheduler):
        round_index += 1
        if round_index > max_rounds:
            raise AssertionError(
                f"fault-injection drive did not converge in {max_rounds} rounds"
            )
        want = 1 + injector.burst_at(round_index)
        while want and pending:
            want -= 1
            request = pending.pop(0)
            try:
                scheduler.submit(request)
            except RetryableServingError as exc:
                rejected.append((request.request_id, exc))
        try:
            results.extend(scheduler.step())
        except InjectedFault as exc:
            aborted.extend(scheduler.abort_active(exc))
    return {
        "results": results,
        "rejected": rejected,
        "aborted": aborted,
        "rounds": round_index,
        "failures": scheduler.take_failures(),
    }


def check_refcounts(scheduler) -> None:
    """Assert every pool refcount equals its enumerable holders.

    The same balance check the invariant fuzz suite runs: each sealed page
    handle held by a live slot cache or a prefix-index node accounts for
    exactly one reference, and no pool entry carries references nobody
    holds.  Raises ``AssertionError`` on imbalance.
    """
    from collections import Counter

    pool = scheduler.page_pool
    held = Counter()
    for slot in scheduler._slots:
        if slot is None:
            continue
        for layer_index in range(slot.cache.num_layers):
            layer = slot.cache.layer(layer_index)
            for handle in layer._sealed_k + layer._sealed_v:
                held[id(handle)] += 1
    for node in pool._prefix_nodes.values():
        for handle in node.handles():
            held[id(handle)] += 1
    entries = {id(handle): handle for handle in pool._entries.values()}
    for key, handle in entries.items():
        assert handle.refcount == held[key], (
            f"page {handle.page_id}: refcount {handle.refcount} != "
            f"{held[key]} enumerated holders"
        )
    for key, count in held.items():
        assert key in entries and count > 0, "holder of an unregistered page"
