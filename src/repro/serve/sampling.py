"""Sampling surface of the generation API.

This module is the bottom layer of the serving stack's generation redesign:

* :class:`SamplingParams` — one frozen, validated object describing *how* a
  request decodes (temperature, top-k/top-p filtering, stop tokens, token
  budget, reported logprobs, seed).  Requests carry one; the legacy
  ``top_k=``/``max_new_tokens=`` keyword arguments of
  :class:`~repro.serve.requests.InferenceRequest` are a deprecation shim that
  maps into it.
* A pluggable **logits-processor chain** (:class:`TemperatureWarper`,
  :class:`TopKFilter`, :class:`TopPFilter`) — pure ``log_probs → log_probs``
  transforms composed by :func:`default_processors`; callers may pass their
  own chain to :class:`Sampler` (the hook the ROADMAP's speculative-decoding
  item plugs into).
* :class:`Sampler` — applies the chain and draws one token with a
  caller-owned :class:`numpy.random.Generator` (one seeded generator per
  request, so co-batched sequences never perturb each other's draws).  The
  ``temperature=0`` path bypasses the chain entirely and is bitwise the
  ``int(np.argmax(log_probs))`` the pre-redesign greedy decoder ran.
* :class:`TokenChunk` / :class:`RequestOutput` — the typed streamed/final
  outputs that replace the flat LM ``output`` dict.  ``RequestOutput`` keeps a
  read-only mapping view of the legacy keys (``next_tokens``, ``log_probs``,
  ``generated_tokens``, ``kv_cache``) so existing callers keep working.

Determinism: every top-k selection here goes through
:func:`top_k_candidates`, which re-derives the winner set from the k-th value
and stable-sorts it — ``np.argpartition`` alone leaves both the *selection*
and the *order* among equal log-probs unspecified across NumPy versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import ServingError

__all__ = [
    "FinishReason",
    "LogitsProcessor",
    "RequestOutput",
    "SampledToken",
    "Sampler",
    "SamplingParams",
    "TemperatureWarper",
    "TokenChunk",
    "TopKFilter",
    "TopPFilter",
    "default_processors",
    "top_k_candidates",
]


class FinishReason:
    """Why a generation stream ended."""

    STOP = "stop"          # a stop token was sampled
    LENGTH = "length"      # max_new_tokens reached
    ABORTED = "aborted"    # cancelled by the client
    ERROR = "error"        # the decode round failed
    DEADLINE = "deadline"  # the request's deadline/queue timeout expired

    ALL = (STOP, LENGTH, ABORTED, ERROR, DEADLINE)


@dataclass(frozen=True)
class SamplingParams:
    """How one request decodes.

    Parameters
    ----------
    temperature:
        ``0`` decodes greedily (argmax, bitwise the pre-sampling decoder);
        ``> 0`` softens/sharpens the distribution before drawing.
    top_k:
        Restrict sampling to the ``top_k`` highest-probability tokens
        (``0`` disables the filter).  Ties at the boundary are all kept, so
        the filter is deterministic across NumPy versions.
    top_p:
        Nucleus sampling: keep the smallest set of tokens whose cumulative
        probability reaches ``top_p`` (``1.0`` disables the filter).
    stop_token_ids:
        Sampling any of these ends the stream with ``finish_reason="stop"``;
        the stop token itself is included in the output (callers that hide it
        drop the final id).
    max_new_tokens:
        Token budget; hitting it ends the stream with
        ``finish_reason="length"``.  ``0`` scores the prompt only.
    logprobs:
        Number of top candidate ``(token, logprob)`` pairs reported per
        streamed token (and for the final scored position).  ``0`` reports
        the sampled token's logprob only.
    seed:
        Seed of the request's private :class:`numpy.random.Generator`.
        ``None`` draws fresh OS entropy (non-reproducible).
    """

    temperature: float = 0.0
    top_k: int = 0
    top_p: float = 1.0
    stop_token_ids: Tuple[int, ...] = ()
    max_new_tokens: int = 0
    logprobs: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise ServingError("temperature must be >= 0")
        if self.top_k < 0:
            raise ServingError("top_k must be >= 0 (0 disables the filter)")
        if not 0.0 < self.top_p <= 1.0:
            raise ServingError("top_p must be in (0, 1]")
        if self.max_new_tokens < 0:
            raise ServingError("max_new_tokens must be >= 0")
        if self.logprobs < 0:
            raise ServingError("logprobs must be >= 0")
        stop = tuple(int(t) for t in self.stop_token_ids)
        object.__setattr__(self, "stop_token_ids", stop)

    @property
    def greedy(self) -> bool:
        """True when this request decodes deterministically by argmax."""
        return self.temperature == 0.0

    @classmethod
    def from_legacy(cls, top_k: int, max_new_tokens: int) -> "SamplingParams":
        """Map the deprecated request kwargs onto the new surface.

        The old ``top_k`` named how many candidates were reported for the
        *final* scored position only; the request keeps it for that report
        (``InferenceRequest.top_k``) rather than paying ``logprobs``' extra
        per-streamed-token top-k work the old decoder never did.  Decode
        stays greedy.
        """
        top_k = int(top_k)
        max_new_tokens = int(max_new_tokens)
        if top_k < 1:
            raise ServingError("top_k must be >= 1")
        if max_new_tokens < 0:
            raise ServingError("max_new_tokens must be >= 0")
        return cls(max_new_tokens=max_new_tokens)


# --------------------------------------------------------------------------- #
# Deterministic top-k selection
# --------------------------------------------------------------------------- #
def top_k_candidates(log_probs: np.ndarray, top_k: int) -> np.ndarray:
    """Indices of the ``top_k`` largest entries, deterministically ordered.

    ``np.argpartition`` preselects *some* k winners in O(V), but which equal
    values land inside the partition — and their order — is unspecified and
    has changed across NumPy releases.  The winner set is therefore re-derived
    from the k-th value (ties at the boundary resolved by ascending token id)
    and stable-sorted, so the result is descending by log-prob with equal
    log-probs in ascending token-id order on every NumPy version.
    """
    top_k = int(top_k)
    if top_k < 1:
        raise ServingError("top_k must be >= 1")
    log_probs = np.asarray(log_probs)
    vocab = log_probs.shape[-1]
    k = min(top_k, vocab)
    if k < vocab:
        partition = np.argpartition(log_probs, vocab - k)[vocab - k:]
        threshold = log_probs[partition].min()
        above = np.flatnonzero(log_probs > threshold)
        ties = np.flatnonzero(log_probs == threshold)
        candidates = np.concatenate([above, ties[: k - above.size]])
    else:
        candidates = np.arange(vocab)
    # Stable sort keeps the candidates' ascending-id order among equal values.
    order = np.argsort(-log_probs[candidates], kind="stable")
    return candidates[order]


def _top_logprob_pairs(log_probs: np.ndarray, k: int) -> Tuple[Tuple[int, float], ...]:
    ids = top_k_candidates(log_probs, k)
    return tuple((int(t), float(log_probs[t])) for t in ids)


# --------------------------------------------------------------------------- #
# Logits processors
# --------------------------------------------------------------------------- #
class LogitsProcessor:
    """One pure transform of a log-prob vector.

    Processors never mutate their input and never renormalize — the sampler
    renormalizes once after the whole chain has run, so chains compose without
    order-dependent drift.
    """

    def __call__(self, log_probs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class TemperatureWarper(LogitsProcessor):
    """Scale log-probs by ``1/temperature`` (sharpen < 1 < soften)."""

    def __init__(self, temperature: float) -> None:
        if temperature <= 0:
            raise ServingError("TemperatureWarper needs temperature > 0")
        self.temperature = float(temperature)

    def __call__(self, log_probs: np.ndarray) -> np.ndarray:
        return log_probs / self.temperature


class TopKFilter(LogitsProcessor):
    """Mask everything below the k-th largest log-prob to ``-inf``.

    Boundary ties are all kept (the filter may pass more than ``k`` tokens),
    which makes the kept set independent of ``np.partition``'s unspecified
    tie handling.
    """

    def __init__(self, top_k: int) -> None:
        if top_k < 1:
            raise ServingError("TopKFilter needs top_k >= 1")
        self.top_k = int(top_k)

    def __call__(self, log_probs: np.ndarray) -> np.ndarray:
        vocab = log_probs.shape[-1]
        if self.top_k >= vocab:
            return log_probs
        kth = np.partition(log_probs, vocab - self.top_k)[vocab - self.top_k]
        return np.where(log_probs >= kth, log_probs, -np.inf)


class TopPFilter(LogitsProcessor):
    """Nucleus filter: keep the smallest prefix of tokens reaching ``top_p``.

    Tokens are ranked by the deterministic stable order (descending log-prob,
    ascending id among ties); the first token is always kept.
    """

    def __init__(self, top_p: float) -> None:
        if not 0.0 < top_p <= 1.0:
            raise ServingError("TopPFilter needs top_p in (0, 1]")
        self.top_p = float(top_p)

    def __call__(self, log_probs: np.ndarray) -> np.ndarray:
        if self.top_p >= 1.0:
            return log_probs
        order = np.argsort(-log_probs, kind="stable")
        sorted_lp = log_probs[order]
        probs = np.exp(sorted_lp - sorted_lp[0])
        cdf = np.cumsum(probs)
        # Keep every token whose mass *starts* inside the nucleus, so the
        # first token always survives and the kept set just covers top_p.
        # cdf[i-1] is where token i starts; searchsorted finds the cut in
        # one pass (cdf is unnormalized, so scale the threshold instead).
        kept = 1 + int(np.searchsorted(cdf[:-1], self.top_p * cdf[-1], side="left"))
        mask = np.full(log_probs.shape[-1], -np.inf)
        mask[order[:kept]] = sorted_lp[:kept]
        return mask


def default_processors(params: SamplingParams) -> Tuple[LogitsProcessor, ...]:
    """The standard chain for ``params``: temperature → top-k → top-p."""
    chain: List[LogitsProcessor] = []
    if params.temperature > 0 and params.temperature != 1.0:
        chain.append(TemperatureWarper(params.temperature))
    if params.top_k > 0:
        chain.append(TopKFilter(params.top_k))
    if params.top_p < 1.0:
        chain.append(TopPFilter(params.top_p))
    return tuple(chain)


# --------------------------------------------------------------------------- #
# Sampler
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SampledToken:
    """One drawn token: its id, the *model's* logprob, optional candidates."""

    token_id: int
    logprob: float
    top_logprobs: Tuple[Tuple[int, float], ...] = ()


class Sampler:
    """Draw tokens for one request from per-position log-prob vectors.

    Parameters
    ----------
    params:
        The request's :class:`SamplingParams`.
    processors:
        Optional explicit logits-processor chain; defaults to
        :func:`default_processors`.  The chain only runs on the sampled path —
        ``temperature=0`` short-circuits to ``argmax`` so the greedy result is
        bitwise identical to the pre-sampling decoder.

    Speculative decoding (:mod:`repro.serve.spec`) relies on exactly this
    per-position contract: the verify round calls :meth:`sample` once per
    target position with the request's own generator, so every emitted token
    — accepted draft, correction or bonus — consumes one draw from the true
    target conditional, the same sequence of draws a plain decode performs.
    Greedy requests therefore accept a draft token iff it *is* the argmax
    (exact-prefix match).
    """

    def __init__(
        self,
        params: SamplingParams,
        processors: Optional[Sequence[LogitsProcessor]] = None,
    ) -> None:
        self.params = params
        # The default chain is algebraically fusable into one sorted pass
        # (see _sample_default); a custom chain runs processor by processor.
        self._default_chain = processors is None
        self.processors = (
            tuple(processors) if processors is not None else default_processors(params)
        )

    def make_generator(self) -> np.random.Generator:
        """The request's private generator (seeded when ``params.seed`` is)."""
        return np.random.default_rng(self.params.seed)

    def sample(
        self, log_probs: np.ndarray, generator: Optional[np.random.Generator] = None
    ) -> SampledToken:
        """Draw one token from a single ``(vocab,)`` log-prob vector.

        The reported ``logprob`` (and ``top_logprobs``) are read from the
        *unprocessed* model distribution — warping/filtering changes what is
        sampled, not what the model believed.
        """
        log_probs = np.asarray(log_probs)
        if generator is None:
            generator = self.make_generator()
        if self.params.greedy:
            token = int(np.argmax(log_probs))
        elif self._default_chain:
            token = self._sample_default(log_probs, generator)
        else:
            warped = np.asarray(log_probs, dtype=np.float64)
            for processor in self.processors:
                warped = processor(warped)
            # Inverse-CDF draw: one uniform + searchsorted is an order of
            # magnitude cheaper than Generator.choice(p=...) and runs once
            # per slot per decode round on the serving hot path.
            probs = np.exp(warped - np.max(warped))
            cdf = np.cumsum(probs)
            draw = generator.random() * cdf[-1]
            token = min(int(np.searchsorted(cdf, draw, side="right")), cdf.size - 1)
        top = (
            _top_logprob_pairs(log_probs, self.params.logprobs)
            if self.params.logprobs > 0
            else ()
        )
        return SampledToken(token, float(log_probs[token]), top)

    def _sample_default(
        self, log_probs: np.ndarray, generator: np.random.Generator
    ) -> int:
        """Temperature → top-k → top-p → draw, fused into one sorted pass.

        Equivalent to running the default processor chain (same kept sets,
        boundary ties included, same nucleus rule) but with a fraction of
        the NumPy calls — this runs once per slot per decode round.
        """
        params = self.params
        lp = np.asarray(log_probs, dtype=np.float64)
        descending = -lp
        order = np.argsort(descending, kind="stable")
        sorted_lp = lp[order]
        warped = sorted_lp / params.temperature if params.temperature != 1.0 else sorted_lp
        keep = sorted_lp.size
        if 0 < params.top_k < keep:
            # Boundary ties all survive, as in TopKFilter.
            keep = int(
                np.searchsorted(-sorted_lp, -sorted_lp[params.top_k - 1], "right")
            )
        probs = np.exp(warped[:keep] - warped[0])
        cdf = np.cumsum(probs)
        kept = keep
        if params.top_p < 1.0 and keep > 1:
            # Token i starts at cdf[i-1]; keep tokens starting inside the
            # nucleus (first always kept), as in TopPFilter.
            kept = 1 + int(
                np.searchsorted(cdf[: keep - 1], params.top_p * cdf[-1], side="left")
            )
        draw = generator.random() * cdf[kept - 1]
        choice = min(int(np.searchsorted(cdf[:kept], draw, side="right")), kept - 1)
        return int(order[choice])

    def is_stop(self, token_id: int) -> bool:
        """True when ``token_id`` ends the stream."""
        return token_id in self.params.stop_token_ids


# --------------------------------------------------------------------------- #
# Streamed / final outputs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TokenChunk:
    """One streamed generation event.

    ``token_id`` is ``None`` only on a terminal marker chunk (a cancellation
    or decode error that ends the stream between tokens); every other chunk
    carries exactly one sampled token.  The chunk that ends a stream — token
    or marker — has ``finish_reason`` set; earlier chunks carry ``None``.
    """

    request_id: str
    index: int                 # position in the generated stream
    token_id: Optional[int]
    logprob: float = 0.0
    top_logprobs: Tuple[Tuple[int, float], ...] = ()
    finish_reason: Optional[str] = None

    @property
    def is_token(self) -> bool:
        return self.token_id is not None


@dataclass
class RequestOutput:
    """Typed final output of one LM request.

    ``token_ids``/``logprobs`` are the generated stream (empty for score-only
    requests, whose ``finish_reason`` is ``None``); ``next_tokens`` /
    ``log_probs`` are the top candidates of the final scored position (the
    pre-redesign report).  Streamed :class:`TokenChunk`'s concatenate to
    exactly ``token_ids``.

    The object also acts as a read-only mapping over the legacy LM output
    keys (``next_tokens``, ``log_probs``, and for generation requests
    ``generated_tokens`` + ``kv_cache``), so pre-redesign callers that
    indexed the flat dict keep working unchanged.
    """

    request_id: str
    finish_reason: Optional[str] = None
    token_ids: List[int] = field(default_factory=list)
    logprobs: List[float] = field(default_factory=list)
    top_logprobs: List[Tuple[Tuple[int, float], ...]] = field(default_factory=list)
    next_tokens: List[int] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    kv_cache: Optional[Dict[str, Any]] = None

    @property
    def num_generated(self) -> int:
        return len(self.token_ids)

    @property
    def aborted(self) -> bool:
        return self.finish_reason == FinishReason.ABORTED

    # ------------------------------------------------------------------ #
    # Legacy mapping view
    # ------------------------------------------------------------------ #
    def _legacy(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "next_tokens": self.next_tokens,
            "log_probs": self.log_probs,
        }
        if self.finish_reason is not None:
            data["generated_tokens"] = self.token_ids
            data["finish_reason"] = self.finish_reason
            if self.kv_cache is not None:
                data["kv_cache"] = self.kv_cache
        return data

    def __getitem__(self, key: str) -> Any:
        return self._legacy()[key]

    def __contains__(self, key: object) -> bool:
        return key in self._legacy()

    def __iter__(self) -> Iterator[str]:
        return iter(self._legacy())

    def get(self, key: str, default: Any = None) -> Any:
        return self._legacy().get(key, default)

    def keys(self):
        return self._legacy().keys()

    def as_dict(self) -> Dict[str, Any]:
        """Full plain-dict view (typed fields, not just the legacy keys)."""
        return {
            "request_id": self.request_id,
            "finish_reason": self.finish_reason,
            "token_ids": list(self.token_ids),
            "logprobs": list(self.logprobs),
            "top_logprobs": list(self.top_logprobs),
            "next_tokens": list(self.next_tokens),
            "log_probs": list(self.log_probs),
            "kv_cache": self.kv_cache,
        }
