"""OVP-quantized paged KV caches with a shared, decode-once page pool.

The KV cache is the dominant memory consumer of LM serving: every decoded
token appends one K and one V vector per layer per head, and a full-precision
cache grows as ``4 bytes × 2 × layers × heads × head_dim`` per token.  OVP
encoding is a natural fit because it is *memory aligned* — a packed page is a
plain byte stream with no side tables, so paging the cache keeps the exact
DRAM layout the paper's accelerator assumes for weights.

Layout
------
Each sequence owns one :class:`SequenceKVCache`; each layer of the sequence
owns a :class:`LayerKVCache` holding

* a list of *sealed pages* — ``page_size`` timesteps of K (and V) quantized
  on append into one :class:`~repro.core.ovp.PackedOVPTensor` per page, with
  a per-page 3σ scale (the paper's initial-scale rule; no MSE search on the
  hot append path);
* one *open page* — the most recent ``< page_size`` timesteps kept in full
  precision until the page fills.

Sealed pages live in a :class:`PagePool` as refcounted
:class:`PageHandle` entries.  Sealed pages are immutable byte streams, so the
pool can

* **decode each page once** — a bounded LRU side-cache holds the decoded
  fp values, so the per-round attend cost stops paying an O(cached tokens)
  re-decode (``decoded-on-first-attend``, reused by every later round and by
  every sequence referencing the page);
* **share prompt prefixes** — requests whose token prefix hashes to
  already-sealed pages attach to the existing entries copy-on-write (sealed
  pages are never mutated; each sequence still owns its open page), skipping
  the prefill *and* the re-quantization of the shared tokens.

``quantize=False`` keeps sealed pages in full precision; this reference mode
is what the incremental-decode equivalence tests compare against full
recompute.  Reference pages flow through the same pool/refcount machinery
(prefix sharing included) but need no decode cache.

Sequences release their page references on retire/abort via
:meth:`SequenceKVCache.release`; a page is dropped once no sequence and no
prefix-index node references it.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ovp import OVPairCodec, PackedOVPTensor
from repro.core.quantizer import OVPQuantizerConfig
from repro.serve.requests import ServingError
from repro.serve.telemetry import NULL_TRACER

__all__ = [
    "KVCacheConfig",
    "PageHandle",
    "PagePool",
    "LayerKVCache",
    "SequenceKVCache",
    "cache_for_model",
]


@dataclass(frozen=True)
class KVCacheConfig:
    """How a sequence's K/V pages are stored.

    Parameters
    ----------
    bits:
        OVP precision of sealed pages: 4 (int4 + E2M1) or 8 (int8 + E4M3).
    page_size:
        Timesteps per page.  Smaller pages seal sooner (less full-precision
        residency) but pay per-page scale/encode overhead more often.
    quantize:
        ``False`` keeps sealed pages in full precision — the bit-exact
        reference mode used by the equivalence tests.
    pool_decoded_mb:
        Capacity of the page pool's decoded-page LRU side-cache in MiB.
        ``0`` disables decoded-page reuse entirely — every attend re-decodes
        every sealed page, the pre-pool baseline the benchmarks compare
        against.
    prefix_sharing:
        Let the continuous scheduler attach new requests to already-sealed
        pages of a matching token prefix instead of re-prefilling them.
    """

    bits: int = 4
    page_size: int = 16
    quantize: bool = True
    pool_decoded_mb: float = 64.0
    prefix_sharing: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (4, 8):
            raise ServingError("KV caches support 4- and 8-bit OVP only")
        if self.page_size < 1:
            raise ServingError("page_size must be >= 1")
        if self.pool_decoded_mb < 0:
            raise ServingError("pool_decoded_mb must be >= 0")

    def make_codec(self) -> OVPairCodec:
        """Codec for sealed pages (paper defaults for the chosen width)."""
        normal_dtype = "int4" if self.bits == 4 else "int8"
        normal, outlier, bias = OVPQuantizerConfig(normal_dtype=normal_dtype).resolve()
        return OVPairCodec(normal, outlier, bias)

    def make_pool(self) -> "PagePool":
        """A page pool sized to this config's decoded-cache budget."""
        return PagePool(decoded_capacity_bytes=int(self.pool_decoded_mb * (1 << 20)))


#: A sealed page payload: packed byte stream when quantizing, float otherwise.
_PagePayload = Union[PackedOVPTensor, np.ndarray]

_PAGE_IDS = itertools.count()


class PageHandle:
    """One sealed, immutable page registered in a :class:`PagePool`.

    ``refcount`` counts the sequences (and prefix-index nodes) referencing
    the page; the payload bytes are shared by all of them and never mutated.
    """

    __slots__ = ("page_id", "payload", "refcount")

    def __init__(self, payload: _PagePayload) -> None:
        self.page_id = next(_PAGE_IDS)
        self.payload = payload
        self.refcount = 1

    @property
    def is_packed(self) -> bool:
        return isinstance(self.payload, PackedOVPTensor)

    @property
    def shared(self) -> bool:
        """True when more than one holder references this page."""
        return self.refcount > 1

    @property
    def nbytes_resident(self) -> int:
        """Resident bytes: packed stream, or fp32-equivalent for reference pages."""
        if self.is_packed:
            return int(self.payload.nbytes)
        return int(self.payload.size) * 4


@dataclass
class _PrefixNode:
    """Prefix-index entry: the K/V page handles of ONE page position, per layer."""

    k_handles: List[PageHandle]
    v_handles: List[PageHandle]

    def handles(self) -> List[PageHandle]:
        return self.k_handles + self.v_handles


class PagePool:
    """Shared store of sealed KV pages: refcounts, decode-once LRU, prefixes.

    A pool is owned by one scheduler/engine (single-threaded use); sequences
    register pages as they seal, attach to existing pages on prefix hits, and
    release their references on retire.  Three concerns live here:

    * **refcounting** — a page is dropped (and its decoded entry evicted)
      once its last holder releases it;
    * **decoded-page LRU** — packed pages decode at most once while the
      decoded values fit ``decoded_capacity_bytes``; every further attend is
      a pool hit that skips the OVP decode entirely;
    * **prefix index** — a bounded LRU mapping page-aligned token-prefix hash
      chains to the sealed pages holding those tokens' K/V, enabling
      copy-on-write prompt sharing across requests.
    """

    def __init__(
        self,
        decoded_capacity_bytes: int = 64 << 20,
        prefix_capacity: int = 1024,
    ) -> None:
        if decoded_capacity_bytes < 0:
            raise ServingError("decoded_capacity_bytes must be >= 0")
        if prefix_capacity < 1:
            raise ServingError("prefix_capacity must be >= 1")
        self.decoded_capacity_bytes = int(decoded_capacity_bytes)
        self.prefix_capacity = int(prefix_capacity)
        # Span tracer for the batched pool decode; the owning engine/
        # scheduler assigns its own tracer here (last assignment wins when a
        # pool is shared, so share a tracer along with the pool).
        self.tracer = NULL_TRACER
        self._entries: Dict[int, PageHandle] = {}
        self._decoded: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._decoded_bytes = 0
        self._sealed_bytes = 0
        self._prefix_nodes: "OrderedDict[Tuple, _PrefixNode]" = OrderedDict()
        # Cumulative counters (monotonic; callers diff snapshots per round).
        self.decode_hits = 0
        self.decode_misses = 0
        self.decoded_bytes_saved = 0
        self.pages_registered = 0
        self.pages_dropped = 0
        self.prefix_lookups = 0
        self.prefix_pages_attached = 0
        self.prefix_pages_indexed = 0

    # ------------------------------------------------------------------ #
    # Refcounted page registry
    # ------------------------------------------------------------------ #
    def register(self, payload: _PagePayload) -> PageHandle:
        """Register a freshly sealed page; the caller holds the first ref."""
        handle = PageHandle(payload)
        self._entries[handle.page_id] = handle
        self._sealed_bytes += handle.nbytes_resident
        self.pages_registered += 1
        return handle

    def incref(self, handle: PageHandle) -> PageHandle:
        """Acquire one more reference (re-registering a fully released page)."""
        if handle.refcount == 0:
            # Resurrection: the payload is still alive through the handle, so
            # re-admitting it is safe (prefix nodes can race slot release).
            self._entries[handle.page_id] = handle
            self._sealed_bytes += handle.nbytes_resident
        handle.refcount += 1
        return handle

    def release(self, handle: PageHandle) -> None:
        """Drop one reference; the last release forgets the page entirely."""
        if handle.refcount <= 0:
            raise ServingError("KV page released more times than acquired")
        handle.refcount -= 1
        if handle.refcount == 0:
            if self._entries.pop(handle.page_id, None) is not None:
                self._sealed_bytes -= handle.nbytes_resident
            cached = self._decoded.pop(handle.page_id, None)
            if cached is not None:
                self._decoded_bytes -= cached.nbytes
            self.pages_dropped += 1

    # ------------------------------------------------------------------ #
    # Decode-once LRU
    # ------------------------------------------------------------------ #
    def decoded_many(
        self, handles: Sequence[PageHandle], codec: Optional[OVPairCodec]
    ) -> List[np.ndarray]:
        """Decoded fp values of many pages, decoding each page at most once.

        Reference-mode (ndarray) payloads pass straight through.  Packed
        pages are served from the decoded LRU when present; the misses are
        decoded in one batched codec pass per page shape, deduplicated so a
        page referenced by several sequences in one round decodes once.
        """
        out: List[Optional[np.ndarray]] = [None] * len(handles)
        pending: "OrderedDict[int, List[int]]" = OrderedDict()
        for j, handle in enumerate(handles):
            if not handle.is_packed:
                out[j] = handle.payload
                continue
            cached = self._decoded.get(handle.page_id)
            if cached is not None:
                self._decoded.move_to_end(handle.page_id)
                self.decode_hits += 1
                self.decoded_bytes_saved += cached.nbytes
                out[j] = cached
                continue
            positions = pending.get(handle.page_id)
            if positions is None:
                pending[handle.page_id] = [j]
                self.decode_misses += 1
            else:
                positions.append(j)
        if pending:
            if codec is None:
                raise ServingError("decoding packed KV pages requires a codec")
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("pool_decode", attrs={"pages": len(pending)}):
                    self._decode_pending(handles, pending, codec, out)
            else:
                self._decode_pending(handles, pending, codec, out)
        return out  # type: ignore[return-value]

    def _decode_pending(
        self,
        handles: Sequence[PageHandle],
        pending: "OrderedDict[int, List[int]]",
        codec: OVPairCodec,
        out: List[Optional[np.ndarray]],
    ) -> None:
        """Batched OVP decode of the LRU misses (one codec pass per shape)."""
        by_shape: Dict[Tuple[int, ...], List[List[int]]] = {}
        for positions in pending.values():
            shape = tuple(handles[positions[0]].payload.shape)
            by_shape.setdefault(shape, []).append(positions)
        for groups in by_shape.values():
            pages = codec.decode_tensor_batch(
                [handles[positions[0]].payload for positions in groups]
            )
            for row, positions in enumerate(groups):
                array = self._admit_decoded(handles[positions[0]], pages[row])
                out[positions[0]] = array
                for j in positions[1:]:
                    # Same page requested twice in one round: the extra
                    # decode was saved even if the LRU is disabled.
                    self.decode_hits += 1
                    self.decoded_bytes_saved += array.nbytes
                    out[j] = array

    def _admit_decoded(self, handle: PageHandle, array: np.ndarray) -> np.ndarray:
        if self.decoded_capacity_bytes <= 0 or array.nbytes > self.decoded_capacity_bytes:
            return array
        array = array.copy()  # own the row, not a view of the batch decode
        self._decoded[handle.page_id] = array
        self._decoded_bytes += array.nbytes
        while self._decoded_bytes > self.decoded_capacity_bytes and self._decoded:
            _, evicted = self._decoded.popitem(last=False)
            self._decoded_bytes -= evicted.nbytes
        return array

    # ------------------------------------------------------------------ #
    # Prefix sharing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _page_digest(previous: bytes, page_tokens: np.ndarray) -> bytes:
        return hashlib.blake2b(
            previous + page_tokens.tobytes(), digest_size=16
        ).digest()

    def lookup_prefix(
        self, key, token_ids: np.ndarray, page_size: int, max_pages: int
    ) -> Tuple[int, List[List[PageHandle]], List[List[PageHandle]]]:
        """Longest chain of sealed pages covering ``token_ids``' prefix.

        ``key`` scopes the index (model identity); the chain hash walks
        page-aligned token chunks, so only whole shared pages match.  Returns
        ``(num_pages, layers_k, layers_v)`` where ``layers_k[layer]`` lists
        the matched pages' K handles in page order (empty on a miss).  The
        lookup takes no references — :meth:`LayerKVCache.attach` does.
        """
        self.prefix_lookups += 1
        token_ids = np.asarray(token_ids, dtype=np.int64)
        nodes: List[_PrefixNode] = []
        digest = b""
        for page in range(int(max_pages)):
            chunk = token_ids[page * page_size:(page + 1) * page_size]
            digest = self._page_digest(digest, chunk)
            node = self._prefix_nodes.get((key, digest))
            if node is None:
                break
            self._prefix_nodes.move_to_end((key, digest))
            nodes.append(node)
        if not nodes:
            return 0, [], []
        num_layers = len(nodes[0].k_handles)
        layers_k = [[node.k_handles[l] for node in nodes] for l in range(num_layers)]
        layers_v = [[node.v_handles[l] for node in nodes] for l in range(num_layers)]
        return len(nodes), layers_k, layers_v

    def register_prefix(self, key, token_ids: np.ndarray, cache: "SequenceKVCache") -> int:
        """Index ``cache``'s sealed pages under ``token_ids``' hash chain.

        Call with the prompt after a successful prefill (every full page of
        prompt tokens is sealed by then), or with ``prompt + generated`` at
        retirement when the scheduler shares generated suffixes — decode
        seals its pages the same way, so the chain extends naturally.  Pages
        already indexed (a shared sub-prefix) are refreshed, not duplicated;
        new nodes take one reference per handle so indexed pages survive the
        registering sequence's retirement.  The index is LRU-bounded; evicted
        nodes drop their references.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        page_size = cache.config.page_size
        num_pages = int(token_ids.size) // page_size
        digest = b""
        for page in range(num_pages):
            chunk = token_ids[page * page_size:(page + 1) * page_size]
            digest = self._page_digest(digest, chunk)
            node_key = (key, digest)
            if node_key in self._prefix_nodes:
                self._prefix_nodes.move_to_end(node_key)
                continue
            k_handles = [cache.layer(l)._sealed_k[page] for l in range(cache.num_layers)]
            v_handles = [cache.layer(l)._sealed_v[page] for l in range(cache.num_layers)]
            node = _PrefixNode(k_handles, v_handles)
            for handle in node.handles():
                self.incref(handle)
            self._prefix_nodes[node_key] = node
            self.prefix_pages_indexed += 1
        while len(self._prefix_nodes) > self.prefix_capacity:
            _, evicted = self._prefix_nodes.popitem(last=False)
            for handle in evicted.handles():
                self.release(handle)
        return num_pages

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Live pages (referenced by at least one sequence or prefix node)."""
        return len(self._entries)

    @property
    def num_shared_pages(self) -> int:
        """Live pages currently referenced by more than one holder."""
        return sum(1 for handle in self._entries.values() if handle.shared)

    @property
    def decoded_cache_bytes(self) -> int:
        """Bytes held by the decoded-page LRU right now."""
        return self._decoded_bytes

    @property
    def sealed_bytes(self) -> int:
        """Resident bytes of all live sealed pages (packed OVP or fp32)."""
        return self._sealed_bytes

    @property
    def num_prefix_nodes(self) -> int:
        return len(self._prefix_nodes)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the cumulative counters (diff two snapshots per round)."""
        return {
            "decode_hits": self.decode_hits,
            "decode_misses": self.decode_misses,
            "decoded_bytes_saved": self.decoded_bytes_saved,
            "pages_registered": self.pages_registered,
            "pages_dropped": self.pages_dropped,
            "prefix_lookups": self.prefix_lookups,
            "prefix_pages_attached": self.prefix_pages_attached,
            "prefix_pages_indexed": self.prefix_pages_indexed,
        }

    def stats(self) -> Dict[str, int]:
        """Counters plus live gauges (for demos/dashboards)."""
        snapshot = self.counters()
        snapshot.update(
            {
                "entries": self.num_entries,
                "shared_pages": self.num_shared_pages,
                "sealed_bytes": self.sealed_bytes,
                "decoded_cache_bytes": self.decoded_cache_bytes,
                "prefix_nodes": self.num_prefix_nodes,
            }
        )
        return snapshot


class LayerKVCache:
    """Paged K/V store of one layer of one sequence."""

    def __init__(self, num_heads: int, head_dim: int, config: KVCacheConfig,
                 codec: Optional[OVPairCodec] = None,
                 pool: Optional[PagePool] = None) -> None:
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.config = config
        self.codec = codec if codec is not None else (
            config.make_codec() if config.quantize else None
        )
        self.pool = pool if pool is not None else config.make_pool()
        self._sealed_k: List[PageHandle] = []
        self._sealed_v: List[PageHandle] = []
        # Open page: a preallocated (num_heads, page_size, head_dim) buffer
        # holding the newest _open_len (< page_size) timesteps, so appends
        # write rows in place instead of reallocating per step.
        self._open_k = np.zeros((self.num_heads, config.page_size, self.head_dim))
        self._open_v = np.zeros((self.num_heads, config.page_size, self.head_dim))
        self._open_len = 0
        self._seq_len = 0
        # Deferred-seal mode (speculative verify): appends accumulate in a
        # grown open buffer instead of sealing, so a rollback of rejected
        # draft tokens never has to reopen a quantized page.
        self._hold_seals = False
        # Reusable K/V assembly buffers for the batched round path (kv_many):
        # grown geometrically, so a steady decode loop stops allocating a
        # fresh concatenation every layer every round.  Callers read the
        # assembled views within one attend only (same contract as the
        # open-buffer view _finish already exposes).
        self._assembly: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Append (quantize-on-append)
    # ------------------------------------------------------------------ #
    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append new timesteps, sealing pages as they fill.

        ``k_new``/``v_new`` have shape ``(num_heads, t_new, head_dim)``;
        prefill appends the whole prompt at once, decode appends one step.
        """
        k_new = np.asarray(k_new, dtype=np.float64)
        v_new = np.asarray(v_new, dtype=np.float64)
        expected = (self.num_heads, k_new.shape[1] if k_new.ndim == 3 else -1, self.head_dim)
        if k_new.shape != expected or v_new.shape != expected:
            raise ServingError(
                f"K/V step shapes {k_new.shape}/{v_new.shape} do not match "
                f"(num_heads={self.num_heads}, t, head_dim={self.head_dim})"
            )
        size = self.config.page_size
        offset, total = 0, k_new.shape[1]
        if self._hold_seals:
            # Speculative verify appends: keep everything in full precision
            # (growing the open buffer past page_size if needed) so rejected
            # tokens roll back exactly; flush_seals() restores the invariant.
            needed = self._open_len + total
            if needed > self._open_k.shape[1]:
                self._open_k = self._grown(self._open_k, needed)
                self._open_v = self._grown(self._open_v, needed)
            self._open_k[:, self._open_len:needed] = k_new
            self._open_v[:, self._open_len:needed] = v_new
            self._open_len = needed
            self._seq_len += total
            return
        while offset < total:
            take = min(size - self._open_len, total - offset)
            stop = self._open_len + take
            self._open_k[:, self._open_len:stop] = k_new[:, offset:offset + take]
            self._open_v[:, self._open_len:stop] = v_new[:, offset:offset + take]
            self._open_len = stop
            offset += take
            if self._open_len == size:
                self._seal_open_page()
                self._open_len = 0
        self._seq_len += total

    def _seal_open_page(self) -> None:
        size = self.config.page_size
        self._seal_page(self._open_k[:, :size], self._open_v[:, :size])

    def _seal_page(self, k_page: np.ndarray, v_page: np.ndarray) -> None:
        """Seal one full ``(num_heads, page_size, head_dim)`` K/V page pair."""
        if not self.config.quantize:
            self._sealed_k.append(self.pool.register(k_page.copy()))
            self._sealed_v.append(self.pool.register(v_page.copy()))
            return
        if k_page.size % 2 == 0:
            # K and V pages seal together through one codec pass.
            pages = self.codec.encode_tensor_batch(
                [k_page, v_page],
                [self._page_scale(k_page), self._page_scale(v_page)],
                self.codec.normal_dtype.max_value,
            )
            self._sealed_k.append(self.pool.register(pages[0]))
            self._sealed_v.append(self.pool.register(pages[1]))
            return
        self._sealed_k.append(self.pool.register(self._seal(k_page)))
        self._sealed_v.append(self.pool.register(self._seal(v_page)))

    def _seal(self, page: np.ndarray) -> PackedOVPTensor:
        scale = self._page_scale(page)
        return self.codec.encode_tensor(page, scale, self.codec.normal_dtype.max_value)

    def _page_scale(self, page: np.ndarray) -> float:
        """3σ scale rule: normals span 3σ, anything beyond is an OVP outlier."""
        sigma = float(np.std(page))
        if sigma == 0.0:
            return max(float(np.max(np.abs(page))), 1.0) / self.codec.normal_dtype.max_value
        return 3.0 * sigma / self.codec.normal_dtype.max_value

    # ------------------------------------------------------------------ #
    # Prefix attach / release (pool-backed sharing)
    # ------------------------------------------------------------------ #
    def attach(
        self,
        k_handles: Sequence[PageHandle],
        v_handles: Sequence[PageHandle],
        num_tokens: int,
    ) -> None:
        """Adopt already-sealed pages as this cache's prefix (copy-on-write).

        Sealed pages are immutable, so attaching is reference-taking only;
        this cache appends its own open/sealed pages after them.  Only an
        empty cache may attach, and the pages must match this cache's
        geometry page for page.
        """
        if self._seq_len:
            raise ServingError("prefix pages attach to an empty KV cache only")
        if len(k_handles) != len(v_handles):
            raise ServingError("prefix attach needs matching K and V page lists")
        if num_tokens != len(k_handles) * self.config.page_size:
            raise ServingError(
                f"prefix of {num_tokens} tokens does not fill "
                f"{len(k_handles)} pages of {self.config.page_size}"
            )
        expected = (self.num_heads, self.config.page_size, self.head_dim)
        for handle in list(k_handles) + list(v_handles):
            if tuple(handle.payload.shape) != expected:
                raise ServingError(
                    f"shared page shape {tuple(handle.payload.shape)} does not "
                    f"match cache geometry {expected}"
                )
        for handle in k_handles:
            self._sealed_k.append(self.pool.incref(handle))
        for handle in v_handles:
            self._sealed_v.append(self.pool.incref(handle))
        self._seq_len = int(num_tokens)
        self.pool.prefix_pages_attached += len(k_handles) + len(v_handles)

    def release(self) -> None:
        """Drop this cache's page references (retire/abort); cache resets empty."""
        for handle in self._sealed_k:
            self.pool.release(handle)
        for handle in self._sealed_v:
            self.pool.release(handle)
        self._sealed_k, self._sealed_v = [], []
        self._open_len = 0
        self._seq_len = 0
        self._hold_seals = False
        self._assembly.clear()

    # ------------------------------------------------------------------ #
    # Rollback (speculative decoding)
    # ------------------------------------------------------------------ #
    def _grown(self, buffer: np.ndarray, capacity: int) -> np.ndarray:
        """A larger open buffer carrying the current rows.

        Growth is geometric and the grown buffer is kept for the cache's
        lifetime, so a steady stream of speculative verify rounds amortizes
        to zero allocations per round.
        """
        capacity = max(capacity, 2 * buffer.shape[1])
        grown = np.zeros((self.num_heads, capacity, self.head_dim))
        grown[:, : self._open_len] = buffer[:, : self._open_len]
        return grown

    def hold_seals(self) -> None:
        """Defer page sealing: subsequent appends stay in full precision.

        The speculative verify pass appends ``k + 1`` tokens that may be
        partially rolled back; holding the seals keeps every appended row in
        the (grown) open buffer so :meth:`truncate_to` is exact — no sealed
        page has to be reopened through the lossy OVP round-trip.  Call
        :meth:`flush_seals` once the accepted length is settled.
        """
        self._hold_seals = True

    def flush_seals(self) -> None:
        """Leave deferred-seal mode, sealing any full pages accumulated.

        Pages seal from exactly the same full-precision rows a non-deferred
        append sequence would have sealed, so the packed byte streams are
        bitwise identical to the eager-sealing path.
        """
        self._hold_seals = False
        size = self.config.page_size
        offset = 0
        while self._open_len - offset >= size:
            self._seal_page(
                self._open_k[:, offset:offset + size],
                self._open_v[:, offset:offset + size],
            )
            offset += size
        if offset:
            remainder = self._open_len - offset
            self._open_k[:, :remainder] = self._open_k[:, offset:self._open_len]
            self._open_v[:, :remainder] = self._open_v[:, offset:self._open_len]
            self._open_len = remainder

    def truncate_to(self, num_tokens: int) -> None:
        """Roll the cache back to its first ``num_tokens`` timesteps.

        Speculative decoding appends draft tokens optimistically and rolls
        the rejected suffix back here.  Truncating to the current length is
        an exact no-op.  A cut inside the open page just shortens it; a cut
        inside a sealed page reopens that page *copy-on-write* — the payload
        is decoded (never mutated, so pool-shared pages stay valid for every
        other holder) and the kept rows move into the open buffer — then this
        cache's references to the dropped pages are released.
        """
        num_tokens = int(num_tokens)
        if not 0 <= num_tokens <= self._seq_len:
            raise ServingError(
                f"cannot truncate a {self._seq_len}-token cache to {num_tokens}"
            )
        if num_tokens == self._seq_len:
            return
        size = self.config.page_size
        sealed_tokens = len(self._sealed_k) * size
        if num_tokens >= sealed_tokens:
            # The cut lands in the open page: forget the tail rows (stale
            # values beyond _open_len are never read and get overwritten).
            self._open_len = num_tokens - sealed_tokens
            self._seq_len = num_tokens
            return
        keep_pages, tail = divmod(num_tokens, size)
        kept_k = kept_v = None
        if tail:
            decoded = self.pool.decoded_many(
                [self._sealed_k[keep_pages], self._sealed_v[keep_pages]], self.codec
            )
            kept_k = decoded[0][:, :tail].copy()
            kept_v = decoded[1][:, :tail].copy()
        for handle in self._sealed_k[keep_pages:]:
            self.pool.release(handle)
        for handle in self._sealed_v[keep_pages:]:
            self.pool.release(handle)
        del self._sealed_k[keep_pages:]
        del self._sealed_v[keep_pages:]
        if tail:
            self._open_k[:, :tail] = kept_k
            self._open_v[:, :tail] = kept_v
        self._open_len = tail
        self._seq_len = num_tokens

    # ------------------------------------------------------------------ #
    # Attend (decode-once-on-attend)
    # ------------------------------------------------------------------ #
    def kv(self) -> Tuple[np.ndarray, np.ndarray]:
        """Decode and return the full ``(K, V)``, each ``(heads, seq, dim)``."""
        if self._seq_len == 0:
            raise ServingError("KV cache is empty; append before attending")
        decoded = self.pool.decoded_many(self._sealed_k + self._sealed_v, self.codec)
        split = len(self._sealed_k)
        return (
            self._finish(decoded[:split], self._open_k),
            self._finish(decoded[split:], self._open_v),
        )

    @classmethod
    def kv_many(cls, caches: Sequence["LayerKVCache"]) -> List[Tuple[np.ndarray, np.ndarray]]:
        """``kv()`` for many caches with one batched page-pool fetch.

        A continuous-batching decode round attends every active slot against
        this layer; fetching each slot's pages separately pays the pool/codec
        per-call overhead ``2 × slots`` times.  All pages of one pool are
        fetched in a single pass instead (hits straight from the decoded LRU,
        misses in one batched codec decode per page shape), then each cache's
        K/V are reassembled in order.  (:meth:`MultiHeadAttention.forward_incremental
        <repro.nn.attention.MultiHeadAttention.forward_incremental>` picks
        this up by duck-typing, keeping ``repro.nn`` free of serve imports.)

        All caches must agree on quantize mode and OVP width — a decode round
        mixing packed and reference caches (or 4- and 8-bit codecs) is a
        configuration error and raises :class:`ServingError` up front.
        """
        if not caches:
            raise ServingError("kv_many needs at least one cache; nothing to attend")
        quantize_modes = {cache.config.quantize for cache in caches}
        if len(quantize_modes) != 1:
            raise ServingError(
                "kv_many cannot mix quantized and reference-mode caches; "
                "split the decode round by cache config"
            )
        if caches[0].config.quantize:
            widths = {cache.config.bits for cache in caches}
            if len(widths) != 1:
                raise ServingError(
                    f"kv_many cannot mix OVP widths {sorted(widths)}; "
                    "split the decode round by cache config"
                )
        for cache in caches:
            if cache.seq_len == 0:
                raise ServingError("KV cache is empty; append before attending")
        decoded_k: List[Optional[List[np.ndarray]]] = [None] * len(caches)
        decoded_v: List[Optional[List[np.ndarray]]] = [None] * len(caches)
        by_pool: Dict[int, List[int]] = {}
        for index, cache in enumerate(caches):
            by_pool.setdefault(id(cache.pool), []).append(index)
        for indices in by_pool.values():
            pool = caches[indices[0]].pool
            codec = next(
                (caches[i].codec for i in indices if caches[i].codec is not None), None
            )
            handles: List[PageHandle] = []
            for i in indices:
                handles.extend(caches[i]._sealed_k)
                handles.extend(caches[i]._sealed_v)
            arrays = pool.decoded_many(handles, codec)
            offset = 0
            for i in indices:
                nk, nv = len(caches[i]._sealed_k), len(caches[i]._sealed_v)
                decoded_k[i] = arrays[offset:offset + nk]
                decoded_v[i] = arrays[offset + nk:offset + nk + nv]
                offset += nk + nv
        return [
            (
                cache._finish(decoded_k[i], cache._open_k, reuse="k"),
                cache._finish(decoded_v[i], cache._open_v, reuse="v"),
            )
            for i, cache in enumerate(caches)
        ]

    def _finish(
        self,
        decoded_pages: List[np.ndarray],
        open_buffer: np.ndarray,
        reuse: Optional[str] = None,
    ) -> np.ndarray:
        """Concatenate decoded sealed pages with the open-page rows.

        Callers only read the assembled K/V within one attend, so exposing a
        view of the reusable open buffer (rather than a copy) is safe.  The
        batched round path passes ``reuse`` ("k"/"v") to assemble into this
        cache's persistent buffer instead of a fresh ``np.concatenate`` —
        same copies, no per-layer-per-round allocation; the returned view is
        only valid until the next round assembles over it.
        """
        parts = list(decoded_pages)
        if self._open_len:
            parts.append(open_buffer[:, : self._open_len])
        if len(parts) == 1:
            return parts[0]
        if reuse is None:
            return np.concatenate(parts, axis=1)
        total = sum(part.shape[1] for part in parts)
        buffer = self._assembly.get(reuse)
        if buffer is None or buffer.shape[1] < total:
            capacity = max(total, 2 * (0 if buffer is None else buffer.shape[1]))
            buffer = np.empty((self.num_heads, capacity, self.head_dim))
            self._assembly[reuse] = buffer
        offset = 0
        for part in parts:
            buffer[:, offset : offset + part.shape[1]] = part
            offset += part.shape[1]
        return buffer[:, :total]

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def seq_len(self) -> int:
        """Cached timesteps."""
        return self._seq_len

    @property
    def num_sealed_pages(self) -> int:
        """Sealed (quantized) pages currently held, counting K and V pages."""
        return len(self._sealed_k) + len(self._sealed_v)

    @property
    def num_shared_pages(self) -> int:
        """Held pages that other sequences (or the prefix index) also reference."""
        return sum(1 for h in self._sealed_k if h.shared) + sum(
            1 for h in self._sealed_v if h.shared
        )

    @property
    def kv_elements(self) -> int:
        """Cached scalars: K and V over every head and timestep."""
        return 2 * self.num_heads * self._seq_len * self.head_dim

    @property
    def fp32_bytes(self) -> int:
        """Bytes an unquantized fp32 cache would need for the same tokens."""
        return self.kv_elements * 4

    @property
    def cache_bytes(self) -> int:
        """Resident cache footprint: packed sealed pages + fp32 open rows.

        Full-precision storage (open rows, and sealed pages in the
        ``quantize=False`` reference mode) is charged at fp32 — the dtype a
        production fp cache would hold — even though NumPy computes in
        float64.  Shared pages are charged to every holder (the per-sequence
        view); pool-level dedup shows up in the pool's own gauges.
        """
        sealed = sum(h.nbytes_resident for h in self._sealed_k)
        sealed += sum(h.nbytes_resident for h in self._sealed_v)
        open_elems = 2 * self.num_heads * self._open_len * self.head_dim
        return int(sealed + open_elems * 4)


class SequenceKVCache:
    """Per-sequence KV cache: one :class:`LayerKVCache` per decoder layer.

    All layers share one codec instance (the lookup tables are immutable) and
    one :class:`PagePool` (a private pool is built when none is passed), so
    building a cache per admitted request stays cheap.
    """

    def __init__(self, num_layers: int, num_heads: int, head_dim: int,
                 config: Optional[KVCacheConfig] = None,
                 pool: Optional[PagePool] = None) -> None:
        if num_layers < 1:
            raise ServingError("a KV cache needs at least one layer")
        self.config = config or KVCacheConfig()
        self.pool = pool if pool is not None else self.config.make_pool()
        codec = self.config.make_codec() if self.config.quantize else None
        self._layers = [
            LayerKVCache(num_heads, head_dim, self.config, codec=codec, pool=self.pool)
            for _ in range(num_layers)
        ]

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def layer(self, index: int) -> LayerKVCache:
        """The cache of decoder layer ``index``."""
        return self._layers[index]

    @property
    def seq_len(self) -> int:
        """Cached timesteps (identical across layers by construction)."""
        return self._layers[0].seq_len

    def attach_prefix(
        self,
        layers_k: Sequence[Sequence[PageHandle]],
        layers_v: Sequence[Sequence[PageHandle]],
        num_tokens: int,
    ) -> None:
        """Adopt a shared sealed-page prefix on every layer (copy-on-write).

        ``layers_k[layer]``/``layers_v[layer]`` list the pages in page order,
        as returned by :meth:`PagePool.lookup_prefix`.
        """
        if len(layers_k) != self.num_layers or len(layers_v) != self.num_layers:
            raise ServingError(
                f"prefix covers {len(layers_k)} layers; cache has {self.num_layers}"
            )
        for layer, k_handles, v_handles in zip(self._layers, layers_k, layers_v):
            layer.attach(k_handles, v_handles, num_tokens)

    def release(self) -> None:
        """Drop every layer's page references (call on retire/abort)."""
        for layer in self._layers:
            layer.release()

    def hold_seals(self) -> None:
        """Defer page sealing on every layer (speculative verify append)."""
        for layer in self._layers:
            layer.hold_seals()

    def flush_seals(self) -> None:
        """Leave deferred-seal mode on every layer, sealing full pages."""
        for layer in self._layers:
            layer.flush_seals()

    def truncate_to(self, num_tokens: int) -> None:
        """Roll every layer back to ``num_tokens`` timesteps (see
        :meth:`LayerKVCache.truncate_to`); refcount-safe against shared
        sealed pages, exact no-op at the current length."""
        for layer in self._layers:
            layer.truncate_to(num_tokens)

    @property
    def fp32_bytes(self) -> int:
        """Bytes an fp32 cache would need for the currently cached tokens."""
        return sum(layer.fp32_bytes for layer in self._layers)

    @property
    def cache_bytes(self) -> int:
        """Resident footprint: OVP-packed sealed pages + fp32 open pages."""
        return sum(layer.cache_bytes for layer in self._layers)

    @property
    def compression_ratio(self) -> float:
        """fp32 footprint / resident footprint (→ ~8 for fully-sealed 4-bit)."""
        resident = self.cache_bytes
        return self.fp32_bytes / resident if resident else 0.0

    def memory_summary(self) -> dict:
        """Footprint numbers for stats/demos."""
        return {
            "seq_len": self.seq_len,
            "kv_fp32_bytes": self.fp32_bytes,
            "kv_cache_bytes": self.cache_bytes,
            "kv_compression": round(self.compression_ratio, 2),
            "sealed_pages": sum(l.num_sealed_pages for l in self._layers),
            "shared_pages": sum(l.num_shared_pages for l in self._layers),
        }


def validate_token_budget(model, request) -> None:
    """Reject a generation request that would outgrow ``model``'s positions.

    Shared by the continuous scheduler (per-request failure at admission) and
    the whole-batch generation path (batch failure), so the two can never
    drift.  Models without a ``config.max_positions`` are not pre-checked;
    they fail at decode time instead, which callers already isolate.

    The final generated token is returned but never fed back through the
    embedding, so a request embeds ``seq_len + max_new_tokens - 1`` positions.
    """
    limit = getattr(getattr(model, "config", None), "max_positions", None)
    if limit is not None and request.seq_len + request.max_new_tokens - 1 > limit:
        raise ServingError(
            f"request {request.request_id!r}: prompt ({request.seq_len}) + "
            f"max_new_tokens ({request.max_new_tokens}) exceeds the model's "
            f"{limit} positions"
        )


def cache_for_model(
    model,
    config: Optional[KVCacheConfig] = None,
    pool: Optional[PagePool] = None,
) -> SequenceKVCache:
    """Build an empty cache matching a causal LM's decoder geometry.

    Accepts a :class:`~repro.models.zoo.CausalLM` (or any module exposing a
    ``backbone``) or a bare decoder with ``layer_i.self_attention`` children.
    Pass ``pool`` to share one :class:`PagePool` across sequences (the
    scheduler does); otherwise the cache gets a private pool.
    """
    backbone = getattr(model, "backbone", model)
    num_layers = getattr(backbone, "num_layers", None)
    first_layer = getattr(backbone, "layer_0", None)
    attention = getattr(first_layer, "self_attention", None)
    if num_layers is None or attention is None:
        raise ServingError(
            "model has no decoder backbone with self-attention layers; "
            "KV caches require a causal (decoder-only) LM"
        )
    return SequenceKVCache(
        num_layers=int(num_layers),
        num_heads=attention.num_heads,
        head_dim=attention.head_dim,
        config=config,
        pool=pool,
    )
