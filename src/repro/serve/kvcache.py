"""OVP-quantized paged KV caches for incremental LM decode.

The KV cache is the dominant memory consumer of LM serving: every decoded
token appends one K and one V vector per layer per head, and a full-precision
cache grows as ``4 bytes × 2 × layers × heads × head_dim`` per token.  OVP
encoding is a natural fit because it is *memory aligned* — a packed page is a
plain byte stream with no side tables, so paging the cache keeps the exact
DRAM layout the paper's accelerator assumes for weights.

Layout
------
Each sequence owns one :class:`SequenceKVCache`; each layer of the sequence
owns a :class:`LayerKVCache` holding

* a list of *sealed pages* — ``page_size`` timesteps of K (and V) quantized
  on append into one :class:`~repro.core.ovp.PackedOVPTensor` per page, with
  a per-page 3σ scale (the paper's initial-scale rule; no MSE search on the
  hot append path);
* one *open page* — the most recent ``< page_size`` timesteps kept in full
  precision until the page fills.

``kv()`` decodes the sealed pages through the vectorized codec and
concatenates the open page — decode-on-attend, so resident memory stays at
the packed footprint.  ``quantize=False`` keeps sealed pages in full
precision; this reference mode is what the incremental-decode equivalence
tests compare against full recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ovp import OVPairCodec, PackedOVPTensor
from repro.core.quantizer import OVPQuantizerConfig
from repro.serve.requests import ServingError

__all__ = [
    "KVCacheConfig",
    "LayerKVCache",
    "SequenceKVCache",
    "cache_for_model",
]


@dataclass(frozen=True)
class KVCacheConfig:
    """How a sequence's K/V pages are stored.

    Parameters
    ----------
    bits:
        OVP precision of sealed pages: 4 (int4 + E2M1) or 8 (int8 + E4M3).
    page_size:
        Timesteps per page.  Smaller pages seal sooner (less full-precision
        residency) but pay per-page scale/encode overhead more often.
    quantize:
        ``False`` keeps sealed pages in full precision — the bit-exact
        reference mode used by the equivalence tests.
    """

    bits: int = 4
    page_size: int = 16
    quantize: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (4, 8):
            raise ServingError("KV caches support 4- and 8-bit OVP only")
        if self.page_size < 1:
            raise ServingError("page_size must be >= 1")

    def make_codec(self) -> OVPairCodec:
        """Codec for sealed pages (paper defaults for the chosen width)."""
        normal_dtype = "int4" if self.bits == 4 else "int8"
        normal, outlier, bias = OVPQuantizerConfig(normal_dtype=normal_dtype).resolve()
        return OVPairCodec(normal, outlier, bias)


#: A sealed page: packed byte stream when quantizing, float array otherwise.
_SealedPage = Union[PackedOVPTensor, np.ndarray]


class LayerKVCache:
    """Paged K/V store of one layer of one sequence."""

    def __init__(self, num_heads: int, head_dim: int, config: KVCacheConfig,
                 codec: Optional[OVPairCodec] = None) -> None:
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.config = config
        self.codec = codec if codec is not None else (
            config.make_codec() if config.quantize else None
        )
        self._sealed_k: List[_SealedPage] = []
        self._sealed_v: List[_SealedPage] = []
        # Open page: a preallocated (num_heads, page_size, head_dim) buffer
        # holding the newest _open_len (< page_size) timesteps, so appends
        # write rows in place instead of reallocating per step.
        self._open_k = np.zeros((self.num_heads, config.page_size, self.head_dim))
        self._open_v = np.zeros((self.num_heads, config.page_size, self.head_dim))
        self._open_len = 0
        self._seq_len = 0

    # ------------------------------------------------------------------ #
    # Append (quantize-on-append)
    # ------------------------------------------------------------------ #
    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append new timesteps, sealing pages as they fill.

        ``k_new``/``v_new`` have shape ``(num_heads, t_new, head_dim)``;
        prefill appends the whole prompt at once, decode appends one step.
        """
        k_new = np.asarray(k_new, dtype=np.float64)
        v_new = np.asarray(v_new, dtype=np.float64)
        expected = (self.num_heads, k_new.shape[1] if k_new.ndim == 3 else -1, self.head_dim)
        if k_new.shape != expected or v_new.shape != expected:
            raise ServingError(
                f"K/V step shapes {k_new.shape}/{v_new.shape} do not match "
                f"(num_heads={self.num_heads}, t, head_dim={self.head_dim})"
            )
        size = self.config.page_size
        offset, total = 0, k_new.shape[1]
        while offset < total:
            take = min(size - self._open_len, total - offset)
            stop = self._open_len + take
            self._open_k[:, self._open_len:stop] = k_new[:, offset:offset + take]
            self._open_v[:, self._open_len:stop] = v_new[:, offset:offset + take]
            self._open_len = stop
            offset += take
            if self._open_len == size:
                self._seal_open_page()
                self._open_len = 0
        self._seq_len += total

    def _seal_open_page(self) -> None:
        if not self.config.quantize:
            self._sealed_k.append(self._open_k.copy())
            self._sealed_v.append(self._open_v.copy())
            return
        if self._open_k.size % 2 == 0:
            # K and V pages seal together through one codec pass.
            pages = self.codec.encode_tensor_batch(
                [self._open_k, self._open_v],
                [self._page_scale(self._open_k), self._page_scale(self._open_v)],
                self.codec.normal_dtype.max_value,
            )
            self._sealed_k.append(pages[0])
            self._sealed_v.append(pages[1])
            return
        self._sealed_k.append(self._seal(self._open_k))
        self._sealed_v.append(self._seal(self._open_v))

    def _seal(self, page: np.ndarray) -> _SealedPage:
        scale = self._page_scale(page)
        return self.codec.encode_tensor(page, scale, self.codec.normal_dtype.max_value)

    def _page_scale(self, page: np.ndarray) -> float:
        """3σ scale rule: normals span 3σ, anything beyond is an OVP outlier."""
        sigma = float(np.std(page))
        if sigma == 0.0:
            return max(float(np.max(np.abs(page))), 1.0) / self.codec.normal_dtype.max_value
        return 3.0 * sigma / self.codec.normal_dtype.max_value

    # ------------------------------------------------------------------ #
    # Attend (decode-on-attend)
    # ------------------------------------------------------------------ #
    def kv(self) -> Tuple[np.ndarray, np.ndarray]:
        """Decode and return the full ``(K, V)``, each ``(heads, seq, dim)``."""
        if self._seq_len == 0:
            raise ServingError("KV cache is empty; append before attending")
        if self.config.quantize and self._sealed_k:
            decoded_k = list(self.codec.decode_tensor_batch(self._sealed_k))
            decoded_v = list(self.codec.decode_tensor_batch(self._sealed_v))
        else:
            decoded_k, decoded_v = list(self._sealed_k), list(self._sealed_v)
        return self._finish(decoded_k, self._open_k), self._finish(decoded_v, self._open_v)

    @classmethod
    def kv_many(cls, caches: Sequence["LayerKVCache"]) -> List[Tuple[np.ndarray, np.ndarray]]:
        """``kv()`` for many caches with one batched page decode.

        A continuous-batching decode round attends every active slot against
        this layer; decoding each slot's pages separately pays the codec's
        per-call overhead ``2 × slots × pages`` times.  All sealed pages of
        one geometry decode in a single pass instead, then each cache's K/V
        are reassembled in order.  (:meth:`MultiHeadAttention.forward_incremental
        <repro.nn.attention.MultiHeadAttention.forward_incremental>` picks
        this up by duck-typing, keeping ``repro.nn`` free of serve imports.)
        """
        jobs = []  # (cache_index, 0 for K / 1 for V, page)
        for index, cache in enumerate(caches):
            if not cache.config.quantize:
                continue
            jobs.extend((index, 0, page) for page in cache._sealed_k)
            jobs.extend((index, 1, page) for page in cache._sealed_v)
        decoded = {}
        if jobs:
            by_shape = {}
            for job_id, (_, _, page) in enumerate(jobs):
                by_shape.setdefault(page.shape, []).append(job_id)
            codec = next(c.codec for c in caches if c.codec is not None)
            for job_ids in by_shape.values():
                pages = codec.decode_tensor_batch([jobs[j][2] for j in job_ids])
                for row, job_id in enumerate(job_ids):
                    decoded[job_id] = pages[row]
        per_cache = [([], []) for _ in caches]
        for job_id, (index, which, _) in enumerate(jobs):
            per_cache[index][which].append(decoded[job_id])
        results = []
        for index, cache in enumerate(caches):
            if not cache.config.quantize:
                results.append(cache.kv())
            else:
                if cache.seq_len == 0:
                    raise ServingError("KV cache is empty; append before attending")
                results.append(
                    (
                        cache._finish(per_cache[index][0], cache._open_k),
                        cache._finish(per_cache[index][1], cache._open_v),
                    )
                )
        return results

    def _finish(self, decoded_pages: List[np.ndarray], open_buffer: np.ndarray) -> np.ndarray:
        """Concatenate decoded sealed pages with the open-page rows.

        Callers only read the assembled K/V within one attend, so exposing a
        view of the reusable open buffer (rather than a copy) is safe.
        """
        parts = list(decoded_pages)
        if self._open_len:
            parts.append(open_buffer[:, : self._open_len])
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def seq_len(self) -> int:
        """Cached timesteps."""
        return self._seq_len

    @property
    def num_sealed_pages(self) -> int:
        """Sealed (quantized) pages currently held, counting K and V pages."""
        return len(self._sealed_k) + len(self._sealed_v)

    @property
    def kv_elements(self) -> int:
        """Cached scalars: K and V over every head and timestep."""
        return 2 * self.num_heads * self._seq_len * self.head_dim

    @property
    def fp32_bytes(self) -> int:
        """Bytes an unquantized fp32 cache would need for the same tokens."""
        return self.kv_elements * 4

    @property
    def cache_bytes(self) -> int:
        """Resident cache footprint: packed sealed pages + fp32 open rows.

        Full-precision storage (open rows, and sealed pages in the
        ``quantize=False`` reference mode) is charged at fp32 — the dtype a
        production fp cache would hold — even though NumPy computes in
        float64.
        """
        sealed = sum(
            page.nbytes if isinstance(page, PackedOVPTensor) else page.size * 4
            for page in self._sealed_k + self._sealed_v
        )
        open_elems = 2 * self.num_heads * self._open_len * self.head_dim
        return int(sealed + open_elems * 4)


class SequenceKVCache:
    """Per-sequence KV cache: one :class:`LayerKVCache` per decoder layer.

    All layers share one codec instance (the lookup tables are immutable), so
    building a cache per admitted request stays cheap.
    """

    def __init__(self, num_layers: int, num_heads: int, head_dim: int,
                 config: Optional[KVCacheConfig] = None) -> None:
        if num_layers < 1:
            raise ServingError("a KV cache needs at least one layer")
        self.config = config or KVCacheConfig()
        codec = self.config.make_codec() if self.config.quantize else None
        self._layers = [
            LayerKVCache(num_heads, head_dim, self.config, codec=codec)
            for _ in range(num_layers)
        ]

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def layer(self, index: int) -> LayerKVCache:
        """The cache of decoder layer ``index``."""
        return self._layers[index]

    @property
    def seq_len(self) -> int:
        """Cached timesteps (identical across layers by construction)."""
        return self._layers[0].seq_len

    @property
    def fp32_bytes(self) -> int:
        """Bytes an fp32 cache would need for the currently cached tokens."""
        return sum(layer.fp32_bytes for layer in self._layers)

    @property
    def cache_bytes(self) -> int:
        """Resident footprint: OVP-packed sealed pages + fp32 open pages."""
        return sum(layer.cache_bytes for layer in self._layers)

    @property
    def compression_ratio(self) -> float:
        """fp32 footprint / resident footprint (→ ~8 for fully-sealed 4-bit)."""
        resident = self.cache_bytes
        return self.fp32_bytes / resident if resident else 0.0

    def memory_summary(self) -> dict:
        """Footprint numbers for stats/demos."""
        return {
            "seq_len": self.seq_len,
            "kv_fp32_bytes": self.fp32_bytes,
            "kv_cache_bytes": self.cache_bytes,
            "kv_compression": round(self.compression_ratio, 2),
            "sealed_pages": sum(l.num_sealed_pages for l in self._layers),
        }


def validate_token_budget(model, request) -> None:
    """Reject a generation request that would outgrow ``model``'s positions.

    Shared by the continuous scheduler (per-request failure at admission) and
    the whole-batch generation path (batch failure), so the two can never
    drift.  Models without a ``config.max_positions`` are not pre-checked;
    they fail at decode time instead, which callers already isolate.

    The final generated token is returned but never fed back through the
    embedding, so a request embeds ``seq_len + max_new_tokens - 1`` positions.
    """
    limit = getattr(getattr(model, "config", None), "max_positions", None)
    if limit is not None and request.seq_len + request.max_new_tokens - 1 > limit:
        raise ServingError(
            f"request {request.request_id!r}: prompt ({request.seq_len}) + "
            f"max_new_tokens ({request.max_new_tokens}) exceeds the model's "
            f"{limit} positions"
        )


def cache_for_model(model, config: Optional[KVCacheConfig] = None) -> SequenceKVCache:
    """Build an empty cache matching a causal LM's decoder geometry.

    Accepts a :class:`~repro.models.zoo.CausalLM` (or any module exposing a
    ``backbone``) or a bare decoder with ``layer_i.self_attention`` children.
    """
    backbone = getattr(model, "backbone", model)
    num_layers = getattr(backbone, "num_layers", None)
    first_layer = getattr(backbone, "layer_0", None)
    attention = getattr(first_layer, "self_attention", None)
    if num_layers is None or attention is None:
        raise ServingError(
            "model has no decoder backbone with self-attention layers; "
            "KV caches require a causal (decoder-only) LM"
        )
    return SequenceKVCache(
        num_layers=int(num_layers),
        num_heads=attention.num_heads,
        head_dim=attention.head_dim,
        config=config,
    )
