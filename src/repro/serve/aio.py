"""asyncio front-end over the synchronous serving engine.

Concurrent client coroutines ``await server.infer(request)``; a single
scheduler task coalesces their requests through the shared
:class:`~repro.serve.batcher.MicroBatcher` and resolves one future per
request when its micro-batch completes.  Compute runs inline on the event
loop (the NumPy models are small and release-free), so ordering is
deterministic: requests queued within one ``max_wait`` window of the same
batch key share a forward pass.

Usage::

    async with AsyncServer(ServingEngine(...)) as server:
        results = await asyncio.gather(*(server.infer(r) for r in requests))
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.serve.engine import ServingEngine
from repro.serve.requests import InferenceRequest, InferenceResult, ServingError

__all__ = ["AsyncServer"]


class AsyncServer:
    """Async façade: one scheduler task, one future per in-flight request."""

    def __init__(self, engine: Optional[ServingEngine] = None) -> None:
        self.engine = engine or ServingEngine()
        self._futures: Dict[str, "asyncio.Future[InferenceResult]"] = {}
        self._wake: Optional[asyncio.Event] = None
        self._scheduler: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "AsyncServer":
        """Start the scheduler task (idempotent)."""
        if self._scheduler is None:
            self._wake = asyncio.Event()
            self._scheduler = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain outstanding requests, then cancel the scheduler."""
        if self._scheduler is None:
            return
        while self._futures:
            await asyncio.sleep(0)
            self._drain_ready(force=True)
        self._scheduler.cancel()
        try:
            await self._scheduler
        except asyncio.CancelledError:
            pass
        self._scheduler = None
        self._wake = None

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    async def infer(self, request: InferenceRequest) -> InferenceResult:
        """Queue ``request`` and await its result."""
        if self._scheduler is None:
            raise ServingError("AsyncServer is not started; use 'async with' or start()")
        if request.request_id in self._futures:
            raise ServingError(
                f"request id {request.request_id!r} is already in flight"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[InferenceResult]" = loop.create_future()
        self._futures[request.request_id] = future
        self.engine.submit(request)
        self._wake.set()
        return await future

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet resolved."""
        return len(self._futures)

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        while True:
            try:
                if self.engine.pending == 0:
                    self._wake.clear()
                    await self._wake.wait()
                # Let every coroutine that is ready to submit do so before the
                # batch window is measured — this is what coalesces concurrent
                # clients into one forward pass.
                await asyncio.sleep(0)
                wait = self.engine.batcher.next_wait()
                if wait:
                    await asyncio.sleep(wait)
                self._drain_ready(force=False)
                # Anything still queued is younger than max_wait; the loop
                # comes back around and sleeps out the rest of its window.
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - defensive guard
                # A scheduler bug must never strand clients on futures that
                # will never resolve: fail everything in flight and carry on.
                error = ServingError(f"serving scheduler error: {exc}")
                for future in self._futures.values():
                    if not future.done():
                        future.set_exception(error)
                self._futures.clear()

    def _drain_ready(self, force: bool) -> None:
        while True:
            results = self.engine.step(force=force)
            failures = self.engine.take_failures()
            if not results and not failures:
                return
            for result in results:
                # Pop from the sync registry too, so async serving does not
                # accumulate results nobody will fetch via engine.result().
                self.engine.discard_result(result.request_id)
                future = self._futures.pop(result.request_id, None)
                if future is not None and not future.done():
                    future.set_result(result)
            for request_id, exc in failures:
                future = self._futures.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_exception(
                        ServingError(f"request {request_id!r} failed: {exc}")
                    )
