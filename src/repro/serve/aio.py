"""asyncio front-end over the synchronous serving engine.

Concurrent client coroutines ``await server.infer(request)``; a single
scheduler task coalesces their requests through the shared
:class:`~repro.serve.batcher.MicroBatcher` and resolves one future per
request when its micro-batch completes.  Compute runs inline on the event
loop (the NumPy models are small and release-free), so ordering is
deterministic: requests queued within one ``max_wait`` window of the same
batch key share a forward pass.

LM generation requests additionally stream:
``async for chunk in server.stream(request)`` yields one
:class:`~repro.serve.sampling.TokenChunk` per sampled token as the decode
rounds produce them, ending with the chunk whose ``finish_reason`` is set;
``await server.cancel(request_id)`` aborts an in-flight request (its stream
terminates with ``finish_reason="aborted"`` and the KV pages free
immediately).

Usage::

    async with AsyncServer(ServingEngine(...)) as server:
        results = await asyncio.gather(*(server.infer(r) for r in requests))
        async for chunk in server.stream(gen_request):
            print(chunk.token_id, chunk.finish_reason)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import AsyncIterator, Dict, Optional

import numpy as np

from repro.serve.engine import ServingEngine
from repro.serve.errors import is_retryable
from repro.serve.requests import InferenceRequest, InferenceResult, ServingError
from repro.serve.sampling import TokenChunk

__all__ = ["AsyncServer", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with jittered exponential backoff for transient failures.

    Applies to requests that fail with a *retryable* error (see
    :func:`repro.serve.errors.is_retryable` — injected faults, queue-full /
    shed admission rejections); terminal errors (malformed requests, unknown models)
    always propagate immediately, as do failures of streaming requests
    (tokens may already have been delivered, and replaying a stream from
    zero would emit duplicate chunks).

    Attempt ``n`` (0-based) waits ``backoff_base_s * backoff_multiplier**n``
    seconds, stretched by up to ``jitter`` (fraction) drawn from a generator
    seeded with ``seed`` — deterministic for tests, decorrelated between
    servers in real fleets that pass distinct seeds.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1 or self.jitter < 0:
            raise ServingError(
                "backoff_base_s/jitter must be >= 0 and backoff_multiplier >= 1"
            )

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (0-based), jitter applied."""
        base = self.backoff_base_s * self.backoff_multiplier ** attempt
        return base * (1.0 + self.jitter * float(rng.random()))


class AsyncServer:
    """Async façade: one scheduler task, one future per in-flight request.

    ``retry=RetryPolicy(...)`` resubmits requests that fail with retryable
    errors (bounded attempts, jittered exponential backoff); ``None`` (the
    default) propagates every failure immediately.
    """

    def __init__(
        self,
        engine: Optional[ServingEngine] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.engine = engine or ServingEngine()
        self.retry = retry
        self._retry_rng = (
            np.random.default_rng(retry.seed) if retry is not None else None
        )
        self._futures: Dict[str, "asyncio.Future[InferenceResult]"] = {}
        # The original request objects and per-request attempt counts, kept
        # while in flight so a retryable failure can resubmit verbatim.
        self._requests: Dict[str, InferenceRequest] = {}
        self._attempts: Dict[str, int] = {}
        # Requests with an open stream() consumer: their buffered TokenChunks
        # must survive result delivery until the consumer drains them.
        self._streaming: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._scheduler: Optional["asyncio.Task[None]"] = None

    def _forget(self, request_id: str) -> None:
        """Drop the retry bookkeeping of a resolved request."""
        self._requests.pop(request_id, None)
        self._attempts.pop(request_id, None)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "AsyncServer":
        """Start the scheduler task (idempotent)."""
        if self._scheduler is None:
            self._wake = asyncio.Event()
            self._scheduler = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain outstanding requests, then cancel the scheduler."""
        if self._scheduler is None:
            return
        while self._futures:
            await asyncio.sleep(0)
            self._drain_ready(force=True)
        self._scheduler.cancel()
        try:
            await self._scheduler
        except asyncio.CancelledError:
            pass
        self._scheduler = None
        self._wake = None

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def _register(
        self, request: InferenceRequest, allow_retry: bool = True
    ) -> "asyncio.Future[InferenceResult]":
        if self._scheduler is None:
            raise ServingError("AsyncServer is not started; use 'async with' or start()")
        if request.request_id in self._futures:
            raise ServingError(
                f"request id {request.request_id!r} is already in flight"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[InferenceResult]" = loop.create_future()
        self._futures[request.request_id] = future
        self._requests[request.request_id] = request
        try:
            self.engine.submit(request)
        except Exception as exc:
            # A retryable admission rejection (queue full, shed) re-enters
            # through backoff when a retry policy is armed — clients racing a
            # bounded queue get absorbed instead of bounced.  Everything else
            # (and retry-less servers) surfaces synchronously: the request
            # never entered the engine.
            if not allow_retry or not self._schedule_retry(
                request.request_id, exc
            ):
                self._forget(request.request_id)
                del self._futures[request.request_id]
                raise
            return future
        self._wake.set()
        return future

    async def infer(self, request: InferenceRequest) -> InferenceResult:
        """Queue ``request`` and await its result."""
        return await self._register(request)

    async def stream(self, request: InferenceRequest) -> AsyncIterator[TokenChunk]:
        """Queue an LM generation request and yield its tokens as they decode.

        The generator ends after the chunk carrying a ``finish_reason``
        (``stop``/``length``/``aborted``/``error``); the yielded token ids
        concatenate to exactly the non-streamed ``generated_tokens``.  A
        request that fails before producing a terminal chunk raises the same
        :class:`ServingError` that :meth:`infer` would.
        """
        if not self.engine.continuous_batching:
            raise ServingError(
                "streaming requires continuous batching "
                "(ServingEngine(continuous_batching=True))"
            )
        # Streams never retry (delivered chunks cannot be unsent), so an
        # admission rejection must surface here rather than enter backoff.
        future = self._register(request, allow_retry=False)
        request_id = request.request_id
        self._streaming.add(request_id)
        try:
            while True:
                chunk = self.engine.next_chunk(request_id)
                if chunk is not None:
                    yield chunk
                    if chunk.finish_reason is not None:
                        return
                    continue
                if future.done():
                    # Failure futures raise here; a completed future with no
                    # terminal chunk left means the buffer was evicted — end.
                    future.result()
                    return
                # Let the scheduler task advance a decode round.
                self._wake.set()
                await asyncio.sleep(0)
        finally:
            self._streaming.discard(request_id)
            self._forget(request_id)
            leftover = self._futures.pop(request_id, None)
            if leftover is not None and not leftover.done():
                # The client abandoned the stream mid-generation: abort the
                # sequence so its slot and KV pages free immediately.
                self.engine.cancel(request_id)
                leftover.cancel()
            if future.done() and not future.cancelled():
                # A decode-round failure surfaces as the terminal "error"
                # chunk, so the future's ServingError may go unread — mark it
                # retrieved, or asyncio logs a phantom traceback at GC.
                future.exception()
            self.engine.discard_result(request_id)

    async def cancel(self, request_id: str) -> Optional[InferenceResult]:
        """Abort an in-flight request; returns its ``aborted`` result (or None).

        The request's slot, KV cache and page-pool references are released
        before this returns; an open ``stream()`` of the same request ends
        with ``finish_reason="aborted"``, and a pending ``infer()`` resolves
        to the aborted result.
        """
        result = self.engine.cancel(request_id)
        if result is None:
            return None
        self.engine.discard_result(
            request_id, drop_chunks=request_id not in self._streaming
        )
        self._forget(request_id)
        future = self._futures.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(result)
        if self._wake is not None:
            self._wake.set()
        return result

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet resolved."""
        return len(self._futures)

    def metrics_text(self) -> str:
        """Prometheus text exposition of the engine's serving metrics.

        Synchronous and lock-protected — an HTTP ``/metrics`` handler can
        call it from any task without touching the scheduler.
        """
        return self.engine.metrics_text()

    def phase_report(self, root: str = "round"):
        """Wall-clock phase breakdown of the engine's traced decode rounds."""
        return self.engine.phase_report(root=root)

    def health_report(self) -> dict:
        """``/healthz``-shaped snapshot of the wrapped engine.

        Synchronous like :meth:`metrics_text` — an HTTP ``/healthz`` handler
        can call it from any task without touching the scheduler loop.
        """
        return self.engine.health_report()

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        while True:
            try:
                if self.engine.pending == 0:
                    self._wake.clear()
                    await self._wake.wait()
                # Let every coroutine that is ready to submit do so before the
                # batch window is measured — this is what coalesces concurrent
                # clients into one forward pass.
                await asyncio.sleep(0)
                wait = self.engine.batcher.next_wait()
                if wait:
                    await asyncio.sleep(wait)
                self._drain_ready(force=False)
                # Anything still queued is younger than max_wait; the loop
                # comes back around and sleeps out the rest of its window.
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # A scheduler bug must never strand clients on futures that
                # will never resolve: fail everything in flight — with the
                # original exception chained as __cause__, so clients see
                # *what* broke, not just that something did — and carry on.
                for request_id, future in list(self._futures.items()):
                    if not future.done():
                        error = ServingError(f"serving scheduler error: {exc}")
                        error.__cause__ = exc
                        future.set_exception(error)
                    self._forget(request_id)
                self._futures.clear()

    def _drain_ready(self, force: bool) -> None:
        while True:
            results = self.engine.step(force=force)
            failures = self.engine.take_failures()
            if not results and not failures:
                return
            for result in results:
                # Pop from the sync registry too, so async serving does not
                # accumulate results nobody will fetch via engine.result();
                # an open stream() consumer still owns its buffered chunks.
                self.engine.discard_result(
                    result.request_id,
                    drop_chunks=result.request_id not in self._streaming,
                )
                self._forget(result.request_id)
                future = self._futures.pop(result.request_id, None)
                if future is not None and not future.done():
                    future.set_result(result)
            for request_id, exc in failures:
                self.engine.discard_result(
                    request_id, drop_chunks=request_id not in self._streaming
                )
                if self._schedule_retry(request_id, exc):
                    continue
                self._forget(request_id)
                future = self._futures.pop(request_id, None)
                if future is not None and not future.done():
                    error = ServingError(f"request {request_id!r} failed: {exc}")
                    error.__cause__ = exc
                    future.set_exception(error)

    # ------------------------------------------------------------------ #
    # Retry
    # ------------------------------------------------------------------ #
    def _schedule_retry(self, request_id: str, exc: Exception) -> bool:
        """Resubmit a retryably-failed request after backoff (True when scheduled).

        Streaming requests never retry: chunks already delivered cannot be
        unsent, and a replay would re-stream them from index zero.
        """
        policy = self.retry
        if policy is None or not is_retryable(exc):
            return False
        if request_id in self._streaming:
            return False
        future = self._futures.get(request_id)
        request = self._requests.get(request_id)
        if future is None or future.done() or request is None:
            return False
        attempt = self._attempts.get(request_id, 0)
        if attempt >= policy.max_retries:
            return False
        self._attempts[request_id] = attempt + 1
        delay = policy.delay_for(attempt, self._retry_rng)
        asyncio.get_running_loop().create_task(self._resubmit(request, delay))
        return True

    async def _resubmit(self, request: InferenceRequest, delay: float) -> None:
        await asyncio.sleep(delay)
        request_id = request.request_id
        future = self._futures.get(request_id)
        if future is None or future.done():
            return  # resolved (e.g. cancelled) while backing off
        try:
            self.engine.submit(request)
        except Exception as exc:
            # Rejected again at admission (queue still full) with the retry
            # budget line already consumed by _schedule_retry — loop back
            # through it for the remaining attempts, else fail the future.
            if self._schedule_retry(request_id, exc):
                return
            self._forget(request_id)
            self._futures.pop(request_id, None)
            error = ServingError(f"request {request_id!r} failed: {exc}")
            error.__cause__ = exc
            future.set_exception(error)
            return
        if self._wake is not None:
            self._wake.set()
