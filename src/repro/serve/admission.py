"""Admission control policy for the serving scheduler.

An :class:`AdmissionPolicy` bounds the work a scheduler accepts and orders
the work it holds:

* ``max_queue_depth`` caps the number of queued (not yet slotted) requests;
  submissions past the cap raise :class:`~repro.serve.errors.QueueFullError`
  instead of growing an unbounded deque.  A bounded queue is the difference
  between overload degrading tail latency for *everything* and overload
  shedding the excess while admitted traffic keeps its SLO.
* ``queue_timeout_s`` expires requests that waited too long *in the queue*
  (terminal ``finish_reason="deadline"``), complementing the per-request
  end-to-end :attr:`~repro.serve.requests.InferenceRequest.deadline_s`.
* ``class_priority`` maps ``slo_class`` names to integer priorities (higher
  wins).  With a policy attached the scheduler admits the highest-priority
  queued request first (FIFO among equals), and with ``preempt=True`` a
  queued request may evict a strictly lower-priority active slot: the
  victim's sealed KV pages are registered under the prefix index (already
  packed OVP bytes — eviction costs no re-quantization) and the request is
  re-queued; resume re-attaches them copy-on-write and prefills only the
  open-page suffix.
* ``shed_on_burn_rate`` consults the :class:`~repro.serve.health
  .HealthMonitor`: while any burn-rate alert is firing, submissions whose
  priority falls below ``shed_priority_floor`` are rejected with
  :class:`~repro.serve.errors.AdmissionRejectedError` so the error budget is
  spent on the traffic that matters.

The policy is frozen (safe to share across schedulers) and pure accounting:
all enforcement lives in
:class:`~repro.serve.scheduler.ContinuousBatchingScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.serve.errors import ServingError
from repro.serve.requests import InferenceRequest

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """How a scheduler bounds, orders, and sheds its admission queue.

    Parameters
    ----------
    max_queue_depth:
        Maximum queued requests; ``None`` leaves the queue unbounded.
    queue_timeout_s:
        Maximum seconds a request may wait in the queue before it expires
        with ``finish_reason="deadline"``; ``None`` disables the timeout.
        A preempted request's wait is measured from its preemption, not its
        original enqueue — being evicted must not eat its remaining budget.
    class_priority:
        ``slo_class -> priority`` (higher wins).  Classes not listed get
        ``default_priority``; an explicit ``request.priority`` overrides.
    default_priority:
        Priority for requests whose class is not in ``class_priority``.
    preempt:
        Allow a queued higher-priority request to evict the lowest-priority
        active slot when no free slot exists.
    shed_on_burn_rate:
        While the attached health monitor has a firing burn-rate alert,
        reject submissions with priority below ``shed_priority_floor``.
    shed_priority_floor:
        Minimum priority admitted during a firing alert.
    """

    max_queue_depth: Optional[int] = None
    queue_timeout_s: Optional[float] = None
    class_priority: Dict[str, int] = field(default_factory=dict)
    default_priority: int = 0
    preempt: bool = False
    shed_on_burn_rate: bool = False
    shed_priority_floor: int = 1

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ServingError("max_queue_depth must be >= 1 when set")
        if self.queue_timeout_s is not None and not self.queue_timeout_s > 0:
            raise ServingError("queue_timeout_s must be positive when set")
        for name, prio in self.class_priority.items():
            if not isinstance(name, str) or not name:
                raise ServingError("class_priority keys must be non-empty strings")
            if not isinstance(prio, int):
                raise ServingError("class_priority values must be ints")

    def priority_of(self, request: InferenceRequest) -> int:
        """Effective admission priority for ``request`` (higher wins)."""
        if request.priority is not None:
            return int(request.priority)
        return int(self.class_priority.get(request.slo_class, self.default_priority))
