"""Request-lifecycle tracing, per-phase round profiling, and serving metrics.

The serving stack models memory traffic with byte-level accounting; this
module gives *time* the same treatment.  Three pieces:

``Tracer``
    A span-based profiler with a low-overhead context-manager API.  Two kinds
    of spans are recorded:

    * **phase spans** — strictly nested ``with tracer.span("attend")`` blocks
      on the scheduler/engine thread (one logical track), reconstructed into a
      tree for :meth:`Tracer.phase_report`;
    * **lifecycle spans** — per-request phases (``queued -> prefill ->
      decode -> end``) keyed by an opaque track id (the request id), driven by
      :meth:`Tracer.lifecycle_begin` / :meth:`Tracer.lifecycle_end`.

    The clock is injected (like the scheduler's ``clock``) so tests can drive
    it deterministically.  A disabled tracer — either :data:`NULL_TRACER` or a
    real ``Tracer`` after :meth:`Tracer.disable` — records nothing and
    allocates nothing on the hot path: ``span()`` returns a shared no-op
    context manager.  Hot call sites guard attribute construction with
    ``if tracer.enabled:``.

``MetricsRegistry``
    Named counters, gauges, and histograms (fixed exponential buckets) with a
    Prometheus text exposition.  ``ServingStats`` keeps a registry in lock-step
    with its windowed records; sharing one registry across several
    ``ServingStats`` instances merges their counts (the sharded-worker rollup
    story).

Exporters
    :meth:`Tracer.chrome_trace` emits Chrome ``trace_event`` JSON (load it at
    ``chrome://tracing`` or https://ui.perfetto.dev), :meth:`Tracer.jsonl`
    emits one JSON object per span, and :meth:`Tracer.phase_report` renders a
    wall-clock breakdown table.  :func:`validate_chrome_trace` checks a trace
    for well-formedness (balanced B/E events, per-thread monotone timestamps).
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "PhaseReport",
    "PhaseRow",
    "Span",
    "Tracer",
    "exponential_buckets",
    "validate_chrome_trace",
    "validate_exposition",
]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` bucket upper bounds: ``start, start*factor, ...`` (ascending)."""
    if start <= 0.0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape_label(v)}"' for n, v in zip(names, values))
    return "{" + inner + "}"


class _Metric:
    """Shared bookkeeping: name, help text, label names, registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...], lock: threading.Lock):
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = lock

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)


class Counter(_Metric):
    """Monotonically increasing sample (optionally per label set)."""

    kind = "counter"

    def __init__(self, name, help, label_names, lock):
        super().__init__(name, help, label_names, lock)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease (inc {amount})")
        if not math.isfinite(amount):
            return  # never poison the exposition with NaN/Inf
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def value_sum(self, **labels: Any) -> float:
        """Sum over every series whose labels match the given subset.

        Readers that care about one dimension of a multi-label counter
        (e.g. per-``slo_class`` totals of a ``{reason,slo_class,tenant}``
        counter) aggregate here instead of enumerating the other label
        values, so adding a label never breaks them.  Unknown label names
        raise, exactly like :meth:`value` on a full mismatch.
        """
        unknown = set(labels) - set(self.label_names)
        if unknown:
            raise ValueError(
                f"{self.name}: unknown label(s) {sorted(unknown)}; "
                f"expected a subset of {list(self.label_names)}"
            )
        positions = [
            (i, str(labels[name]))
            for i, name in enumerate(self.label_names)
            if name in labels
        ]
        with self._lock:
            return sum(
                v
                for key, v in self._values.items()
                if all(key[i] == want for i, want in positions)
            )

    def _render(self, lines: List[str]) -> None:
        values = dict(self._values) or ({(): 0.0} if not self.label_names else {})
        for key in sorted(values):
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} {_format_value(values[key])}"
            )


class Gauge(_Metric):
    """Last-observed sample (set to any finite value)."""

    kind = "gauge"

    def __init__(self, name, help, label_names, lock):
        super().__init__(name, help, label_names, lock)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not math.isfinite(value):
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _render(self, lines: List[str]) -> None:
        values = dict(self._values) or ({(): 0.0} if not self.label_names else {})
        for key in sorted(values):
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} {_format_value(values[key])}"
            )


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative ``le`` buckets, ``_sum``/``_count``).

    Like :class:`Counter`/:class:`Gauge`, a histogram may declare label
    names; every label set gets its own bucket counts, sum and count (one
    series per set, the ``le`` label appended last).  ``count``/``sum``
    aggregate across label sets; :meth:`bucket_counts`/:meth:`count_value`/
    :meth:`sum_value` take the label set they describe.
    """

    kind = "histogram"

    def __init__(self, name, help, buckets: Sequence[float], label_names, lock):
        super().__init__(name, help, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must be strictly ascending, got {bounds}")
        self.buckets = bounds
        # Per-label-set cells: key -> [per-bucket counts (+Inf last), sum, count].
        self._cells: Dict[Tuple[str, ...], list] = {}
        if not label_names:
            # An unlabeled histogram renders its (zeroed) series immediately.
            self._cells[()] = [[0] * (len(bounds) + 1), 0.0, 0]

    def _cell(self, key: Tuple[str, ...]) -> list:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        return cell

    def observe(self, value: float, **labels: Any) -> None:
        if not math.isfinite(value):
            return
        key = self._key(labels)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            cell = self._cell(key)
            cell[0][idx] += 1
            cell[1] += value
            cell[2] += 1

    @property
    def count(self) -> int:
        """Observations across every label set."""
        with self._lock:
            return sum(cell[2] for cell in self._cells.values())

    @property
    def sum(self) -> float:
        """Observed-value sum across every label set."""
        with self._lock:
            return sum(cell[1] for cell in self._cells.values())

    def count_value(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            return cell[2] if cell else 0

    def sum_value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            return cell[1] if cell else 0.0

    def bucket_counts(self, **labels: Any) -> Tuple[int, ...]:
        """Cumulative counts per bucket bound (plus +Inf), Prometheus-style."""
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            counts = list(cell[0]) if cell else [0] * (len(self.buckets) + 1)
        cumulative, total = [], 0
        for c in counts:
            total += c
            cumulative.append(total)
        return tuple(cumulative)

    def _render(self, lines: List[str]) -> None:
        with self._lock:
            cells = {key: (list(cell[0]), cell[1], cell[2]) for key, cell in self._cells.items()}
        for key in sorted(cells):
            counts, total_sum, total_count = cells[key]
            labels = ",".join(
                f'{n}="{_escape_label(v)}"' for n, v in zip(self.label_names, key)
            )
            prefix = labels + "," if labels else ""
            cumulative, running = [], 0
            for c in counts:
                running += c
                cumulative.append(running)
            for bound, count in zip(self.buckets, cumulative):
                lines.append(
                    f'{self.name}_bucket{{{prefix}le="{_format_value(bound)}"}} {count}'
                )
            lines.append(f'{self.name}_bucket{{{prefix}le="+Inf"}} {cumulative[-1]}')
            suffix_labels = "{" + labels + "}" if labels else ""
            lines.append(f"{self.name}_sum{suffix_labels} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{suffix_labels} {total_count}")


class MetricsRegistry:
    """Create-or-get named instruments; render Prometheus text exposition.

    Instrument creation is idempotent: asking for an existing name returns the
    existing instrument (so several ``ServingStats`` can share one registry);
    asking with a conflicting kind or label set raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, factory: Callable[[], _Metric]) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        label_names = tuple(labels)
        metric = self._get_or_create(
            Counter, name, lambda: Counter(name, help, label_names, self._lock)
        )
        if metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} registered with labels {metric.label_names}, not {label_names}"
            )
        return metric

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        label_names = tuple(labels)
        metric = self._get_or_create(
            Gauge, name, lambda: Gauge(name, help, label_names, self._lock)
        )
        if metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} registered with labels {metric.label_names}, not {label_names}"
            )
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = (),
        labels: Sequence[str] = (),
    ) -> Histogram:
        bounds = tuple(buckets) or exponential_buckets(1e-4, 2.0, 14)
        label_names = tuple(labels)
        metric = self._get_or_create(
            Histogram, name, lambda: Histogram(name, help, bounds, label_names, self._lock)
        )
        if metric.buckets != tuple(float(b) for b in bounds):
            raise ValueError(f"metric {name!r} registered with different buckets")
        if metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} registered with labels {metric.label_names}, not {label_names}"
            )
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._metrics)

    def render(self) -> str:
        """Prometheus text exposition (``# HELP`` / ``# TYPE`` / samples)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            metric._render(lines)
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

_B = "B"
_E = "E"


@dataclass(frozen=True)
class Span:
    """A reconstructed phase span. ``end is None`` means still open."""

    name: str
    cat: str
    start: float
    end: Optional[float]
    depth: int
    index: int
    parent: Optional[int]
    attrs: Optional[Dict[str, Any]]

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start


@dataclass(frozen=True)
class PhaseRow:
    name: str
    count: int
    total_ms: float  # inclusive (children counted)
    self_ms: float  # exclusive (children subtracted)
    share: float  # self_ms / total round wall


@dataclass(frozen=True)
class PhaseReport:
    """Per-phase wall-clock breakdown over all ``root`` spans."""

    rounds: int
    round_ms: float
    coverage: float  # fraction of round wall inside *named* child phases
    rows: Tuple[PhaseRow, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rounds": self.rounds,
            "round_ms": round(self.round_ms, 4),
            "coverage": round(self.coverage, 4),
            "phases": {
                row.name: {
                    "count": row.count,
                    "total_ms": round(row.total_ms, 4),
                    "self_ms": round(row.self_ms, 4),
                    "share": round(row.share, 4),
                }
                for row in self.rows
            },
        }

    def table(self) -> str:
        """Human-readable breakdown, widest phases first."""
        header = f"{'phase':<16} {'count':>7} {'total ms':>10} {'self ms':>10} {'share':>7}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.name:<16} {row.count:>7} {row.total_ms:>10.2f} "
                f"{row.self_ms:>10.2f} {row.share:>6.1%}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"rounds: {self.rounds}  round wall: {self.round_ms:.2f} ms  "
            f"named-phase coverage: {self.coverage:.1%}"
        )
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Shared context manager for an enabled tracer.

    Spans close strictly LIFO under ``with`` nesting, so one handle per
    tracer suffices: ``__exit__`` always closes the innermost open span.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._end()
        return False


class NullTracer:
    """No-op tracer: zero spans, zero allocations, always disabled.

    The single shared instance is :data:`NULL_TRACER`; engine/scheduler/pool
    default to it so untraced serving pays only an attribute check.
    """

    __slots__ = ()

    enabled = False

    def enable(self) -> None:
        raise RuntimeError("NULL_TRACER cannot be enabled; pass a Tracer instead")

    def disable(self) -> None:
        pass

    def span(self, name: str = "", cat: str = "phase", attrs: Optional[Dict[str, Any]] = None):
        return _NULL_SPAN

    def lifecycle_begin(self, track, name, attrs=None) -> None:
        pass

    def lifecycle_end(self, track, attrs=None) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def num_spans(self) -> int:
        return 0

    def spans(self) -> List[Span]:
        return []

    def lifecycles(self) -> List[Tuple[Any, str, float, float, Optional[Dict[str, Any]]]]:
        return []

    def phase_report(self, root: str = "round") -> PhaseReport:
        return PhaseReport(rounds=0, round_ms=0.0, coverage=0.0, rows=())

    def chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def jsonl(self, epoch: Optional[float] = None) -> str:
        return ""


NULL_TRACER = NullTracer()


class Tracer:
    """Records phase spans (one nested track) and per-request lifecycle spans.

    ``clock`` must be monotonic; inject a fake for deterministic tests.  The
    event log is bounded by ``max_events`` — once full, new spans are silently
    dropped (balance is preserved: suppressed opens swallow their matching
    close).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = 500_000,
        enabled: bool = True,
    ):
        self.clock = clock
        self.max_events = int(max_events)
        self.enabled = bool(enabled)
        self._handle = _SpanHandle(self)
        # Event log: ("B", ts, name, cat, attrs|None) / ("E", ts). Appending
        # tuples (not objects) keeps the enabled hot path to one allocation.
        self._events: List[tuple] = []
        self._depth = 0
        self._suppressed = 0
        # Closed lifecycle phases: (track, name, start, end, attrs|None).
        self._lifecycle: List[Tuple[Any, str, float, float, Optional[Dict[str, Any]]]] = []
        self._open_lifecycle: Dict[Any, list] = {}

    # -- control ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._events.clear()
        self._depth = 0
        self._suppressed = 0
        self._lifecycle.clear()
        self._open_lifecycle.clear()

    # -- phase spans --------------------------------------------------------

    def span(self, name: str, cat: str = "phase", attrs: Optional[Dict[str, Any]] = None):
        """Open a phase span; close it by exiting the returned context manager."""
        if not self.enabled:
            return _NULL_SPAN
        if len(self._events) >= self.max_events:
            self._suppressed += 1
            return self._handle
        self._events.append((_B, self.clock(), name, cat, attrs))
        self._depth += 1
        return self._handle

    def _end(self) -> None:
        if self._suppressed:
            self._suppressed -= 1
            return
        if self._depth == 0:
            return  # defensive: mismatched exit
        self._depth -= 1
        self._events.append((_E, self.clock()))

    # -- lifecycle spans ----------------------------------------------------

    def lifecycle_begin(self, track: Any, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Start lifecycle phase ``name`` on ``track``, closing any open phase."""
        if not self.enabled:
            return
        self.lifecycle_end(track)
        if len(self._lifecycle) >= self.max_events:
            return
        self._open_lifecycle[track] = [name, self.clock(), attrs]

    def lifecycle_end(self, track: Any, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Close the open lifecycle phase on ``track`` (no-op when none)."""
        open_phase = self._open_lifecycle.pop(track, None)
        if open_phase is None:
            return
        name, start, base = open_phase
        if attrs:
            base = {**(base or {}), **attrs}
        self._lifecycle.append((track, name, start, self.clock(), base))

    # -- introspection ------------------------------------------------------

    @property
    def num_spans(self) -> int:
        """Closed phase spans recorded so far."""
        return sum(1 for ev in self._events if ev[0] == _E)

    def spans(self) -> List[Span]:
        """Reconstruct phase spans (recording order); open spans have ``end=None``.

        ``parent`` indexes into this same list, so ancestry can be walked
        without a separate tree structure.
        """
        items: List[list] = []
        stack: List[int] = []
        for ev in self._events:
            if ev[0] == _B:
                parent = stack[-1] if stack else None
                items.append([ev[2], ev[3], ev[1], None, len(stack), len(items), parent, ev[4]])
                stack.append(len(items) - 1)
            elif stack:
                items[stack.pop()][3] = ev[1]
        return [Span(*item) for item in items]

    def lifecycles(self) -> List[Tuple[Any, str, float, float, Optional[Dict[str, Any]]]]:
        return list(self._lifecycle)

    # -- phase report -------------------------------------------------------

    def phase_report(self, root: str = "round") -> PhaseReport:
        """Aggregate wall time of every named phase inside ``root`` spans.

        ``self_ms`` excludes nested child spans, so the rows sum (with the
        root's own uninstrumented gap) to the total round wall; ``coverage``
        is the fraction of round wall accounted for by named child phases.
        """
        spans = self.spans()
        child_time = [0.0] * len(spans)
        inside = [False] * len(spans)
        for span in spans:
            if span.parent is not None:
                child_time[span.parent] += span.duration
                inside[span.index] = spans[span.parent].name == root or inside[span.parent]

        rounds = 0
        round_total = 0.0
        covered = 0.0
        agg: Dict[str, List[float]] = {}  # name -> [count, total, self]
        for span in spans:
            if span.end is None:
                continue
            if span.name == root and not inside[span.index]:
                rounds += 1
                round_total += span.duration
                covered += child_time[span.index]
            elif inside[span.index]:
                entry = agg.setdefault(span.name, [0, 0.0, 0.0])
                entry[0] += 1
                entry[1] += span.duration
                entry[2] += span.duration - child_time[span.index]

        scale = 1e3
        rows = tuple(
            sorted(
                (
                    PhaseRow(
                        name=name,
                        count=int(entry[0]),
                        total_ms=entry[1] * scale,
                        self_ms=entry[2] * scale,
                        share=(entry[2] / round_total) if round_total > 0 else 0.0,
                    )
                    for name, entry in agg.items()
                ),
                key=lambda row: (-row.self_ms, row.name),
            )
        )
        coverage = (covered / round_total) if round_total > 0 else 0.0
        return PhaseReport(
            rounds=rounds, round_ms=round_total * scale, coverage=coverage, rows=rows
        )

    # -- exporters ----------------------------------------------------------

    def _epoch(self) -> float:
        candidates = []
        if self._events:
            candidates.append(self._events[0][1])
        if self._lifecycle:
            candidates.append(min(entry[2] for entry in self._lifecycle))
        for open_phase in self._open_lifecycle.values():
            candidates.append(open_phase[1])
        return min(candidates) if candidates else 0.0

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON: phase spans as B/E on tid 0, request
        lifecycles as X complete-events on one tid per request."""
        t0 = self._epoch()

        def us(t: float) -> float:
            return round((t - t0) * 1e6, 3)

        events: List[Dict[str, Any]] = []
        if self._events:
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "rounds"}}
            )

        # Unmatched opens (still-open spans) are dropped so B/E stay balanced.
        stack: List[int] = []
        for pos, ev in enumerate(self._events):
            if ev[0] == _B:
                stack.append(pos)
            elif stack:
                stack.pop()
        unmatched = set(stack)

        tids: Dict[Any, int] = {}
        for entry in self._lifecycle:
            if entry[0] not in tids:
                tids[entry[0]] = len(tids) + 1
        for track, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"request {track}"},
                }
            )

        for pos, ev in enumerate(self._events):
            if ev[0] == _B:
                if pos in unmatched:
                    continue
                event: Dict[str, Any] = {
                    "name": ev[2],
                    "cat": ev[3],
                    "ph": _B,
                    "ts": us(ev[1]),
                    "pid": 0,
                    "tid": 0,
                }
                if ev[4]:
                    event["args"] = dict(ev[4])
                events.append(event)
            else:
                events.append({"ph": _E, "ts": us(ev[1]), "pid": 0, "tid": 0})

        lifecycle = sorted(self._lifecycle, key=lambda entry: (tids[entry[0]], entry[2]))
        for track, name, start, end, attrs in lifecycle:
            event = {
                "name": name,
                "cat": "request",
                "ph": "X",
                "ts": us(start),
                "dur": round((end - start) * 1e6, 3),
                "pid": 0,
                "tid": tids[track],
                "args": {"track": str(track), **(attrs or {})},
            }
            events.append(event)

        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def jsonl(self, epoch: Optional[float] = None) -> str:
        """One JSON object per closed span (phase spans, then lifecycles).

        Deterministic byte-for-byte given a deterministic clock: keys are
        sorted and timestamps are rounded microseconds relative to the first
        event (or to ``epoch``, letting callers merge several logs — health
        events, spans — onto one shared time base).
        """
        t0 = self._epoch() if epoch is None else epoch

        def us(t: float) -> float:
            return round((t - t0) * 1e6, 3)

        lines = []
        for span in self.spans():
            if span.end is None:
                continue
            lines.append(
                {
                    "type": "span",
                    "name": span.name,
                    "cat": span.cat,
                    "ts_us": us(span.start),
                    "dur_us": round(span.duration * 1e6, 3),
                    "depth": span.depth,
                    "attrs": span.attrs or {},
                }
            )
        for track, name, start, end, attrs in self._lifecycle:
            lines.append(
                {
                    "type": "lifecycle",
                    "track": str(track),
                    "name": name,
                    "ts_us": us(start),
                    "dur_us": round((end - start) * 1e6, 3),
                    "attrs": attrs or {},
                }
            )
        if not lines:
            return ""
        return "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.jsonl())


def validate_chrome_trace(payload) -> Dict[str, int]:
    """Validate Chrome ``trace_event`` JSON; raise ``ValueError`` on violation.

    Checks: the payload parses (str input) and has a ``traceEvents`` list;
    every event carries a known phase; timestamps are non-negative and
    monotone non-decreasing per tid; B/E events balance (per tid, LIFO);
    X events carry a non-negative ``dur``.  Returns event counts by phase.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("trace payload must be an object with a traceEvents list")
    stacks: Dict[Any, List[str]] = {}
    last_ts: Dict[Any, float] = {}
    counts = {"B": 0, "E": 0, "X": 0, "M": 0}
    for i, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"event {i}: not an object")
        ph = event.get("ph")
        if ph not in counts:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            raise ValueError(f"event {i}: bad ts {ts!r}")
        tid = event.get("tid", 0)
        if ts < last_ts.get(tid, 0.0):
            raise ValueError(f"event {i}: ts {ts} not monotone on tid {tid}")
        last_ts[tid] = ts
        if ph == "B":
            stacks.setdefault(tid, []).append(event.get("name", ""))
        elif ph == "E":
            if not stacks.get(tid):
                raise ValueError(f"event {i}: E without matching B on tid {tid}")
            stacks[tid].pop()
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                raise ValueError(f"event {i}: bad dur {dur!r}")
    for tid, stack in stacks.items():
        if stack:
            raise ValueError(f"unbalanced B events on tid {tid}: {stack}")
    return counts


_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _parse_exposition_labels(raw: str, where: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``name="value",...`` (the text between ``{`` and ``}``)."""
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(raw):
        eq = raw.find('="', pos)
        if eq < 0:
            raise ValueError(f"{where}: malformed labels {raw!r}")
        name = raw[pos:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"{where}: bad label name {name!r}")
        # Scan the quoted value, honouring backslash escapes.
        value_chars: List[str] = []
        i = eq + 2
        while i < len(raw):
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= len(raw):
                    raise ValueError(f"{where}: dangling escape in {raw!r}")
                value_chars.append(raw[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        else:
            raise ValueError(f"{where}: unterminated label value in {raw!r}")
        pairs.append((name, "".join(value_chars)))
        pos = i + 1
        if pos < len(raw):
            if raw[pos] != ",":
                raise ValueError(f"{where}: expected ',' between labels in {raw!r}")
            pos += 1
    return tuple(pairs)


def validate_exposition(text: str) -> Dict[str, int]:
    """Validate a Prometheus text exposition; raise ``ValueError`` on violation.

    Checks every non-comment line parses as ``name[{labels}] value``; every
    sample belongs to a metric declared by a preceding ``# TYPE`` line of a
    known kind; values are finite (counters non-negative); no series repeats;
    histogram series carry ascending ``le`` bounds with monotone cumulative
    counts, a ``+Inf`` bucket, and ``_sum``/``_count`` samples whose count
    matches the ``+Inf`` bucket.  Returns metric counts by kind plus the
    total number of sample lines (``"samples"``).
    """
    kinds: Dict[str, str] = {}
    seen_series = set()
    # (metric, non-le labels) -> {"le": [(bound, count)], "sum": x, "count": n}
    hist_series: Dict[Tuple[str, Tuple], Dict[str, Any]] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"{where}: malformed TYPE line {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"{where}: unknown metric kind {kind!r}")
            if name in kinds:
                raise ValueError(f"{where}: duplicate TYPE for {name!r}")
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"{where}: unbalanced braces in {line!r}")
            name = line[:brace]
            labels = _parse_exposition_labels(line[brace + 1:close], where)
            rest = line[close + 1:]
        else:
            name, _, rest = line.partition(" ")
            rest = " " + rest if rest else ""
            labels = ()
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"{where}: bad metric name {name!r}")
        if not rest.startswith(" ") or " " in rest[1:].strip():
            raise ValueError(f"{where}: expected 'name value', got {line!r}")
        raw_value = rest.strip()
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(f"{where}: bad sample value {raw_value!r}") from exc
        if math.isnan(value):
            raise ValueError(f"{where}: NaN sample value in {line!r}")
        base = name
        suffix = ""
        if base not in kinds:
            for candidate in ("_bucket", "_sum", "_count"):
                trimmed = name[: -len(candidate)] if name.endswith(candidate) else None
                if trimmed and kinds.get(trimmed) == "histogram":
                    base, suffix = trimmed, candidate
                    break
        kind = kinds.get(base)
        if kind is None:
            raise ValueError(f"{where}: sample {name!r} has no preceding TYPE line")
        if kind == "histogram" and not suffix:
            raise ValueError(
                f"{where}: histogram {base!r} samples must be _bucket/_sum/_count"
            )
        if kind != "histogram" and suffix:
            raise ValueError(f"{where}: {name!r} is not a histogram series")
        if (kind in ("counter", "histogram")) and value < 0:
            raise ValueError(f"{where}: negative {kind} sample in {line!r}")
        series = (name, labels)
        if series in seen_series:
            raise ValueError(f"{where}: duplicate series {name}{dict(labels)!r}")
        seen_series.add(series)
        samples += 1
        if kind == "histogram":
            plain = tuple(pair for pair in labels if pair[0] != "le")
            entry = hist_series.setdefault(
                (base, plain), {"le": [], "sum": None, "count": None}
            )
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    raise ValueError(f"{where}: histogram bucket without le label")
                bound = math.inf if le == "+Inf" else float(le)
                entry["le"].append((bound, value))
            elif suffix == "_sum":
                entry["sum"] = value
            else:
                entry["count"] = value
    for (base, plain), entry in hist_series.items():
        where = f"histogram {base!r} {dict(plain)!r}"
        bounds = [b for b, _ in entry["le"]]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{where}: le bounds not strictly ascending")
        if not bounds or bounds[-1] != math.inf:
            raise ValueError(f"{where}: missing +Inf bucket")
        counts = [c for _, c in entry["le"]]
        if counts != sorted(counts):
            raise ValueError(f"{where}: cumulative bucket counts decrease")
        if entry["sum"] is None or entry["count"] is None:
            raise ValueError(f"{where}: missing _sum/_count samples")
        if entry["count"] != counts[-1]:
            raise ValueError(
                f"{where}: _count {entry['count']} != +Inf bucket {counts[-1]}"
            )
    report = {"samples": samples}
    for kind in ("counter", "gauge", "histogram"):
        report[kind] = sum(1 for k in kinds.values() if k == kind)
    return report
