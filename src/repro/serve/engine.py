"""Batched quantized-inference engine and the synchronous serving scheduler.

:class:`InferenceEngine` turns one homogeneous micro-batch into per-request
results: it stacks the token-id rows, fetches the packed model from the
repository and runs a single batched forward pass through the quantized NumPy
transformer — one pass per batch, however many requests rode along.

:class:`ServingEngine` is the synchronous front door: ``submit`` queues
requests into the micro-batcher, ``step`` processes one ready batch, and
``serve`` is the submit-all/drain-all convenience used by benchmarks and
tests.  The asyncio front-end (:mod:`repro.serve.aio`) wraps the same engine
for concurrent clients.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.hardware.memory import gemm_traffic
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.serve.admission import AdmissionPolicy
from repro.serve.batcher import MicroBatcher, QueuedRequest
from repro.serve.errors import QueueFullError
from repro.serve.health import (
    HealthConfig,
    HealthMonitor,
    SLOClass,
    unified_event_log,
)
from repro.serve.kvcache import (
    KVCacheConfig,
    PagePool,
    cache_for_model,
    validate_token_budget,
)
from repro.serve.repository import ModelRepository, PackedModel
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    ServingError,
    WorkloadFamily,
)
from repro.serve.sampling import FinishReason, RequestOutput, Sampler, TokenChunk
from repro.serve.scheduler import ContinuousBatchingScheduler, greedy_top_k
from repro.serve.stats import BatchRecord, ServingStats
from repro.serve.telemetry import NULL_TRACER

__all__ = ["InferenceEngine", "ServingEngine"]


class InferenceEngine:
    """Run batched forward passes for the three workload families."""

    def __init__(
        self,
        repository: ModelRepository,
        kv_cache_config: Optional[KVCacheConfig] = None,
        page_pool: Optional[PagePool] = None,
    ) -> None:
        self.repository = repository
        self.kv_cache_config = kv_cache_config or KVCacheConfig(bits=repository.bits)
        # Sealed KV pages of every generation batch share one pool, so a
        # sequence's pages decode once per LRU residency, not once per round.
        self.page_pool = page_pool if page_pool is not None else self.kv_cache_config.make_pool()

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: Sequence[QueuedRequest],
        clock=time.monotonic,
        max_batch_size: Optional[int] = None,
    ):
        """Execute one homogeneous batch; returns ``(results, BatchRecord)``.

        All requests must share one ``batch_key`` (the micro-batcher
        guarantees this); mixing keys is a programming error.
        """
        if not batch:
            raise ServingError("cannot run an empty batch")
        keys = {q.request.batch_key for q in batch}
        if len(keys) != 1:
            raise ServingError(f"batch mixes incompatible requests: {sorted(keys)}")
        first = batch[0].request
        entry = self.repository.get(first.model, first.family, first.num_classes)
        inputs = np.stack([q.request.token_ids for q in batch])

        start = clock()
        if first.family == WorkloadFamily.CLASSIFY:
            outputs = self._run_classify(entry, inputs, first.num_classes)
        elif first.family == WorkloadFamily.SPAN:
            outputs = self._run_span(entry, inputs)
        else:
            # top_k/max_new_tokens are per-request (neither affects batching:
            # requests that differ only in them still share the batch).
            outputs = self._run_lm(entry, inputs, [q.request for q in batch])
        compute_seconds = clock() - start

        completed_at = clock()
        results = [
            InferenceResult(
                request_id=q.request.request_id,
                model=first.model,
                family=first.family,
                output=output,
                batch_size=len(batch),
                enqueued_at=q.enqueued_at,
                completed_at=completed_at,
                scheme=entry.scheme,
            )
            for q, output in zip(batch, outputs)
        ]
        generated = sum(len(output.get("generated_tokens", ())) for output in outputs)
        record = BatchRecord(
            batch_size=len(batch),
            max_batch_size=int(max_batch_size or len(batch)),
            compute_seconds=compute_seconds,
            tokens=int(inputs.size) + generated,
            weight_stream_bytes=entry.packed_bytes,
            dram_bytes=self._dram_bytes(entry, int(inputs.size)),
            latencies=tuple(completed_at - q.enqueued_at for q in batch),
            latency_classes=tuple(q.request.slo_class for q in batch),
        )
        return results, record

    # ------------------------------------------------------------------ #
    # Families
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_classify(entry: PackedModel, inputs: np.ndarray, num_classes: int) -> List[dict]:
        logits = np.asarray(entry.model(inputs))
        if num_classes == 1:
            return [{"score": float(row[0])} for row in logits]
        probs = F.softmax(logits, axis=-1)
        labels = np.argmax(logits, axis=-1)
        return [
            {"label": int(label), "probs": [float(p) for p in prob_row]}
            for label, prob_row in zip(labels, probs)
        ]

    @staticmethod
    def _run_span(entry: PackedModel, inputs: np.ndarray) -> List[dict]:
        start_logits, end_logits = entry.model(inputs)
        start_logits = np.asarray(start_logits)
        end_logits = np.asarray(end_logits)
        outputs = []
        for s_row, e_row in zip(start_logits, end_logits):
            start = int(np.argmax(s_row))
            end_candidates = e_row.copy()
            end_candidates[:start] = -np.inf
            end = int(np.argmax(end_candidates))
            # Normalized span probability: how much mass the argmax span
            # holds vs every valid (start, end >= start) alternative.
            s_probs = np.asarray(F.softmax(s_row[None, :], axis=-1))[0]
            e_probs = np.asarray(F.softmax(end_candidates[None, :], axis=-1))[0]
            confidence = float(s_probs[start] * e_probs[end])
            outputs.append(
                {
                    "start": start,
                    "end": end,
                    "score": float(s_row[start] + end_candidates[end]),
                    "confidence": confidence,
                }
            )
        return outputs

    def _run_lm(
        self, entry: PackedModel, inputs: np.ndarray, requests: Sequence[InferenceRequest]
    ) -> List[RequestOutput]:
        """Score-only rows take the batched full forward; generation rows the
        incremental KV-cache path.  The split keeps a score-only request's
        logits identical whether or not generation requests share its batch
        (the incremental prefill sees OVP-quantized K/V pages, the full
        forward does not)."""
        score_rows = [i for i, r in enumerate(requests) if r.max_new_tokens == 0]
        gen_rows = [i for i, r in enumerate(requests) if r.max_new_tokens > 0]
        outputs: List[Optional[RequestOutput]] = [None] * len(requests)
        if score_rows:
            log_probs = np.asarray(entry.model.log_probs(inputs[score_rows]))[:, -1, :]
            for row_lp, i in zip(log_probs, score_rows):
                top = greedy_top_k(row_lp, requests[i].top_k)
                outputs[i] = RequestOutput(
                    request_id=requests[i].request_id,
                    next_tokens=top["next_tokens"],
                    log_probs=top["log_probs"],
                )
        if gen_rows:
            generated = self._run_lm_generate(
                entry, inputs[gen_rows], [requests[i] for i in gen_rows]
            )
            for output, i in zip(generated, gen_rows):
                outputs[i] = output
        return outputs

    def _run_lm_generate(
        self, entry: PackedModel, inputs: np.ndarray, requests: Sequence[InferenceRequest]
    ) -> List[RequestOutput]:
        """Whole-batch-release generation through OVP-paged KV caches.

        The batch prefills in one incremental pass (one KV cache per row),
        then advances one token per decode round until each row finishes
        (stop token or ``max_new_tokens``); finished rows drop out of later
        rounds, but the batch's results are only released together — the
        baseline the continuous-batching scheduler improves on.  Each row
        samples with its request's :class:`~repro.serve.sampling.SamplingParams`
        through its own seeded generator — one draw per token, the same
        discipline as the scheduler, so the two paths generate identical
        tokens for identical requests.
        """
        for request in requests:
            validate_token_budget(entry.model, request)
        caches = [
            cache_for_model(entry.model, self.kv_cache_config, pool=self.page_pool)
            for _ in requests
        ]
        samplers = [Sampler(request.sampling) for request in requests]
        generators = [sampler.make_generator() for sampler in samplers]
        try:
            last_lp = entry.model.log_probs_incremental(inputs, caches, last_only=True)[:, -1, :]
            generated: List[List[int]] = [[] for _ in requests]
            logprobs: List[List[float]] = [[] for _ in requests]
            top_logprobs: List[list] = [[] for _ in requests]
            finish: List[Optional[str]] = [None] * len(requests)
            final_lp = [row for row in last_lp]

            def emit(i: int, row_lp: np.ndarray) -> None:
                final_lp[i] = row_lp
                sampled = samplers[i].sample(row_lp, generators[i])
                generated[i].append(sampled.token_id)
                logprobs[i].append(sampled.logprob)
                if sampled.top_logprobs:
                    top_logprobs[i].append(sampled.top_logprobs)
                if samplers[i].is_stop(sampled.token_id):
                    finish[i] = FinishReason.STOP
                elif len(generated[i]) >= requests[i].max_new_tokens:
                    finish[i] = FinishReason.LENGTH

            for i in range(len(requests)):
                emit(i, last_lp[i])
            while True:
                rows = [i for i in range(len(requests)) if finish[i] is None]
                if not rows:
                    break
                step_tokens = np.array([[generated[i][-1]] for i in rows], dtype=np.int64)
                step_lp = entry.model.log_probs_incremental(
                    step_tokens, [caches[i] for i in rows]
                )[:, -1, :]
                for row, i in enumerate(rows):
                    emit(i, step_lp[row])
            outputs = []
            for i, request in enumerate(requests):
                top = greedy_top_k(final_lp[i], request.top_k)
                outputs.append(
                    RequestOutput(
                        request_id=request.request_id,
                        finish_reason=finish[i],
                        token_ids=generated[i],
                        logprobs=logprobs[i],
                        top_logprobs=top_logprobs[i],
                        next_tokens=top["next_tokens"],
                        log_probs=top["log_probs"],
                        kv_cache=caches[i].memory_summary(),
                    )
                )
            return outputs
        finally:
            # Batch release: drop the page-pool references (and their decoded
            # LRU entries) whether the batch completed or its forward raised.
            for cache in caches:
                cache.release()

    # ------------------------------------------------------------------ #
    # Traffic accounting (ties into the repro.sim memory model)
    # ------------------------------------------------------------------ #
    def _dram_bytes(self, entry: PackedModel, batch_tokens: int) -> float:
        """Modelled DRAM traffic of one batched pass at the served precision.

        Every Linear GEMM is charged with the tile-reuse DRAM model the
        performance simulators use; operands are byte-aligned OVP streams
        (``bits/8`` bytes per element), outputs FP16.  Head layers that see
        fewer than ``batch_tokens`` rows are charged at the full row count,
        making this a slight over-estimate.
        """
        operand_bytes = self.repository.bits / 8.0
        total = 0.0
        for _, module in entry.model.named_modules():
            if not isinstance(module, Linear):
                continue
            m, k, n = module.gemm_shape(batch_tokens)
            total += gemm_traffic(
                m, k, n, activation_bytes=operand_bytes, weight_bytes=operand_bytes
            ).dram_bytes
        return total


class ServingEngine:
    """Synchronous serving scheduler: micro-batcher + engine + stats.

    LM generation requests (``sampling.max_new_tokens > 0``) are routed to a
    slot-level continuous-batching scheduler by default, which admits and
    retires sequences mid-flight over per-sequence OVP-paged KV caches.
    ``continuous_batching=False`` sends them through the micro-batcher
    instead (whole-batch release — the baseline the benchmarks compare
    against).

    Generation requests stream: :meth:`stream` iterates the request's
    :class:`~repro.serve.sampling.TokenChunk`'s as decode rounds produce
    them, and :meth:`cancel` aborts an in-flight request, freeing its slot
    and KV pages immediately (``finish_reason="aborted"``).
    ``share_generated_suffix=True`` additionally registers decode-sealed KV
    pages in the page pool's prefix index at retirement, so a follow-up
    conversation turn (``prompt + generated``) attaches copy-on-write.
    ``speculative=SpeculativeConfig(...)`` turns on draft-model speculative
    decoding (:mod:`repro.serve.spec`): slots propose draft tokens each
    round and verify them in one batched multi-token target pass, leaving
    greedy outputs token-for-token unchanged.

    ``health=`` turns on the SLO/burn-rate health layer
    (:mod:`repro.serve.health`): ``True`` for the default class, an
    :class:`~repro.serve.health.SLOClass` (or sequence of them) for named
    classes, a full :class:`~repro.serve.health.HealthConfig`, or an
    existing :class:`~repro.serve.health.HealthMonitor` (which must share
    this engine's metrics registry).  The monitor re-evaluates at most once
    per configured interval after each :meth:`step`;
    :meth:`health_report` returns the ``/healthz``-shaped snapshot and
    :meth:`event_log` the unified span + health-event JSONL.  ``None``
    (the default) keeps the health layer entirely out of the step path.

    ``admission=`` attaches an
    :class:`~repro.serve.admission.AdmissionPolicy`: both queues become
    bounded (``max_queue_depth``; :meth:`submit` raises
    :class:`~repro.serve.errors.QueueFullError` past the cap), the
    continuous scheduler admits by class/request priority, expires queue
    timeouts and per-request deadlines (``finish_reason="deadline"``), can
    preempt low-priority slots for queued high-priority work, and — with
    ``shed_on_burn_rate`` and ``health=`` both set — sheds below-floor
    traffic while burn-rate alerts fire.

    ``prefill_chunk_tokens=`` enables chunked prefill on the continuous
    scheduler: long prompts append K/V one bounded chunk per round,
    interleaved with decode, so a single long document cannot stall every
    interactive stream for a whole prompt-length pass (token-identical
    greedy output; see
    :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`).
    """

    def __init__(
        self,
        repository: Optional[ModelRepository] = None,
        max_batch_size: int = 8,
        max_wait: float = 0.005,
        clock=time.monotonic,
        result_buffer: int = 4096,
        continuous_batching: bool = True,
        num_slots: Optional[int] = None,
        kv_cache_config: Optional[KVCacheConfig] = None,
        share_generated_suffix: bool = False,
        speculative=None,
        tracer=None,
        health=None,
        admission: Optional[AdmissionPolicy] = None,
        prefill_chunk_tokens: Optional[int] = None,
    ) -> None:
        self.repository = repository or ModelRepository()
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.admission = admission
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            max_wait=max_wait,
            clock=clock,
            max_queue_depth=admission.max_queue_depth if admission is not None else None,
        )
        self.kv_cache_config = kv_cache_config or KVCacheConfig(bits=self.repository.bits)
        # One page pool for the whole engine: continuous-batching slots and
        # whole-batch generation share decoded pages and the prefix index.
        self.page_pool = self.kv_cache_config.make_pool()
        self.page_pool.tracer = self.tracer
        self.engine = InferenceEngine(
            self.repository,
            kv_cache_config=self.kv_cache_config,
            page_pool=self.page_pool,
        )
        self.stats = ServingStats(clock=clock)
        self.continuous_batching = bool(continuous_batching)
        # The monitor builds before the scheduler so the admission policy's
        # shed-on-burn-rate mode can consult its firing alerts at submit time.
        self.health = self._build_health(health)
        self.lm_scheduler = ContinuousBatchingScheduler(
            self.repository,
            num_slots=int(num_slots) if num_slots is not None else int(max_batch_size),
            cache_config=self.kv_cache_config,
            clock=clock,
            stats=self.stats,
            page_pool=self.page_pool,
            share_generated_suffix=share_generated_suffix,
            speculative=speculative,
            tracer=tracer,
            admission=admission,
            health_monitor=self.health,
            prefill_chunk_tokens=prefill_chunk_tokens,
        )
        # step() also returns its results, so callers that consume the return
        # value never call result(); the registries are therefore bounded
        # (oldest evicted first) to keep long-running serving loops leak-free.
        self.result_buffer = int(result_buffer)
        self._completed: "OrderedDict[str, InferenceResult]" = OrderedDict()
        self._failed: "OrderedDict[str, Exception]" = OrderedDict()
        # Streamed TokenChunks per request, drained by stream()/next_chunk();
        # bounded like the registries (oldest request's stream evicted first).
        self._chunks: "OrderedDict[str, deque]" = OrderedDict()

    def _build_health(self, health) -> Optional[HealthMonitor]:
        """Normalize the ``health=`` argument into a monitor (or None).

        The monitor evaluates against this engine's metrics registry under
        this engine's clock, so SLO windows line up with scheduler time.
        """
        if health is None or health is False:
            return None
        if isinstance(health, HealthMonitor):
            if health.registry is not self.stats.registry:
                raise ServingError(
                    "a shared HealthMonitor must use this engine's metrics "
                    "registry (pass health=HealthConfig(...) to build one here)"
                )
            return health
        if health is True:
            config = HealthConfig()
        elif isinstance(health, HealthConfig):
            config = health
        elif isinstance(health, SLOClass):
            config = HealthConfig(classes=(health,))
        elif isinstance(health, (list, tuple)):
            config = HealthConfig(classes=tuple(health))
        else:
            raise ServingError(
                "health must be None, True, an SLOClass (or sequence), "
                "a HealthConfig, or a HealthMonitor"
            )
        return HealthMonitor(self.stats.registry, config, clock=self.clock)

    # ------------------------------------------------------------------ #
    # Request lifecycle
    # ------------------------------------------------------------------ #
    def submit(self, request: InferenceRequest) -> str:
        """Queue a request; returns its id for :meth:`result` lookup.

        LM generation requests go to the continuous-batching scheduler (when
        enabled); everything else goes to the micro-batcher.  With an
        admission policy attached, either queue may reject the submission
        with a retryable :class:`~repro.serve.errors.QueueFullError` /
        :class:`~repro.serve.errors.AdmissionRejectedError`.
        """
        if (
            self.continuous_batching
            and request.family == WorkloadFamily.LM
            and request.max_new_tokens > 0
        ):
            return self.lm_scheduler.submit(request)
        try:
            self.batcher.submit(request)
        except QueueFullError:
            # The scheduler path records its own rejections; mirror that
            # accounting for micro-batcher traffic before re-raising.
            self.stats.record_rejection(
                "queue_full", request.slo_class, request.tenant
            )
            raise
        self.stats.record_submitted(request.tenant, request.slo_class)
        return request.request_id

    def warm(self, model: str, family: str, num_classes: int = 2) -> PackedModel:
        """Pre-quantize a model so first-request latency excludes the build."""
        return self.repository.get(model, family, num_classes)

    def warm_speculative(self, model: str) -> None:
        """Pack the draft and calibrate ``model``'s speculative pairing now.

        Like :meth:`warm`, but for the draft side: the one-off head
        calibration otherwise lands on the first request's decode latency.
        Requires ``ServingEngine(speculative=...)``.
        """
        self.lm_scheduler.warm_speculative(model)

    def step(self, force: bool = False) -> List[InferenceResult]:
        """Process at most one ready micro-batch plus one decode round.

        A batch that fails to execute (unknown model, malformed input that
        slipped past request validation, …) does not take the scheduler
        down: its requests are marked failed and the error re-raises from
        :meth:`result` (or resolves the client future on the async path).
        The continuous-batching scheduler advances one round per step, so
        generation and micro-batched traffic interleave fairly.
        """
        results: List[InferenceResult] = []
        batch = self.batcher.next_batch(force=force)
        if batch is not None:
            try:
                with self.tracer.span("batch"):
                    batch_results, record = self.engine.run_batch(
                        batch,
                        clock=self.clock,
                        max_batch_size=self.batcher.max_batch_size,
                    )
            except Exception as exc:
                for queued in batch:
                    self._record_failure(queued.request.request_id, exc)
            else:
                self.stats.record_batch(record)
                results.extend(batch_results)
        try:
            results.extend(self.lm_scheduler.step())
        except Exception as exc:
            # A decode-round error (e.g. a model without a positional limit
            # outgrowing its table) must not lose the micro-batch results
            # above or wedge the engine: abort the in-flight sequences (their
            # failures drain just below), keeping the slots serviceable.
            self.lm_scheduler.abort_active(exc)
        for request_id, exc in self.lm_scheduler.take_failures():
            self._record_failure(request_id, exc)
        self._buffer_chunks()
        if self.health is not None:
            self.health.maybe_evaluate()
        for result in results:
            self._completed[result.request_id] = result
        while len(self._completed) > self.result_buffer:
            self._completed.popitem(last=False)
        return results

    def _record_failure(self, request_id: str, exc: Exception) -> None:
        self._failed[request_id] = exc
        while len(self._failed) > self.result_buffer:
            self._failed.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Streaming and cancellation
    # ------------------------------------------------------------------ #
    def _buffer_chunks(self) -> None:
        """Move the scheduler's freshly emitted TokenChunks into the buffer.

        When the bounded buffer overflows, the oldest request's remaining
        stream is dropped — visibly: the
        ``serve_stream_chunks_evicted_total`` counter and a
        ``stream_evicted`` tracer event record which stream lost how many
        chunks, so a consumer seeing a truncated stream can tell eviction
        from a scheduler bug.
        """
        with self.tracer.span("emit"):
            for chunk in self.lm_scheduler.take_chunks():
                queue = self._chunks.get(chunk.request_id)
                if queue is None:
                    queue = self._chunks[chunk.request_id] = deque()
                queue.append(chunk)
            while len(self._chunks) > self.result_buffer:
                request_id, dropped = self._chunks.popitem(last=False)
                self.stats.record_chunks_evicted(len(dropped))
                if self.tracer.enabled:
                    with self.tracer.span(
                        "stream_evicted",
                        attrs={"request_id": request_id, "chunks": len(dropped)},
                    ):
                        pass

    def next_chunk(self, request_id: str) -> Optional[TokenChunk]:
        """Pop the oldest buffered chunk of ``request_id`` (None when empty).

        The buffer entry is forgotten once its terminal chunk (the one
        carrying a ``finish_reason``) has been consumed.
        """
        queue = self._chunks.get(request_id)
        if not queue:
            return None
        chunk = queue.popleft()
        if not queue and chunk.finish_reason is not None:
            del self._chunks[request_id]
        return chunk

    def stream(self, request_id: str) -> Iterator[TokenChunk]:
        """Iterate the :class:`TokenChunk`'s of an in-flight generation request.

        Drives the engine (``step(force=True)``) whenever no chunk is
        buffered, so plain ``for chunk in engine.stream(rid)`` works without a
        separate serving loop; co-batched requests progress alongside.  The
        iterator ends after the chunk whose ``finish_reason`` is set
        (``stop``/``length``/``aborted``/``error``); chunk ``token_ids``
        concatenate to exactly the non-streamed ``generated_tokens``.  A
        request that failed before producing tokens raises
        :class:`ServingError`.
        """
        if not self.continuous_batching:
            raise ServingError(
                "streaming requires continuous batching "
                "(ServingEngine(continuous_batching=True))"
            )
        while True:
            chunk = self.next_chunk(request_id)
            if chunk is not None:
                yield chunk
                if chunk.finish_reason is not None:
                    return
                continue
            failure = self._failed.get(request_id)
            if failure is not None:
                del self._failed[request_id]
                raise ServingError(
                    f"request {request_id!r} failed: {failure}"
                ) from failure
            if not self.lm_scheduler.has_request(request_id):
                raise ServingError(
                    f"no streaming request {request_id!r} in flight"
                )
            self.step(force=True)

    def cancel(self, request_id: str) -> Optional[InferenceResult]:
        """Abort an in-flight request; returns its ``aborted`` result (or None).

        A generation request queued or decoding in the continuous scheduler
        retires immediately — its KV cache and page-pool references are
        released before this method returns — and both the returned result
        and the buffered stream end with ``finish_reason="aborted"``.  A
        request still waiting in the micro-batcher is simply removed and gets
        an aborted result with no output payload.  Returns ``None`` when the
        request is unknown (already completed, or never submitted).
        """
        result = self.lm_scheduler.cancel(request_id)
        if result is None:
            queued = self.batcher.cancel(request_id)
            if queued is None:
                return None
            result = InferenceResult(
                request_id=request_id,
                model=queued.request.model,
                family=queued.request.family,
                output=RequestOutput(
                    request_id=request_id, finish_reason=FinishReason.ABORTED
                ),
                batch_size=0,
                enqueued_at=queued.enqueued_at,
                completed_at=self.clock(),
            )
        self._buffer_chunks()
        self._completed[result.request_id] = result
        while len(self._completed) > self.result_buffer:
            self._completed.popitem(last=False)
        return result

    def run_until_idle(self) -> List[InferenceResult]:
        """Drain the queues completely (forcing partial batches)."""
        results: List[InferenceResult] = []
        while self.pending:
            results.extend(self.step(force=True))
        return results

    def take_failures(self) -> List:
        """Pop and return ``(request_id, exception)`` pairs of failed requests."""
        failures = list(self._failed.items())
        self._failed.clear()
        return failures

    def serve(self, requests: Sequence[InferenceRequest]) -> List[InferenceResult]:
        """Submit, batch and run a request list; results in request order.

        Results are collected as batches complete (not via the bounded
        :meth:`result` registry), so the request list may be arbitrarily
        large.  A failed request raises :class:`ServingError` here.
        """
        for request in requests:
            self.submit(request)
        collected = {}
        while self.pending:
            for result in self.step(force=True):
                collected[result.request_id] = result
        output = []
        for request in requests:
            result = collected.get(request.request_id)
            if result is None:
                result = self.result(request.request_id)  # raises for failures
            else:
                self.discard_result(request.request_id)
            output.append(result)
        return output

    def discard_result(self, request_id: str, drop_chunks: bool = True) -> None:
        """Drop a stored result/failure without raising (async path cleanup).

        ``drop_chunks=False`` keeps the request's buffered TokenChunks — the
        async server passes it while a ``stream()`` consumer still needs the
        tail of the stream; every other caller frees them here so non-streamed
        generation traffic does not pin its full chunk history in the buffer.
        """
        self._completed.pop(request_id, None)
        self._failed.pop(request_id, None)
        if drop_chunks:
            self._chunks.pop(request_id, None)

    def result(self, request_id: str) -> InferenceResult:
        """Fetch (and forget) the result of a completed request.

        Raises :class:`ServingError` (chained to the original exception) when
        the request's batch failed to execute.
        """
        self._chunks.pop(request_id, None)  # fetch-and-forget covers the stream
        failure = self._failed.pop(request_id, None)
        if failure is not None:
            raise ServingError(f"request {request_id!r} failed: {failure}") from failure
        try:
            return self._completed.pop(request_id)
        except KeyError as exc:
            raise ServingError(f"no completed result for request {request_id!r}") from exc

    def failure(self, request_id: str) -> Optional[Exception]:
        """Peek the recorded failure of ``request_id`` without consuming it.

        :meth:`result` raises (and forgets) a failed request; the gateway's
        poll path needs to *distinguish* failed from still-pending without
        destroying the record, so this read is non-destructive.
        """
        return self._failed.get(request_id)

    def is_completed(self, request_id: str) -> bool:
        """True when :meth:`result` would return (not raise) for this id."""
        return request_id in self._completed

    @property
    def pending(self) -> int:
        """Requests queued or decoding but not yet completed."""
        return len(self.batcher) + len(self.lm_scheduler)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def metrics_text(self) -> str:
        """Prometheus text exposition of the engine's serving metrics."""
        return self.stats.metrics_text()

    def phase_report(self, root: str = "round"):
        """Wall-clock breakdown of traced decode rounds (see the tracer)."""
        return self.tracer.phase_report(root=root)

    def chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON of everything traced so far."""
        return self.tracer.chrome_trace()

    def health_report(self) -> dict:
        """``/healthz``-shaped snapshot: status, per-objective SLO attainment,
        open alerts, and live resource accounting.

        Always carries ``resources`` (queue depth, slot occupancy, per-slot
        KV bytes, pool sealed/decoded-LRU footprint, top KV consumers); the
        ``slo``/``alerts`` sections are filled — after a fresh evaluation —
        only when the engine was built with ``health=``.  ``status`` is
        ``"ok"`` unless a burn-rate alert is currently firing
        (``"degraded"``).
        """
        resources = self.lm_scheduler.resource_snapshot()
        resources["batcher_depth"] = len(self.batcher)
        report = {"status": "ok", "slo": {}, "alerts": [], "resources": resources}
        if self.health is not None:
            self.health.evaluate()
            report.update(self.health.report())
            report["resources"] = resources
        return report

    def event_log(self) -> str:
        """Unified JSONL: tracer spans/lifecycles + correlation-id'd health
        events, time-ordered on one shared epoch."""
        return unified_event_log(self.tracer, self.health)

    def write_event_log(self, path) -> int:
        """Write :meth:`event_log` to ``path``; returns the line count."""
        log = self.event_log()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(log)
        return len(log.splitlines())
