"""Batched quantized-inference engine and the synchronous serving scheduler.

:class:`InferenceEngine` turns one homogeneous micro-batch into per-request
results: it stacks the token-id rows, fetches the packed model from the
repository and runs a single batched forward pass through the quantized NumPy
transformer — one pass per batch, however many requests rode along.

:class:`ServingEngine` is the synchronous front door: ``submit`` queues
requests into the micro-batcher, ``step`` processes one ready batch, and
``serve`` is the submit-all/drain-all convenience used by benchmarks and
tests.  The asyncio front-end (:mod:`repro.serve.aio`) wraps the same engine
for concurrent clients.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.memory import gemm_traffic
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.serve.batcher import MicroBatcher, QueuedRequest
from repro.serve.repository import ModelRepository, PackedModel
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    ServingError,
    WorkloadFamily,
)
from repro.serve.stats import BatchRecord, ServingStats

__all__ = ["InferenceEngine", "ServingEngine"]


class InferenceEngine:
    """Run batched forward passes for the three workload families."""

    def __init__(self, repository: ModelRepository) -> None:
        self.repository = repository

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: Sequence[QueuedRequest],
        clock=time.monotonic,
        max_batch_size: Optional[int] = None,
    ):
        """Execute one homogeneous batch; returns ``(results, BatchRecord)``.

        All requests must share one ``batch_key`` (the micro-batcher
        guarantees this); mixing keys is a programming error.
        """
        if not batch:
            raise ServingError("cannot run an empty batch")
        keys = {q.request.batch_key for q in batch}
        if len(keys) != 1:
            raise ServingError(f"batch mixes incompatible requests: {sorted(keys)}")
        first = batch[0].request
        entry = self.repository.get(first.model, first.family, first.num_classes)
        inputs = np.stack([q.request.token_ids for q in batch])

        start = clock()
        if first.family == WorkloadFamily.CLASSIFY:
            outputs = self._run_classify(entry, inputs, first.num_classes)
        elif first.family == WorkloadFamily.SPAN:
            outputs = self._run_span(entry, inputs)
        else:
            # top_k is per-request (it does not affect the forward pass, so
            # requests with different top_k still share the batch).
            outputs = self._run_lm(entry, inputs, [q.request.top_k for q in batch])
        compute_seconds = clock() - start

        completed_at = clock()
        results = [
            InferenceResult(
                request_id=q.request.request_id,
                model=first.model,
                family=first.family,
                output=output,
                batch_size=len(batch),
                enqueued_at=q.enqueued_at,
                completed_at=completed_at,
                scheme=entry.scheme,
            )
            for q, output in zip(batch, outputs)
        ]
        record = BatchRecord(
            batch_size=len(batch),
            max_batch_size=int(max_batch_size or len(batch)),
            compute_seconds=compute_seconds,
            tokens=int(inputs.size),
            weight_stream_bytes=entry.packed_bytes,
            dram_bytes=self._dram_bytes(entry, int(inputs.size)),
            latencies=tuple(completed_at - q.enqueued_at for q in batch),
        )
        return results, record

    # ------------------------------------------------------------------ #
    # Families
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_classify(entry: PackedModel, inputs: np.ndarray, num_classes: int) -> List[dict]:
        logits = np.asarray(entry.model(inputs))
        if num_classes == 1:
            return [{"score": float(row[0])} for row in logits]
        probs = F.softmax(logits, axis=-1)
        labels = np.argmax(logits, axis=-1)
        return [
            {"label": int(label), "probs": [float(p) for p in prob_row]}
            for label, prob_row in zip(labels, probs)
        ]

    @staticmethod
    def _run_span(entry: PackedModel, inputs: np.ndarray) -> List[dict]:
        start_logits, end_logits = entry.model(inputs)
        start_logits = np.asarray(start_logits)
        end_logits = np.asarray(end_logits)
        outputs = []
        for s_row, e_row in zip(start_logits, end_logits):
            start = int(np.argmax(s_row))
            end_candidates = e_row.copy()
            end_candidates[:start] = -np.inf
            end = int(np.argmax(end_candidates))
            outputs.append(
                {"start": start, "end": end, "score": float(s_row[start] + end_candidates[end])}
            )
        return outputs

    @staticmethod
    def _run_lm(
        entry: PackedModel, inputs: np.ndarray, top_ks: Sequence[int]
    ) -> List[dict]:
        log_probs = np.asarray(entry.model.log_probs(inputs))[:, -1, :]
        outputs = []
        for row_lp, top_k in zip(log_probs, top_ks):
            k = min(int(top_k), row_lp.shape[-1])
            row_top = np.argsort(row_lp)[::-1][:k]
            outputs.append(
                {
                    "next_tokens": [int(t) for t in row_top],
                    "log_probs": [float(row_lp[t]) for t in row_top],
                }
            )
        return outputs

    # ------------------------------------------------------------------ #
    # Traffic accounting (ties into the repro.sim memory model)
    # ------------------------------------------------------------------ #
    def _dram_bytes(self, entry: PackedModel, batch_tokens: int) -> float:
        """Modelled DRAM traffic of one batched pass at the served precision.

        Every Linear GEMM is charged with the tile-reuse DRAM model the
        performance simulators use; operands are byte-aligned OVP streams
        (``bits/8`` bytes per element), outputs FP16.  Head layers that see
        fewer than ``batch_tokens`` rows are charged at the full row count,
        making this a slight over-estimate.
        """
        operand_bytes = self.repository.bits / 8.0
        total = 0.0
        for _, module in entry.model.named_modules():
            if not isinstance(module, Linear):
                continue
            m, k, n = module.gemm_shape(batch_tokens)
            total += gemm_traffic(
                m, k, n, activation_bytes=operand_bytes, weight_bytes=operand_bytes
            ).dram_bytes
        return total


class ServingEngine:
    """Synchronous serving scheduler: micro-batcher + engine + stats."""

    def __init__(
        self,
        repository: Optional[ModelRepository] = None,
        max_batch_size: int = 8,
        max_wait: float = 0.005,
        clock=time.monotonic,
        result_buffer: int = 4096,
    ) -> None:
        self.repository = repository or ModelRepository()
        self.clock = clock
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size, max_wait=max_wait, clock=clock
        )
        self.engine = InferenceEngine(self.repository)
        self.stats = ServingStats(clock=clock)
        # step() also returns its results, so callers that consume the return
        # value never call result(); the registries are therefore bounded
        # (oldest evicted first) to keep long-running serving loops leak-free.
        self.result_buffer = int(result_buffer)
        self._completed: "OrderedDict[str, InferenceResult]" = OrderedDict()
        self._failed: "OrderedDict[str, Exception]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Request lifecycle
    # ------------------------------------------------------------------ #
    def submit(self, request: InferenceRequest) -> str:
        """Queue a request; returns its id for :meth:`result` lookup."""
        self.batcher.submit(request)
        return request.request_id

    def warm(self, model: str, family: str, num_classes: int = 2) -> PackedModel:
        """Pre-quantize a model so first-request latency excludes the build."""
        return self.repository.get(model, family, num_classes)

    def step(self, force: bool = False) -> List[InferenceResult]:
        """Process at most one ready micro-batch; returns its results.

        A batch that fails to execute (unknown model, malformed input that
        slipped past request validation, …) does not take the scheduler
        down: its requests are marked failed and the error re-raises from
        :meth:`result` (or resolves the client future on the async path).
        """
        batch = self.batcher.next_batch(force=force)
        if batch is None:
            return []
        try:
            results, record = self.engine.run_batch(
                batch, clock=self.clock, max_batch_size=self.batcher.max_batch_size
            )
        except Exception as exc:
            for queued in batch:
                self._failed[queued.request.request_id] = exc
            while len(self._failed) > self.result_buffer:
                self._failed.popitem(last=False)
            return []
        self.stats.record_batch(record)
        for result in results:
            self._completed[result.request_id] = result
        while len(self._completed) > self.result_buffer:
            self._completed.popitem(last=False)
        return results

    def run_until_idle(self) -> List[InferenceResult]:
        """Drain the queue completely (forcing partial batches)."""
        results: List[InferenceResult] = []
        while len(self.batcher):
            results.extend(self.step(force=True))
        return results

    def take_failures(self) -> List:
        """Pop and return ``(request_id, exception)`` pairs of failed requests."""
        failures = list(self._failed.items())
        self._failed.clear()
        return failures

    def serve(self, requests: Sequence[InferenceRequest]) -> List[InferenceResult]:
        """Submit, batch and run a request list; results in request order.

        Results are collected as batches complete (not via the bounded
        :meth:`result` registry), so the request list may be arbitrarily
        large.  A failed request raises :class:`ServingError` here.
        """
        for request in requests:
            self.submit(request)
        collected = {}
        while len(self.batcher):
            for result in self.step(force=True):
                collected[result.request_id] = result
        output = []
        for request in requests:
            result = collected.get(request.request_id)
            if result is None:
                result = self.result(request.request_id)  # raises for failures
            else:
                self._completed.pop(request.request_id, None)
            output.append(result)
        return output

    def discard_result(self, request_id: str) -> None:
        """Drop a stored result/failure without raising (async path cleanup)."""
        self._completed.pop(request_id, None)
        self._failed.pop(request_id, None)

    def result(self, request_id: str) -> InferenceResult:
        """Fetch (and forget) the result of a completed request.

        Raises :class:`ServingError` (chained to the original exception) when
        the request's batch failed to execute.
        """
        failure = self._failed.pop(request_id, None)
        if failure is not None:
            raise ServingError(f"request {request_id!r} failed: {failure}") from failure
        try:
            return self._completed.pop(request_id)
        except KeyError as exc:
            raise ServingError(f"no completed result for request {request_id!r}") from exc

    @property
    def pending(self) -> int:
        """Requests queued but not yet executed."""
        return len(self.batcher)
