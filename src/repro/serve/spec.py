"""Draft-model speculative decoding for the continuous scheduler.

Decode rounds are latency-bound: every generated token pays one full pass of
the target model.  Speculative decoding breaks the one-token-per-pass wall by
pairing each served model with a *draft* — a cheaper proposer whose guesses
the target then verifies **in one batched multi-token pass** (the PR 3 ragged
round kernel generalised from 1 to ``m`` tokens per slot per round):

* **draft** — :func:`repro.models.zoo.build_draft_lm` truncates the target to
  its first ``draft_layers`` decoder layers (same seed → bit-identical shared
  weights), and the repository packs it like any served model
  (``"<model>@draft<L>"`` entries).  The draft keeps its own incremental KV
  cache and is fed exactly the tokens the target actually emitted, so it
  never needs rollback.
* **speculative heads** — at pairing time the decoder *calibrates* ``k``
  linear heads on the draft's hidden state (least squares against the target
  model's logits over seeded greedy rollouts; Medusa-style multi-position
  proposal, EAGLE-style token conditioning: head ``j`` also sees the
  embeddings of the ``j-1`` tokens proposed before it — at inference those
  inputs are only trusted when the earlier proposals were accepted, which is
  exactly the distribution the heads were fitted on).  One draft forward per
  round therefore proposes up to ``k`` tokens.
* **confidence gating** — each head's proposal is only used while its logit
  margin (top-1 minus top-2) clears a threshold, so the speculation depth
  adapts per slot per round: deep in a predictable stretch, shallow (or a
  plain round) when the draft is unsure.  This is what holds the acceptance
  rate up: doubtful tokens are never proposed.
* **verify** — the scheduler feeds ``[last_token, d_1 … d_k]`` through the
  target in one batched ``m``-token round, then *samples* each position with
  the request's own :class:`~repro.serve.sampling.Sampler`/generator.  A
  sampled token that matches the draft's proposal keeps the verified
  distributions valid for the next position; the first mismatch ends the
  round with the sampled token as the correction.  Greedy requests therefore
  emit exactly the argmax chain — token-for-token what non-speculative decode
  produces — and seeded sampled requests draw one Generator sample per
  emitted token from the true target conditionals, so the output law is the
  target model's, never the draft's.
* **rollback** — the target cache appended all ``m`` tokens optimistically;
  :meth:`~repro.serve.kvcache.SequenceKVCache.truncate_to` rolls the rejected
  suffix back (seals are deferred during the verify append, so reopened rows
  are exact full-precision values, and pool-shared sealed pages are never
  mutated).

The scheduler mixes speculative and plain slots in the same round: slots
whose model cannot be paired (already a draft, too few layers), whose budget
leaves no headroom, or whose heads are all gated simply decode one token as
before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.zoo import DRAFT_NAME_SEPARATOR, parse_draft_name
from repro.nn import functional as F
from repro.nn.attention import AttendScratch
from repro.serve.errors import ServingError
from repro.serve.kvcache import KVCacheConfig, SequenceKVCache, cache_for_model
from repro.serve.repository import ModelRepository, PackedModel
from repro.serve.requests import WorkloadFamily
from repro.serve.telemetry import NULL_TRACER

__all__ = ["SpeculativeConfig", "SpeculativeDecoder"]


@dataclass(frozen=True)
class SpeculativeConfig:
    """How the scheduler speculates.

    Parameters
    ----------
    draft_layers:
        Decoder layers kept in the layer-truncated draft (must be smaller
        than the target's depth).  One layer gives the cheapest proposer;
        acceptance comes from the calibrated heads, not from draft depth.
    num_speculative_tokens:
        ``k``: speculative heads fitted at calibration and the maximum
        tokens proposed per slot per round (the verify pass then covers
        ``k + 1`` positions).
    margin_threshold:
        Confidence gate for heads 2..k: a head's proposal is only used while
        its logit margin (top-1 − top-2) reaches this value.  Raising it
        trades emitted tokens per round for acceptance rate.
    first_margin_threshold:
        Gate for head 1 (``0`` proposes whenever budget allows).
    calibration_sequences:
        Greedy rollouts fitted against, split between short- and long-prompt
        groups.  More sequences sharpen the heads and slow the one-off
        pairing step.
    calibration_tokens:
        Tokens generated per calibration rollout (clamped to the target's
        positional budget).
    calibration_prompt_len:
        Prompt length of the short rollout group (the long group uses 3×).
    calibration_seed / feature_seed:
        Seeds of the rollout prompts and the random feature projection; the
        whole pairing is deterministic given the repository seed.
    feature_width:
        GELU random-feature expansion of the draft hidden state, in multiples
        of the hidden size (``0`` fits on the plain hidden state).
    """

    draft_layers: int = 1
    num_speculative_tokens: int = 3
    margin_threshold: float = 4.0
    first_margin_threshold: float = 2.0
    calibration_sequences: int = 24
    calibration_tokens: int = 40
    calibration_prompt_len: int = 8
    calibration_seed: int = 1234
    feature_seed: int = 99
    feature_width: int = 2

    def __post_init__(self) -> None:
        if self.draft_layers < 1:
            raise ServingError("draft_layers must be >= 1")
        if self.num_speculative_tokens < 1:
            raise ServingError("num_speculative_tokens must be >= 1")
        if self.margin_threshold < 0 or self.first_margin_threshold < 0:
            raise ServingError("margin thresholds must be >= 0")
        if self.calibration_sequences < 2:
            raise ServingError("calibration needs at least 2 sequences")
        if self.calibration_tokens < self.num_speculative_tokens + 2:
            raise ServingError(
                "calibration_tokens must exceed num_speculative_tokens + 1"
            )
        if self.calibration_prompt_len < 2:
            raise ServingError("calibration_prompt_len must be >= 2")
        if self.feature_width < 0:
            raise ServingError("feature_width must be >= 0")


@dataclass
class _DraftPair:
    """One calibrated (target, draft) pairing shared by every request."""

    entry: PackedModel                 # the packed draft
    heads: List[np.ndarray]            # head j: (features_j, vocab) weights
    feature_r: Optional[np.ndarray]    # (hidden, feature_width*hidden) or None
    emb: np.ndarray                    # token-embedding rows (vocab, hidden)
    vocab: int

    @property
    def model(self):
        return self.entry.model


class _BorrowedLayerCache:
    """The draft's view of one target layer cache, plus this round's token.

    The draft is the target's *layer prefix* built from the same seed and
    packed through the same deterministic quantizer, so its layer ``i``
    weights — and therefore the K/V it would cache for any token — are the
    target's layer ``i`` values.  Instead of re-computing and re-storing
    them, the draft borrows the target's pages copy-on-write: ``kv`` reads
    the target's cache (decoded once, through the shared page pool) and
    appends only the current round's one in-flight token, which is kept
    locally and discarded — the verify pass re-derives and truly appends it.
    The target cache is never mutated, and the draft needs no KV memory,
    no feed bookkeeping and no rollback of its own.
    """

    __slots__ = ("_base", "_k_new", "_v_new")

    def __init__(self, base) -> None:
        self._base = base
        self._k_new = None
        self._v_new = None

    @property
    def seq_len(self) -> int:
        return self._base.seq_len

    def append(self, k_new, v_new) -> None:
        self._k_new, self._v_new = k_new, v_new

    def kv(self):
        k, v = self._base.kv()
        return (
            np.concatenate([k, self._k_new], axis=1),
            np.concatenate([v, self._v_new], axis=1),
        )

    @classmethod
    def kv_many(cls, caches):
        """Batched fetch: one pool pass over every slot's borrowed pages."""
        base_kvs = type(caches[0]._base).kv_many([c._base for c in caches])
        return [
            (
                np.concatenate([k, cache._k_new], axis=1),
                np.concatenate([v, cache._v_new], axis=1),
            )
            for (k, v), cache in zip(base_kvs, caches)
        ]


class _BorrowedSequenceCache:
    """Sequence-level shim handing the draft one borrowed view per layer."""

    def __init__(self, target_cache: SequenceKVCache, num_layers: int) -> None:
        self._layers = [
            _BorrowedLayerCache(target_cache.layer(i)) for i in range(num_layers)
        ]
        self.seq_len = target_cache.seq_len

    def layer(self, index: int) -> _BorrowedLayerCache:
        return self._layers[index]


class SpeculativeDecoder:
    """Propose draft tokens for continuous-batching slots.

    Owned by one :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`
    (or shared across schedulers of one repository — pairings are per model).
    The scheduler calls :meth:`plan` once per decode round with the slots of
    one model entry; slots whose model cannot be paired get an empty
    proposal and decode plainly.  The proposer is *stateless* per request:
    the draft attends through borrowed views of the target's own KV pages
    (see :class:`_BorrowedLayerCache`), so there is nothing to create, sync
    or release as requests come and go.
    """

    def __init__(
        self,
        repository: ModelRepository,
        config: Optional[SpeculativeConfig] = None,
        target_cache_config: Optional[KVCacheConfig] = None,
        tracer=None,
    ) -> None:
        self.repository = repository
        self.config = config or SpeculativeConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Calibration rollouts decode through the same cache precision the
        # scheduler serves with, so the fitted heads see the on-policy
        # trajectories (quantized-KV greedy loops included), not an fp proxy.
        self.target_cache_config = target_cache_config or KVCacheConfig(
            bits=repository.bits
        )
        self._pairs: Dict[Tuple[str, str], Optional[_DraftPair]] = {}
        self.pair_errors: Dict[Tuple[str, str], Exception] = {}
        # Persistent round scratch for the draft's batched single-token
        # pass, mirroring the scheduler's: pad/mask/temporary buffers
        # survive across rounds instead of reallocating each plan() call.
        self._round_scratch = AttendScratch()

    # ------------------------------------------------------------------ #
    # Pairing / calibration
    # ------------------------------------------------------------------ #
    def warm(self, model: str, family: str = WorkloadFamily.LM) -> _DraftPair:
        """Calibrate the pairing for ``model`` now; raises when unsupported.

        The scheduler pairs lazily on a request's first decode round, which
        puts the one-off calibration cost on that request's latency; warming
        moves it to deploy time (next to ``ServingEngine.warm``).
        """
        pair = self.pair_for(model, family, self.repository.get(model, family))
        if pair is None:
            raise self.pair_errors[(model, family)]
        return pair

    def pair_for(
        self, model: str, family: str, target_entry: PackedModel
    ) -> Optional[_DraftPair]:
        """The calibrated pair for ``model`` (``None`` when unsupported).

        A failed pairing (target too shallow, not a decoder LM, …) is
        remembered in :attr:`pair_errors` and the model serves plain decode —
        speculation must never take a model down.
        """
        key = (model, family)
        if key in self._pairs:
            return self._pairs[key]
        try:
            with self.tracer.span(
                "spec_calibrate",
                attrs={"model": model} if self.tracer.enabled else None,
            ):
                pair = self._build_pair(model, family, target_entry)
        except Exception as exc:  # fall back to plain decode for this model
            self.pair_errors[key] = exc
            pair = None
        self._pairs[key] = pair
        return pair

    def _build_pair(
        self, model: str, family: str, target_entry: PackedModel
    ) -> _DraftPair:
        if family != WorkloadFamily.LM:
            raise ServingError("speculative decoding pairs LM models only")
        if parse_draft_name(model) is not None:
            raise ServingError(f"{model!r} is itself a draft; refusing to pair")
        draft_name = f"{model}{DRAFT_NAME_SEPARATOR}{self.config.draft_layers}"
        draft_entry = self.repository.get(draft_name, family)
        target = target_entry.model
        draft = draft_entry.model
        vocab = int(target.config.vocab_size)
        if int(draft.config.vocab_size) != vocab:
            raise ServingError(
                f"draft vocab {draft.config.vocab_size} != target vocab {vocab}"
            )
        hidden = int(draft.config.hidden_size)
        feature_r = None
        if self.config.feature_width > 0:
            feature_r = np.random.default_rng(self.config.feature_seed).normal(
                0.0, 1.0 / np.sqrt(hidden), size=(hidden, self.config.feature_width * hidden)
            )
        emb = draft.backbone.embeddings.token_embedding.weight.data
        rollouts = self._calibration_rollouts(target, vocab, draft)
        heads = self._fit_heads(rollouts, feature_r, emb, vocab)
        return _DraftPair(
            entry=draft_entry, heads=heads, feature_r=feature_r, emb=emb, vocab=vocab
        )

    def _calibration_rollouts(
        self, target, vocab: int, draft
    ) -> List[Tuple[np.ndarray, np.ndarray, int, np.ndarray]]:
        """Seeded greedy rollouts of the target — the on-policy fitting set.

        Two prompt-length groups (short prompts rolled long, longer prompts
        rolled shorter) cover both the early free-running positions and the
        deeper in-context ones.  Rollouts decode through incremental caches
        at the *serving* precision (``target_cache_config``), so both the
        trajectories and the recorded per-position log-probs are exactly what
        the scheduler's decode rounds will produce.

        The draft hidden states are captured the same way :meth:`plan` will
        produce them: a batched single-token incremental pass per step,
        attending *borrowed* views of the target's quantized pages.  A clean
        full-attention forward is **not** a substitute — quantize-on-append
        caches perturb the served hidden states enough to flip a third of
        greedy argmaxes, so heads fit on fp hidden states systematically
        mispredict the quantized trajectory they are scored against.

        Returns ``(sequences, log_probs, prompt_len, hiddens)`` per group,
        where ``log_probs[:, i]`` is the target's distribution at position
        ``prompt_len - 1 + i`` and ``hiddens[:, s]`` is the draft's
        borrowed-cache hidden state after consuming generated token ``s``.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.calibration_seed)
        max_positions = getattr(getattr(target, "config", None), "max_positions", None)
        short = cfg.calibration_prompt_len
        long_prompt = 3 * short
        if max_positions is not None:
            long_prompt = min(long_prompt, max(short, max_positions // 2))
        pool = self.target_cache_config.make_pool()
        groups: List[Tuple[np.ndarray, np.ndarray, int]] = []
        plans = (
            (short, (cfg.calibration_sequences + 1) // 2),
            (long_prompt, cfg.calibration_sequences // 2),
        )
        for prompt_len, count in plans:
            if count < 1:
                continue
            steps = cfg.calibration_tokens
            if max_positions is not None:
                steps = min(steps, max_positions - prompt_len)
            if steps < cfg.num_speculative_tokens + 2:
                raise ServingError(
                    "calibration rollouts too short for the configured "
                    "speculation depth; lower calibration_prompt_len or "
                    "num_speculative_tokens"
                )
            prompts = rng.integers(0, vocab, size=(count, prompt_len))
            caches = [
                cache_for_model(target, self.target_cache_config, pool=pool)
                for _ in range(count)
            ]
            depth = draft.backbone.num_layers
            try:
                log_probs = target.log_probs_incremental(
                    prompts, caches, last_only=True
                )[:, -1, :]
                columns = [prompts]
                distributions = [log_probs]
                hiddens = []
                for _ in range(steps):
                    step_tokens = np.argmax(log_probs, axis=-1).astype(np.int64)
                    columns.append(step_tokens[:, None])
                    # The draft sees this token exactly as plan() will: a
                    # borrowed view of the target's pages *before* the
                    # target has consumed it.
                    borrowed = [
                        _BorrowedSequenceCache(cache, depth) for cache in caches
                    ]
                    hiddens.append(
                        draft.backbone.forward_incremental(
                            step_tokens[:, None],
                            borrowed,
                            batched_rounds=True,
                            scratch=self._round_scratch,
                        )[:, -1, :]
                    )
                    log_probs = target.log_probs_incremental(
                        step_tokens[:, None], caches
                    )[:, -1, :]
                    distributions.append(log_probs)
            finally:
                for cache in caches:
                    cache.release()
            groups.append(
                (
                    np.concatenate(columns, axis=1),
                    np.stack(distributions, axis=1),
                    prompt_len,
                    np.stack(hiddens, axis=1),
                )
            )
        return groups

    def _fit_heads(
        self, rollouts, feature_r, emb, vocab: int
    ) -> List[np.ndarray]:
        """Least-squares heads: draft hidden (+ token conditioning) → target log-probs.

        Head ``j`` (1-based) maps the draft's borrowed-cache hidden state
        after consuming generated token ``s`` — plus the embeddings of the
        ``j-1`` *true* intermediate tokens — onto the target's serving
        distribution for token ``s + j``.  At inference the intermediate
        tokens are the earlier heads' proposals; since head ``j`` is only
        consulted when those were accepted, and the hidden states come from
        the same borrowed-quantized-page pass ``plan()`` runs, the
        inference-time input distribution matches the calibration one
        exactly.
        """
        k = self.config.num_speculative_tokens
        x_rows: List[List[np.ndarray]] = [[] for _ in range(k)]
        y_rows: List[List[np.ndarray]] = [[] for _ in range(k)]
        for seqs, log_probs, prompt_len, hiddens in rollouts:
            seqs = np.asarray(seqs, dtype=np.int64)
            steps = hiddens.shape[1]
            # Shared row set: hidden after token ``s`` (s = 0..steps-k) so
            # every head has its target distribution and chain tokens.
            positions = np.arange(0, steps - k + 1)
            base = hiddens[:, positions].reshape(-1, hiddens.shape[-1])
            base = self._expand(base, feature_r)
            for j in range(k):
                parts = [base]
                for i in range(1, j + 1):
                    tokens = seqs[:, prompt_len + positions + i].reshape(-1)
                    parts.append(emb[tokens])
                parts.append(np.ones((base.shape[0], 1)))
                x_rows[j].append(np.concatenate(parts, axis=1))
                y_rows[j].append(
                    log_probs[:, positions + 1 + j].reshape(-1, vocab)
                )
        heads = []
        for j in range(k):
            design = np.concatenate(x_rows[j], axis=0)
            targets = np.concatenate(y_rows[j], axis=0)
            weight, *_ = np.linalg.lstsq(design, targets, rcond=None)
            heads.append(weight)
        return heads

    @staticmethod
    def _expand(hidden: np.ndarray, feature_r: Optional[np.ndarray]) -> np.ndarray:
        """Hidden state plus its GELU random-feature expansion."""
        if feature_r is None:
            return hidden
        return np.concatenate([hidden, F.gelu(hidden @ feature_r)], axis=-1)

    # ------------------------------------------------------------------ #
    # Per-round proposal
    # ------------------------------------------------------------------ #
    def plan(self, slots: Sequence, max_tokens: Sequence[int]) -> List[List[int]]:
        """Propose draft tokens for one round of same-model slots.

        ``max_tokens[i]`` caps slot ``i``'s proposals (its remaining token
        budget minus the guaranteed correction/bonus token); ``< 1`` means
        the slot decodes plainly this round.  Each speculating slot's last
        emitted token runs through the draft's layer stack in one batched
        single-token pass — attending *borrowed* views of the target's own
        KV pages, so the draft pass carries no state between rounds — then
        all ``k`` speculative heads read the final hidden state and their
        proposals are confidence-gated per slot.  Returns one (possibly
        empty) token list per slot, in slot order.
        """
        proposals: List[List[int]] = [[] for _ in slots]
        staged = [
            (index, slot) for index, slot in enumerate(slots) if max_tokens[index] >= 1
        ]
        if not staged:
            return proposals
        # The scheduler calls plan() per model-entry group, so one pairing
        # covers every staged slot.
        first = staged[0][1]
        pair = self.pair_for(first.request.model, first.request.family, first.entry)
        if pair is None:
            return proposals
        depth = pair.entry.model.backbone.num_layers
        tokens = np.array([[slot.generated[-1]] for _, slot in staged], dtype=np.int64)
        borrowed = [_BorrowedSequenceCache(slot.cache, depth) for _, slot in staged]
        hidden = pair.model.backbone.forward_incremental(
            tokens, borrowed, batched_rounds=True, scratch=self._round_scratch
        )[:, -1, :]
        self._propose(pair, hidden, [index for index, _ in staged], max_tokens, proposals)
        return proposals

    def _propose(self, pair, hidden, indices, max_tokens, proposals) -> None:
        """Run the speculative heads over one group and gate per slot."""
        cfg = self.config
        count = hidden.shape[0]
        base = self._expand(hidden, pair.feature_r)
        ones = np.ones((count, 1))
        chain: List[np.ndarray] = []   # head j's proposed token per row
        rows = np.arange(count)
        for j, weight in enumerate(pair.heads):
            if not any(
                len(proposals[index]) == j and j < max_tokens[index]
                for index in indices
            ):
                break  # every chain is gated closed; skip the deeper heads
            parts = [base] + [pair.emb[tokens] for tokens in chain] + [ones]
            logits = np.concatenate(parts, axis=1) @ weight
            top = np.argmax(logits, axis=1)
            top_values = logits[rows, top]
            runner_up = np.partition(logits, -2, axis=1)[:, -2]
            margins = top_values - runner_up
            chain.append(top)
            threshold = cfg.first_margin_threshold if j == 0 else cfg.margin_threshold
            for row, index in enumerate(indices):
                if len(proposals[index]) != j:
                    continue  # an earlier head was gated; the chain is closed
                if j < max_tokens[index] and margins[row] >= threshold:
                    proposals[index].append(int(top[row]))
