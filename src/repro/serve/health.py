"""Serving health: declarative SLOs, burn-rate alerting, health reports.

PR 6 gave the serving stack raw signals (span tracer, phase profiler,
Prometheus-style registry); this module *interprets* them.  Three pieces:

``SLOClass`` / ``HealthConfig``
    Declarative objectives.  An :class:`SLOClass` names a traffic class (the
    ``slo_class`` field of :class:`~repro.serve.requests.InferenceRequest`)
    and its targets: TTFT and request-latency thresholds with an attainment
    fraction, plus an availability fraction over finish reasons.  A
    :class:`HealthConfig` bundles the classes with a
    :class:`BurnRatePolicy` and an evaluation interval.

``HealthMonitor``
    Evaluates the objectives continuously against the *existing* serving
    instruments — the ``serve_ttft_seconds`` / ``serve_request_latency_seconds``
    histograms (per ``slo_class`` label) and the
    ``serve_requests_finished_total{reason,slo_class,tenant}`` counter — exposing
    ``serve_slo_attainment{slo_class,objective}`` gauges, windowed
    ``serve_slo_burn_rate`` gauges and cumulative error-budget counters.
    Alerting follows the multi-window burn-rate recipe: an alert *fires*
    only when both the fast (1 m) and slow (30 m) windows burn error budget
    above ``fire_threshold`` — a brief spike cannot page — and *resolves*
    with hysteresis once the fast window cools below the (lower)
    ``resolve_threshold``, so a burn hovering between the two thresholds
    never flaps.  Transitions emit :class:`HealthEvent` records; the firing
    and resolving event of one alert share a ``correlation_id``.

``unified_event_log``
    Merges a tracer's span/lifecycle JSONL with the monitor's health events
    onto one shared time base — one correlation-id'd event log per engine
    (``ServingEngine.event_log()``).

Attainment is read from the histograms' cumulative bucket counts: the
fraction of observations at or below the first bucket bound >= the target
(buckets are fixed, so pick targets on bucket bounds for exact accounting; a
target beyond the largest finite bound clamps to it, which under-counts good
events — conservative).  Availability counts ``stop``/``length`` finishes as
good and ``error`` as bad; ``aborted`` (client-initiated cancels) is excluded.

The clock is injected (the scheduler's clock), so a fake clock drives the
burn-rate windows deterministically in tests.
"""

from __future__ import annotations

import bisect
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.serve.errors import ServingError
from repro.serve.sampling import FinishReason
from repro.serve.stats import _LATENCY_BUCKETS
from repro.serve.telemetry import MetricsRegistry

__all__ = [
    "SLOClass",
    "BurnRatePolicy",
    "HealthConfig",
    "HealthEvent",
    "HealthMonitor",
    "OBJECTIVES",
    "unified_event_log",
]

#: The three objectives every SLO class is evaluated on.
OBJECTIVES = ("ttft", "latency", "availability")

#: Finish reasons that count as good/bad availability events.  ``aborted``
#: is deliberately in neither set: a client cancelling its own request says
#: nothing about server health.  ``deadline`` counts as bad — a request the
#: server accepted but failed to finish in time spends error budget, which is
#: what lets burn-rate alerts (and shed-on-burn-rate admission) react to
#: overload before latency percentiles have fully drifted.
_GOOD_FINISHES = (FinishReason.STOP, FinishReason.LENGTH)
_BAD_FINISHES = (FinishReason.ERROR, FinishReason.DEADLINE)


@dataclass(frozen=True)
class SLOClass:
    """Objectives of one traffic class (``InferenceRequest.slo_class``)."""

    name: str = "default"
    ttft_target_seconds: float = 0.2048
    latency_target_seconds: float = 1.6384
    attainment_target: float = 0.99    # fraction of requests inside the targets
    availability_target: float = 0.999  # fraction of finishes that are not errors

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ServingError("SLOClass.name must be a non-empty string")
        if self.ttft_target_seconds <= 0 or self.latency_target_seconds <= 0:
            raise ServingError("SLO latency targets must be positive seconds")
        for target in (self.attainment_target, self.availability_target):
            if not 0.0 < target < 1.0:
                raise ServingError(
                    f"SLO targets must be in (0, 1); got {target} "
                    "(a target of exactly 1 leaves no error budget to burn)"
                )

    def objective_target(self, objective: str) -> float:
        """The attainment fraction this objective must meet."""
        if objective == "availability":
            return self.availability_target
        return self.attainment_target

    def threshold_seconds(self, objective: str) -> Optional[float]:
        """The latency bound of ``objective`` (None for availability)."""
        if objective == "ttft":
            return self.ttft_target_seconds
        if objective == "latency":
            return self.latency_target_seconds
        return None


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window burn-rate alerting thresholds.

    A burn rate of 1.0 consumes exactly the error budget over the SLO
    period; 14.4 (the classic fast-page threshold) exhausts a 30-day budget
    in two hours.  Firing requires *both* windows hot; resolving requires
    only the fast window cool (``resolve_threshold < fire_threshold`` is the
    hysteresis band).
    """

    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 1800.0
    fire_threshold: float = 14.4
    resolve_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.fast_window_seconds <= 0 or self.slow_window_seconds <= 0:
            raise ServingError("burn-rate windows must be positive seconds")
        if self.fast_window_seconds >= self.slow_window_seconds:
            raise ServingError("fast window must be shorter than the slow window")
        if self.fire_threshold <= 0:
            raise ServingError("fire_threshold must be positive")
        if not 0 <= self.resolve_threshold < self.fire_threshold:
            raise ServingError(
                "resolve_threshold must sit below fire_threshold (hysteresis)"
            )


@dataclass(frozen=True)
class HealthConfig:
    """Everything the monitor needs: classes, policy, evaluation cadence."""

    classes: Tuple[SLOClass, ...] = (SLOClass(),)
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)
    evaluation_interval_seconds: float = 1.0
    max_events: int = 10_000

    def __post_init__(self) -> None:
        if not self.classes:
            raise ServingError("HealthConfig needs at least one SLOClass")
        classes = tuple(
            SLOClass(name=c) if isinstance(c, str) else c for c in self.classes
        )
        object.__setattr__(self, "classes", classes)
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate SLO class names: {sorted(names)}")
        if self.evaluation_interval_seconds < 0:
            raise ServingError("evaluation_interval_seconds must be >= 0")
        if self.max_events < 1:
            raise ServingError("max_events must be >= 1")

    def class_named(self, name: str) -> Optional[SLOClass]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


@dataclass(frozen=True)
class HealthEvent:
    """One alert transition.  Fire/resolve pairs share ``correlation_id``."""

    correlation_id: str
    ts: float
    kind: str          # "slo_burn_rate"
    slo_class: str
    objective: str     # "ttft" | "latency" | "availability"
    state: str         # "firing" | "resolved"
    burn_fast: float
    burn_slow: float
    attainment: float
    target: float

    def as_dict(self, epoch: float = 0.0) -> Dict[str, Any]:
        return {
            "type": "event",
            "kind": self.kind,
            "correlation_id": self.correlation_id,
            "ts_us": round((self.ts - epoch) * 1e6, 3),
            "slo_class": self.slo_class,
            "objective": self.objective,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "attainment": round(self.attainment, 6),
            "target": self.target,
        }


class _ObjectiveState:
    """Rolling burn-rate state of one (class, objective) pair."""

    __slots__ = (
        "snapshots", "firing", "correlation_id", "last_bad",
        "burn_fast", "burn_slow", "attainment", "good", "total",
    )

    def __init__(self) -> None:
        # (ts, bad, total) cumulative snapshots, pruned to the slow window
        # (plus one older entry kept as the window base).
        self.snapshots: Deque[Tuple[float, float, float]] = deque()
        self.firing = False
        self.correlation_id: Optional[str] = None
        self.last_bad = 0.0
        self.burn_fast = 0.0
        self.burn_slow = 0.0
        self.attainment = 1.0
        self.good = 0.0
        self.total = 0.0


class HealthMonitor:
    """Continuously evaluate SLO classes against the serving instruments.

    The monitor *reads* the histograms/counters that
    :class:`~repro.serve.stats.ServingStats` keeps (pass the same registry)
    and *writes* the derived gauges, budget counters and
    :class:`HealthEvent` log.  ``evaluate()`` is cheap (a handful of dict
    lookups per class/objective); :meth:`maybe_evaluate` rate-limits it to
    the configured interval for per-step engine use.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        config: Optional[HealthConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else HealthConfig()
        self.clock = clock
        r = registry
        # The read-side instruments ServingStats populates; created here too
        # so a monitor can attach before (or without) any stats traffic.
        self._m_ttft = r.histogram(
            "serve_ttft_seconds", "Enqueue to first streamed token",
            _LATENCY_BUCKETS, labels=("slo_class",),
        )
        self._m_latency = r.histogram(
            "serve_request_latency_seconds", "Enqueue-to-completion latency",
            _LATENCY_BUCKETS, labels=("slo_class",),
        )
        self._m_finished = r.counter(
            "serve_requests_finished_total", "Finished generation requests",
            labels=("reason", "slo_class", "tenant"),
        )
        # The write-side (derived) instruments.
        self._m_attainment = r.gauge(
            "serve_slo_attainment",
            "Fraction of events meeting the objective, cumulative",
            labels=("slo_class", "objective"),
        )
        self._m_burn = r.gauge(
            "serve_slo_burn_rate",
            "Error-budget burn rate over the alert windows",
            labels=("slo_class", "objective", "window"),
        )
        self._m_budget_used = r.counter(
            "serve_slo_budget_events_total",
            "Objective-violating events (error-budget consumption)",
            labels=("slo_class", "objective"),
        )
        self._m_firing = r.gauge(
            "serve_slo_alert_firing",
            "1 while the objective's burn-rate alert fires",
            labels=("slo_class", "objective"),
        )
        self._m_transitions = r.counter(
            "serve_health_events_total",
            "Burn-rate alert transitions",
            labels=("state",),
        )
        self._states: Dict[Tuple[str, str], _ObjectiveState] = {}
        self._events: List[HealthEvent] = []
        self._event_counter = 0
        self._last_eval: Optional[float] = None
        for cls in self.config.classes:
            for objective in OBJECTIVES:
                self._states[(cls.name, objective)] = _ObjectiveState()
                self._m_attainment.set(1.0, slo_class=cls.name, objective=objective)
                self._m_firing.set(0.0, slo_class=cls.name, objective=objective)

    # ------------------------------------------------------------------ #
    # Instrument reads
    # ------------------------------------------------------------------ #
    def _observed(self, cls: SLOClass, objective: str) -> Tuple[float, float]:
        """``(good, total)`` cumulative events of one class/objective."""
        if objective == "availability":
            # value_sum aggregates across the tenant label: availability is
            # per-class, whichever tenants contributed.
            good = sum(
                self._m_finished.value_sum(reason=reason, slo_class=cls.name)
                for reason in _GOOD_FINISHES
            )
            bad = sum(
                self._m_finished.value_sum(reason=reason, slo_class=cls.name)
                for reason in _BAD_FINISHES
            )
            return good, good + bad
        hist = self._m_ttft if objective == "ttft" else self._m_latency
        cumulative = hist.bucket_counts(slo_class=cls.name)
        total = cumulative[-1]
        if not total:
            return 0.0, 0.0
        target = cls.threshold_seconds(objective)
        idx = bisect.bisect_left(hist.buckets, target)
        # Beyond the largest finite bound the +Inf bucket would count *every*
        # observation as good; clamp to the largest finite bound instead
        # (conservative: over-long targets under-count good events).
        idx = min(idx, len(hist.buckets) - 1)
        return float(cumulative[idx]), float(total)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def maybe_evaluate(self, now: Optional[float] = None) -> bool:
        """Evaluate if the configured interval elapsed; True when it ran."""
        now = self.clock() if now is None else now
        interval = self.config.evaluation_interval_seconds
        if self._last_eval is not None and now - self._last_eval < interval:
            return False
        self.evaluate(now)
        return True

    def _burn_over(
        self, state: _ObjectiveState, now: float, window: float,
        bad: float, total: float, budget: float,
    ) -> float:
        """Error-budget burn over ``[now - window, now]`` (0 with no events)."""
        base_bad = base_total = 0.0
        for ts, snap_bad, snap_total in state.snapshots:
            if ts > now - window:
                break
            base_bad, base_total = snap_bad, snap_total
        delta_total = total - base_total
        if delta_total <= 0:
            return 0.0
        return ((bad - base_bad) / delta_total) / budget

    def evaluate(self, now: Optional[float] = None) -> List[HealthEvent]:
        """Evaluate every class/objective; returns the events emitted now."""
        now = self.clock() if now is None else now
        self._last_eval = now
        policy = self.config.policy
        emitted: List[HealthEvent] = []
        for cls in self.config.classes:
            for objective in OBJECTIVES:
                state = self._states[(cls.name, objective)]
                good, total = self._observed(cls, objective)
                bad = total - good
                target = cls.objective_target(objective)
                budget = 1.0 - target
                attainment = (good / total) if total else 1.0
                state.good, state.total, state.attainment = good, total, attainment
                self._m_attainment.set(
                    attainment, slo_class=cls.name, objective=objective
                )
                if bad > state.last_bad:
                    self._m_budget_used.inc(
                        bad - state.last_bad, slo_class=cls.name, objective=objective
                    )
                    state.last_bad = bad
                state.burn_fast = self._burn_over(
                    state, now, policy.fast_window_seconds, bad, total, budget
                )
                state.burn_slow = self._burn_over(
                    state, now, policy.slow_window_seconds, bad, total, budget
                )
                self._m_burn.set(
                    state.burn_fast,
                    slo_class=cls.name, objective=objective, window="fast",
                )
                self._m_burn.set(
                    state.burn_slow,
                    slo_class=cls.name, objective=objective, window="slow",
                )
                # Append the new snapshot, then prune everything older than
                # the slow window except the newest such entry (the base).
                state.snapshots.append((now, bad, total))
                horizon = now - policy.slow_window_seconds
                while len(state.snapshots) > 1 and state.snapshots[1][0] <= horizon:
                    state.snapshots.popleft()
                event = self._transition(cls, objective, state, now, target)
                if event is not None:
                    emitted.append(event)
        return emitted

    def _transition(
        self, cls: SLOClass, objective: str, state: _ObjectiveState,
        now: float, target: float,
    ) -> Optional[HealthEvent]:
        """Apply the fire/resolve state machine; returns the emitted event."""
        policy = self.config.policy
        if not state.firing:
            if (
                state.burn_fast >= policy.fire_threshold
                and state.burn_slow >= policy.fire_threshold
            ):
                state.firing = True
                self._event_counter += 1
                state.correlation_id = f"alert-{self._event_counter}"
                return self._emit(cls, objective, state, now, target, "firing")
            return None
        if state.burn_fast <= policy.resolve_threshold:
            state.firing = False
            event = self._emit(cls, objective, state, now, target, "resolved")
            state.correlation_id = None
            return event
        return None

    def _emit(
        self, cls: SLOClass, objective: str, state: _ObjectiveState,
        now: float, target: float, new_state: str,
    ) -> HealthEvent:
        event = HealthEvent(
            correlation_id=state.correlation_id,
            ts=now,
            kind="slo_burn_rate",
            slo_class=cls.name,
            objective=objective,
            state=new_state,
            burn_fast=state.burn_fast,
            burn_slow=state.burn_slow,
            attainment=state.attainment,
            target=target,
        )
        self._events.append(event)
        if len(self._events) > self.config.max_events:
            del self._events[: len(self._events) - self.config.max_events]
        self._m_firing.set(
            1.0 if new_state == "firing" else 0.0,
            slo_class=cls.name, objective=objective,
        )
        self._m_transitions.inc(state=new_state)
        return event

    # ------------------------------------------------------------------ #
    # Introspection / export
    # ------------------------------------------------------------------ #
    @property
    def firing(self) -> bool:
        """True while any objective's alert fires."""
        return any(state.firing for state in self._states.values())

    def events(self) -> List[HealthEvent]:
        return list(self._events)

    def alerts(self) -> List[HealthEvent]:
        """The firing event of every currently-firing alert."""
        open_ids = {
            state.correlation_id
            for state in self._states.values()
            if state.firing
        }
        return [
            event
            for event in self._events
            if event.state == "firing" and event.correlation_id in open_ids
        ]

    def report(self) -> Dict[str, Any]:
        """The SLO portion of a ``/healthz`` payload (call evaluate() first)."""
        slo: Dict[str, Dict[str, Any]] = {}
        for cls in self.config.classes:
            per_objective: Dict[str, Any] = {}
            for objective in OBJECTIVES:
                state = self._states[(cls.name, objective)]
                per_objective[objective] = {
                    "attainment": round(state.attainment, 6),
                    "target": cls.objective_target(objective),
                    "threshold_seconds": cls.threshold_seconds(objective),
                    "events": int(state.total),
                    "burn_fast": round(state.burn_fast, 4),
                    "burn_slow": round(state.burn_slow, 4),
                    "firing": state.firing,
                }
            slo[cls.name] = per_objective
        return {
            "status": "degraded" if self.firing else "ok",
            "slo": slo,
            "alerts": [event.as_dict() for event in self.alerts()],
        }

    def _epoch(self) -> Optional[float]:
        return self._events[0].ts if self._events else None

    def jsonl(self, epoch: Optional[float] = None) -> str:
        """One JSON object per health event (deterministic, sorted keys)."""
        if not self._events:
            return ""
        t0 = self._events[0].ts if epoch is None else epoch
        return "\n".join(
            json.dumps(event.as_dict(epoch=t0), sort_keys=True)
            for event in self._events
        ) + "\n"


def unified_event_log(tracer, monitor: Optional[HealthMonitor]) -> str:
    """Tracer spans/lifecycles and health events as one time-ordered JSONL.

    Both logs are re-based onto one shared epoch (the earliest timestamp
    either side recorded), so ``ts_us`` is comparable across line types:
    ``span`` / ``lifecycle`` lines come from the tracer, ``event`` lines
    from the monitor (each carrying its alert's ``correlation_id``).
    """
    epochs = []
    tracer_epoch = getattr(tracer, "_epoch", None)
    if tracer_epoch is not None and (
        getattr(tracer, "num_spans", 0) or tracer.lifecycles()
    ):
        epochs.append(tracer_epoch())
    if monitor is not None and monitor._epoch() is not None:
        epochs.append(monitor._epoch())
    if not epochs:
        return ""
    epoch = min(epochs)
    lines = tracer.jsonl(epoch=epoch).splitlines()
    if monitor is not None:
        lines.extend(monitor.jsonl(epoch=epoch).splitlines())
    lines.sort(key=lambda line: json.loads(line)["ts_us"])
    return "\n".join(lines) + "\n"
