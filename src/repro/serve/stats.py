"""Serving metrics: latency percentiles, throughput, batch fill, bytes served.

Every processed batch is recorded with its size, duration, token count and
traffic estimate; :meth:`ServingStats.summary` reduces the log into the
numbers a serving dashboard would show.  The byte accounting uses the same
tile-reuse DRAM model as the performance simulators
(:func:`repro.hardware.memory.gemm_traffic`), so requests/sec and decode GB/s
line up with the paper's memory-traffic methodology.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Tuple

import numpy as np

from repro.serve.telemetry import MetricsRegistry, exponential_buckets

__all__ = ["BatchRecord", "DecodeRoundRecord", "ServingSummary", "ServingStats"]

#: Request-scale latencies (enqueue → completion, TTFT): 0.1 ms … ~6.5 s.
_LATENCY_BUCKETS = exponential_buckets(1e-4, 2.0, 16)
#: Token-scale gaps (inter-token, decode rounds): 10 µs … ~82 ms.
_TOKEN_BUCKETS = exponential_buckets(1e-5, 2.0, 14)

#: SLO class used for observations recorded without a class annotation.
_DEFAULT_CLASS = "default"

#: Tenant label used for observations recorded without a tenant annotation
#: (direct-to-engine traffic that never passed through the gateway).
_DEFAULT_TENANT = "-"


def _classes_for(values, classes) -> tuple:
    """Per-value SLO classes, backfilled with ``default`` on length mismatch.

    Records from pre-SLO call sites (or tests) carry values without classes;
    rather than guess a pairing from a short class tuple, mismatches fall
    back to the default class for every value.
    """
    values = tuple(values)
    classes = tuple(classes)
    if len(classes) == len(values):
        return classes
    return (_DEFAULT_CLASS,) * len(values)


def _tenants_for(values, tenants) -> tuple:
    """Per-value tenants, backfilled with ``"-"`` on length mismatch."""
    values = tuple(values)
    tenants = tuple(tenants)
    if len(tenants) == len(values):
        return tenants
    return (_DEFAULT_TENANT,) * len(values)


def _finite(values) -> np.ndarray:
    """The finite float values of ``values`` (drops NaN/Inf measurements).

    A single wild measurement — a clock hiccup, an aborted round stamped
    with NaN — must degrade one sample, not poison every aggregate of the
    window with NaN.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        arr = arr[np.isfinite(arr)]
    return arr


def _pct_ms(values: np.ndarray, q: float) -> float:
    """Percentile in milliseconds; an exact ``0.0`` float for empty pools.

    All percentile fields of :class:`ServingSummary` funnel through here so
    the no-completed-requests window reports NaN-free zeros that round (and
    JSON-encode) the same way everywhere.
    """
    if not values.size:
        return 0.0
    return float(np.percentile(values, q) * 1e3)


def _first_finite(value: float) -> float:
    """``value`` when finite, else ``0.0`` (guards the window-start stamp)."""
    value = float(value)
    return value if np.isfinite(value) else 0.0


@dataclass(frozen=True)
class BatchRecord:
    """Measurements of one processed micro-batch."""

    batch_size: int
    max_batch_size: int
    compute_seconds: float
    tokens: int
    weight_stream_bytes: int   # packed OVP bytes streamed for this batch
    dram_bytes: float          # modelled DRAM traffic (weights + activations)
    latencies: tuple           # per-request seconds, enqueue → completion
    latency_classes: tuple = ()  # per-request SLO class, parallel to latencies

    @property
    def fill(self) -> float:
        """Fraction of the batch budget used."""
        return self.batch_size / self.max_batch_size if self.max_batch_size else 0.0


@dataclass(frozen=True)
class DecodeRoundRecord:
    """Measurements of one continuous-batching decode round.

    A round is one pass of the slot scheduler: admissions (prefill) plus one
    incremental decode step for every active slot.  KV-cache bytes are the
    totals across all active slots *at the end of the round* — the resident
    packed footprint next to what an fp32 cache would need for the same
    tokens.
    """

    active_slots: int
    num_slots: int
    new_tokens: int            # prompt tokens prefilled + tokens generated
    generated_tokens: int      # tokens generated this round
    compute_seconds: float
    kv_cache_bytes: int        # OVP-packed pages + fp32 open pages, all slots
    kv_fp32_bytes: int         # fp32 cache footprint for the same tokens
    latencies: tuple = ()      # enqueue → completion of requests retired this round
    # Page-pool activity this round (deltas of the pool's counters).
    pool_hits: int = 0                 # sealed-page fetches served pre-decoded
    pool_misses: int = 0               # sealed pages that had to be OVP-decoded
    pool_decoded_bytes_saved: int = 0  # decode output bytes the hits avoided
    prefix_pages_attached: int = 0     # pages adopted from the prefix index
    shared_pages: int = 0              # pool pages with >1 holder at round end
    # Streaming / sampling telemetry.
    finish_reasons: tuple = ()         # "stop"/"length"/"aborted"/"error" per finish
    first_token_seconds: tuple = ()    # TTFT: enqueue → first streamed token
    inter_token_seconds: tuple = ()    # gaps between consecutive streamed tokens
    # Speculative decoding this round (zero when no slot speculated).
    draft_proposed_tokens: int = 0     # draft tokens fed to the verify pass
    draft_accepted_tokens: int = 0     # draft tokens the target emitted
    # SLO classes parallel to latencies / first_token_seconds / finish_reasons
    # (empty tuples backfill as "default" — see _classes_for).
    latency_classes: tuple = ()
    first_token_classes: tuple = ()
    finish_classes: tuple = ()
    # Tenant of each finished request, parallel to finish_reasons (empty
    # tuples backfill as "-" — see _tenants_for).
    finish_tenants: tuple = ()
    # SLO class of each request preempted (slot evicted, re-queued) this round.
    preempted_classes: tuple = ()
    # Resource accounting at round end (zero when the scheduler predates it).
    queue_depth: int = 0               # requests waiting for a slot
    slot_kv_bytes: tuple = ()          # resident KV bytes per slot (idle = 0)
    pool_sealed_bytes: int = 0         # live sealed pages in the shared pool
    pool_decoded_lru_bytes: int = 0    # decoded-page LRU footprint

    @property
    def occupancy(self) -> float:
        """Fraction of slots doing work this round."""
        return self.active_slots / self.num_slots if self.num_slots else 0.0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of sealed-page fetches that skipped the OVP decode."""
        fetches = self.pool_hits + self.pool_misses
        return self.pool_hits / fetches if fetches else 0.0

    @property
    def draft_acceptance_rate(self) -> float:
        """Fraction of proposed draft tokens the target accepted this round."""
        return (
            self.draft_accepted_tokens / self.draft_proposed_tokens
            if self.draft_proposed_tokens
            else 0.0
        )


@dataclass(frozen=True)
class ServingSummary:
    """Aggregated serving metrics over a stats window."""

    requests: int
    batches: int
    wall_seconds: float
    compute_seconds: float
    tokens: int
    throughput_rps: float
    tokens_per_second: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    mean_batch_fill: float
    weight_stream_bytes: int
    dram_bytes: float
    # Continuous-batching decode metrics (zero when no LM generation ran).
    decode_rounds: int = 0
    generated_tokens: int = 0
    decode_seconds: float = 0.0
    mean_slot_occupancy: float = 0.0
    kv_cache_bytes_peak: int = 0
    kv_fp32_bytes_peak: int = 0
    # Page-pool metrics over the window (zero when no pages were fetched).
    pool_hits: int = 0
    pool_misses: int = 0
    pool_decoded_bytes_saved: int = 0
    prefix_pages_attached: int = 0
    shared_pages_peak: int = 0
    # Generation finish reasons over the window (zero when nothing finished).
    finish_stop: int = 0
    finish_length: int = 0
    finish_aborted: int = 0
    finish_error: int = 0
    finish_deadline: int = 0
    # Requests preempted (slot evicted, re-queued) over the window.
    preemptions: int = 0
    # Streamed-token latencies over the window (zero when nothing streamed).
    ttft_p50_ms: float = 0.0
    ttft_p95_ms: float = 0.0
    inter_token_p50_ms: float = 0.0
    inter_token_p95_ms: float = 0.0
    # Speculative decoding over the window (zero when nothing speculated).
    draft_proposed_tokens: int = 0
    draft_accepted_tokens: int = 0

    @property
    def draft_acceptance_rate(self) -> float:
        """Fraction of proposed draft tokens the target model accepted."""
        return (
            self.draft_accepted_tokens / self.draft_proposed_tokens
            if self.draft_proposed_tokens
            else 0.0
        )

    @property
    def kv_compression(self) -> float:
        """fp32-cache footprint / resident packed footprint at the KV peak."""
        return (
            self.kv_fp32_bytes_peak / self.kv_cache_bytes_peak
            if self.kv_cache_bytes_peak
            else 0.0
        )

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of sealed-page fetches served from the decoded LRU."""
        fetches = self.pool_hits + self.pool_misses
        return self.pool_hits / fetches if fetches else 0.0

    @property
    def finish_reasons(self) -> Dict[str, int]:
        """Finish-reason counts as one dict (dashboard convenience)."""
        return {
            "stop": self.finish_stop,
            "length": self.finish_length,
            "aborted": self.finish_aborted,
            "error": self.finish_error,
            "deadline": self.finish_deadline,
        }

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for logging / benchmark extra_info)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "wall_seconds": round(self.wall_seconds, 6),
            "compute_seconds": round(self.compute_seconds, 6),
            "tokens": self.tokens,
            "throughput_rps": round(self.throughput_rps, 2),
            "tokens_per_second": round(self.tokens_per_second, 1),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "mean_batch_fill": round(self.mean_batch_fill, 4),
            "weight_stream_bytes": self.weight_stream_bytes,
            "dram_bytes": round(self.dram_bytes, 1),
            "decode_rounds": self.decode_rounds,
            "generated_tokens": self.generated_tokens,
            "decode_seconds": round(self.decode_seconds, 6),
            "mean_slot_occupancy": round(self.mean_slot_occupancy, 4),
            "kv_cache_bytes_peak": self.kv_cache_bytes_peak,
            "kv_fp32_bytes_peak": self.kv_fp32_bytes_peak,
            "kv_compression": round(self.kv_compression, 2),
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_hit_rate": round(self.pool_hit_rate, 4),
            "pool_decoded_bytes_saved": self.pool_decoded_bytes_saved,
            "prefix_pages_attached": self.prefix_pages_attached,
            "shared_pages_peak": self.shared_pages_peak,
            "finish_stop": self.finish_stop,
            "finish_length": self.finish_length,
            "finish_aborted": self.finish_aborted,
            "finish_error": self.finish_error,
            "finish_deadline": self.finish_deadline,
            "preemptions": self.preemptions,
            "ttft_p50_ms": round(self.ttft_p50_ms, 3),
            "ttft_p95_ms": round(self.ttft_p95_ms, 3),
            "inter_token_p50_ms": round(self.inter_token_p50_ms, 3),
            "inter_token_p95_ms": round(self.inter_token_p95_ms, 3),
            "draft_proposed_tokens": self.draft_proposed_tokens,
            "draft_accepted_tokens": self.draft_accepted_tokens,
            "draft_acceptance_rate": round(self.draft_acceptance_rate, 4),
        }


class ServingStats:
    """Thread-safe accumulator of per-batch serving measurements.

    The record log is a sliding window bounded by ``max_records`` (oldest
    batches evicted first), so a long-running serving loop neither leaks
    memory nor makes :meth:`summary` cost grow with server lifetime; the
    summary covers the retained window.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        max_records: int = 4096,
        registry: MetricsRegistry = None,
    ) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        # (recorded_at, record) pairs; timestamps make the wall-clock window
        # well-defined even after old records have been evicted.
        self._records: Deque[Tuple[float, BatchRecord]] = deque(maxlen=int(max_records))
        self._rounds: Deque[Tuple[float, DecodeRoundRecord]] = deque(maxlen=int(max_records))
        # Cumulative named metrics, updated in lock-step with the windowed
        # records.  Counters never reset with the window, so a registry
        # shared between several ServingStats instances (sharded workers)
        # rolls their totals up automatically.
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._m_batches = r.counter("serve_batches_total", "Micro-batches executed")
        self._m_tokens = r.counter("serve_tokens_total", "Prompt + generated tokens processed")
        self._m_weight_bytes = r.counter(
            "serve_weight_stream_bytes_total", "Packed OVP weight bytes streamed"
        )
        self._m_dram_bytes = r.counter(
            "serve_dram_bytes_total", "Modelled DRAM traffic (weights + activations)"
        )
        self._m_rounds = r.counter("serve_decode_rounds_total", "Continuous-batching decode rounds")
        self._m_generated = r.counter(
            "serve_generated_tokens_total", "Tokens generated by decode rounds"
        )
        self._m_pool_hits = r.counter(
            "serve_pool_hits_total", "Sealed-page fetches served from the decoded LRU"
        )
        self._m_pool_misses = r.counter(
            "serve_pool_misses_total", "Sealed-page fetches that had to OVP-decode"
        )
        self._m_pool_saved = r.counter(
            "serve_pool_decoded_bytes_saved_total", "Decode output bytes avoided by pool hits"
        )
        self._m_prefix_pages = r.counter(
            "serve_prefix_pages_attached_total", "Pages adopted from the prefix index"
        )
        self._m_finished = r.counter(
            "serve_requests_finished_total",
            "Finished generation requests",
            labels=("reason", "slo_class", "tenant"),
        )
        # Tenant-facing counters (gateway front door; "-" = untenanted).
        self._m_submitted = r.counter(
            "serve_requests_submitted_total",
            "Requests accepted into the serving engine",
            labels=("tenant", "slo_class"),
        )
        # Resilience counters (admission control / deadlines / preemption).
        self._m_rejected = r.counter(
            "serve_requests_rejected_total",
            "Requests rejected at admission",
            labels=("reason", "slo_class", "tenant"),
        )
        self._m_preemptions = r.counter(
            "serve_preemptions_total",
            "Active slots evicted and re-queued for higher-priority work",
            labels=("slo_class",),
        )
        self._m_deadline_misses = r.counter(
            "serve_deadline_misses_total",
            "Requests terminated by deadline/queue-timeout expiry",
            labels=("slo_class",),
        )
        self._m_chunks_evicted = r.counter(
            "serve_stream_chunks_evicted_total",
            "Buffered stream chunks dropped by the engine's bounded buffer",
        )
        self._m_proposed = r.counter(
            "serve_draft_proposed_tokens_total", "Draft tokens fed to the verify pass"
        )
        self._m_accepted = r.counter(
            "serve_draft_accepted_tokens_total", "Draft tokens the target emitted"
        )
        self._m_latency = r.histogram(
            "serve_request_latency_seconds", "Enqueue-to-completion latency",
            _LATENCY_BUCKETS, labels=("slo_class",),
        )
        self._m_ttft = r.histogram(
            "serve_ttft_seconds", "Enqueue to first streamed token",
            _LATENCY_BUCKETS, labels=("slo_class",),
        )
        self._m_gap = r.histogram(
            "serve_inter_token_seconds", "Gap between consecutive streamed tokens", _TOKEN_BUCKETS
        )
        self._m_round_seconds = r.histogram(
            "serve_round_seconds", "Wall time of one decode round", _TOKEN_BUCKETS
        )
        self._m_kv_bytes = r.gauge(
            "serve_kv_cache_bytes", "Resident packed KV footprint, last round"
        )
        self._m_kv_fp32 = r.gauge(
            "serve_kv_fp32_bytes", "fp32 KV footprint for the same tokens, last round"
        )
        self._m_occupancy = r.gauge("serve_slot_occupancy", "Active-slot fraction, last round")
        self._m_shared = r.gauge("serve_shared_pages", "Pool pages with >1 holder, last round")
        self._m_fill = r.gauge("serve_batch_fill", "Fill of the last micro-batch")
        self._m_accept_ratio = r.gauge(
            "serve_draft_acceptance_ratio", "Accepted / proposed draft tokens, cumulative"
        )
        self._m_hit_rate = r.gauge(
            "serve_pool_hit_rate", "Pool hits / fetches, cumulative"
        )
        # Resource-accounting gauges (health layer / memory-pressure view).
        self._m_queue_depth = r.gauge(
            "serve_queue_depth", "Requests waiting for a scheduler slot"
        )
        self._m_pool_sealed = r.gauge(
            "serve_pool_sealed_bytes", "Live sealed-page bytes in the shared pool"
        )
        self._m_pool_lru = r.gauge(
            "serve_pool_decoded_lru_bytes", "Decoded-page LRU footprint"
        )
        self._m_slot_kv = r.gauge(
            "serve_slot_kv_bytes", "Resident KV bytes per scheduler slot",
            labels=("slot",),
        )

    def record_batch(self, record: BatchRecord) -> None:
        """Append one batch record (stamps the wall-clock window)."""
        now = self.clock()
        with self._lock:
            self._records.append((now, record))
        self._m_batches.inc()
        self._m_tokens.inc(record.tokens)
        self._m_weight_bytes.inc(record.weight_stream_bytes)
        self._m_dram_bytes.inc(max(record.dram_bytes, 0.0))
        self._m_fill.set(record.fill)
        classes = _classes_for(record.latencies, record.latency_classes)
        for latency, cls in zip(record.latencies, classes):
            self._m_latency.observe(latency, slo_class=cls)

    def record_decode_round(self, record: DecodeRoundRecord) -> None:
        """Append one continuous-batching decode-round record."""
        now = self.clock()
        with self._lock:
            self._rounds.append((now, record))
        self._m_rounds.inc()
        self._m_tokens.inc(record.new_tokens)
        self._m_generated.inc(record.generated_tokens)
        self._m_round_seconds.observe(record.compute_seconds)
        self._m_pool_hits.inc(record.pool_hits)
        self._m_pool_misses.inc(record.pool_misses)
        self._m_pool_saved.inc(record.pool_decoded_bytes_saved)
        self._m_prefix_pages.inc(record.prefix_pages_attached)
        self._m_proposed.inc(record.draft_proposed_tokens)
        self._m_accepted.inc(record.draft_accepted_tokens)
        finish_classes = _classes_for(record.finish_reasons, record.finish_classes)
        finish_tenants = _tenants_for(record.finish_reasons, record.finish_tenants)
        for reason, cls, tenant in zip(
            record.finish_reasons, finish_classes, finish_tenants
        ):
            self._m_finished.inc(reason=str(reason), slo_class=cls, tenant=str(tenant))
            if str(reason) == "deadline":
                self._m_deadline_misses.inc(slo_class=cls)
        for cls in record.preempted_classes:
            self._m_preemptions.inc(slo_class=str(cls))
        latency_classes = _classes_for(record.latencies, record.latency_classes)
        for latency, cls in zip(record.latencies, latency_classes):
            self._m_latency.observe(latency, slo_class=cls)
        ttft_classes = _classes_for(record.first_token_seconds, record.first_token_classes)
        for ttft, cls in zip(record.first_token_seconds, ttft_classes):
            self._m_ttft.observe(ttft, slo_class=cls)
        for gap in record.inter_token_seconds:
            self._m_gap.observe(gap)
        self._m_kv_bytes.set(record.kv_cache_bytes)
        self._m_kv_fp32.set(record.kv_fp32_bytes)
        self._m_occupancy.set(record.occupancy)
        self._m_shared.set(record.shared_pages)
        self._m_queue_depth.set(record.queue_depth)
        self._m_pool_sealed.set(record.pool_sealed_bytes)
        self._m_pool_lru.set(record.pool_decoded_lru_bytes)
        for slot_index, nbytes in enumerate(record.slot_kv_bytes):
            self._m_slot_kv.set(nbytes, slot=str(slot_index))

    def record_submitted(
        self, tenant: str = _DEFAULT_TENANT, slo_class: str = _DEFAULT_CLASS
    ) -> None:
        """Count one request accepted into the engine (post-admission)."""
        self._m_submitted.inc(tenant=str(tenant), slo_class=str(slo_class))

    def record_rejection(
        self,
        reason: str,
        slo_class: str = _DEFAULT_CLASS,
        tenant: str = _DEFAULT_TENANT,
    ) -> None:
        """Count one admission rejection (``queue_full`` / ``shed`` / ...).

        Rejections never enter the windowed record log: a rejected request
        does no work, so it must not perturb latency/throughput aggregates —
        only the dedicated counter (and the watchdog reading it) sees it.
        """
        self._m_rejected.inc(
            reason=str(reason), slo_class=str(slo_class), tenant=str(tenant)
        )

    def record_chunks_evicted(self, count: int) -> None:
        """Count stream chunks dropped by the engine's bounded result buffer."""
        if count > 0:
            self._m_chunks_evicted.inc(int(count))

    def metrics_text(self) -> str:
        """Prometheus text exposition of the metrics registry.

        Ratio gauges are refreshed from the cumulative counters at scrape
        time, so they stay consistent with the `_total` samples beside them.
        """
        proposed = self._m_proposed.value()
        self._m_accept_ratio.set(
            self._m_accepted.value() / proposed if proposed else 0.0
        )
        fetches = self._m_pool_hits.value() + self._m_pool_misses.value()
        self._m_hit_rate.set(self._m_pool_hits.value() / fetches if fetches else 0.0)
        return self.registry.render()

    def reset(self) -> None:
        """Clear the window."""
        with self._lock:
            self._records.clear()
            self._rounds.clear()

    @property
    def num_batches(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def num_decode_rounds(self) -> int:
        with self._lock:
            return len(self._rounds)

    def summary(self) -> ServingSummary:
        """Reduce the retained record window into aggregate metrics."""
        with self._lock:
            stamped = list(self._records)
            stamped_rounds = list(self._rounds)
        if not stamped and not stamped_rounds:
            return ServingSummary(
                requests=0, batches=0, wall_seconds=0.0, compute_seconds=0.0,
                tokens=0, throughput_rps=0.0, tokens_per_second=0.0,
                latency_mean_ms=0.0, latency_p50_ms=0.0, latency_p95_ms=0.0,
                mean_batch_fill=0.0, weight_stream_bytes=0, dram_bytes=0.0,
            )
        records = [record for _, record in stamped]
        rounds = [record for _, record in stamped_rounds]
        # The window opens when the first retained batch/round *started*
        # computing and closes when the last one was recorded.  Compute
        # durations, latencies and streamed-token timings all pass through
        # _finite(): one non-finite measurement degrades one sample instead
        # of turning wall_seconds/throughput/percentiles into NaN.
        starts, ends = [], []
        if stamped:
            starts.append(stamped[0][0] - _first_finite(stamped[0][1].compute_seconds))
            ends.append(stamped[-1][0])
        if stamped_rounds:
            starts.append(
                stamped_rounds[0][0]
                - _first_finite(stamped_rounds[0][1].compute_seconds)
            )
            ends.append(stamped_rounds[-1][0])
        started_at = min(starts)
        last_at = max(ends)
        latencies = _finite(
            [s for r in records for s in r.latencies]
            + [s for r in rounds for s in r.latencies]
        )
        requests = int(latencies.size)
        tokens = sum(r.tokens for r in records) + sum(r.new_tokens for r in rounds)
        compute = float(_finite(r.compute_seconds for r in records).sum())
        decode_seconds = float(_finite(r.compute_seconds for r in rounds).sum())
        wall = max(float(last_at - started_at), compute + decode_seconds, 1e-12)
        # Report the KV footprint pair of the round holding the most cached
        # tokens, so the compression ratio compares like with like.
        kv_peak = max(rounds, key=lambda r: r.kv_fp32_bytes, default=None)
        reasons = [reason for r in rounds for reason in r.finish_reasons]
        ttfts = _finite(s for r in rounds for s in r.first_token_seconds)
        gaps = _finite(s for r in rounds for s in r.inter_token_seconds)
        return ServingSummary(
            requests=requests,
            batches=len(records),
            wall_seconds=wall,
            compute_seconds=compute,
            tokens=tokens,
            throughput_rps=requests / wall,
            tokens_per_second=tokens / wall,
            latency_mean_ms=float(np.mean(latencies) * 1e3) if requests else 0.0,
            latency_p50_ms=_pct_ms(latencies, 50),
            latency_p95_ms=_pct_ms(latencies, 95),
            mean_batch_fill=float(np.mean([r.fill for r in records])) if records else 0.0,
            weight_stream_bytes=sum(r.weight_stream_bytes for r in records),
            dram_bytes=sum(r.dram_bytes for r in records),
            decode_rounds=len(rounds),
            generated_tokens=sum(r.generated_tokens for r in rounds),
            decode_seconds=decode_seconds,
            mean_slot_occupancy=(
                float(np.mean([r.occupancy for r in rounds])) if rounds else 0.0
            ),
            kv_cache_bytes_peak=kv_peak.kv_cache_bytes if kv_peak else 0,
            kv_fp32_bytes_peak=kv_peak.kv_fp32_bytes if kv_peak else 0,
            pool_hits=sum(r.pool_hits for r in rounds),
            pool_misses=sum(r.pool_misses for r in rounds),
            pool_decoded_bytes_saved=sum(r.pool_decoded_bytes_saved for r in rounds),
            prefix_pages_attached=sum(r.prefix_pages_attached for r in rounds),
            shared_pages_peak=max((r.shared_pages for r in rounds), default=0),
            finish_stop=reasons.count("stop"),
            finish_length=reasons.count("length"),
            finish_aborted=reasons.count("aborted"),
            finish_error=reasons.count("error"),
            finish_deadline=reasons.count("deadline"),
            preemptions=sum(len(r.preempted_classes) for r in rounds),
            ttft_p50_ms=_pct_ms(ttfts, 50),
            ttft_p95_ms=_pct_ms(ttfts, 95),
            inter_token_p50_ms=_pct_ms(gaps, 50),
            inter_token_p95_ms=_pct_ms(gaps, 95),
            draft_proposed_tokens=sum(r.draft_proposed_tokens for r in rounds),
            draft_accepted_tokens=sum(r.draft_accepted_tokens for r in rounds),
        )
