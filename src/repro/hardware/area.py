"""Area model for the OliVe hardware additions (paper Tables 10 and 11).

The paper synthesises its decoders in 22 nm and scales them to the GPU's 12 nm
node with DeepScaleTool; the resulting per-component areas are reproduced here
and combined into the two published breakdowns:

* Table 10 — decoder area added to an RTX 2080 Ti (139,264 4-bit + 69,632
  8-bit decoders on a 754 mm² die → 0.250 % / 0.166 %).
* Table 11 — the systolic-array accelerator breakdown at 22 nm (128 + 64 edge
  decoders, 4096 4-bit PEs → decoders are ~2 % of the core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.config import SystolicArrayConfig, TuringGPUConfig

__all__ = [
    "AreaEntry",
    "DECODER_AREA_UM2",
    "PE_AREA_UM2",
    "gpu_decoder_area",
    "systolic_area_breakdown",
]

#: Synthesised decoder area in µm², keyed by (bits, process nm).  Values from
#: the paper (Tables 10-11).
DECODER_AREA_UM2: Dict[tuple, float] = {
    (4, 22): 37.22,
    (8, 22): 49.50,
    (4, 12): 13.53,
    (8, 12): 18.00,
}

#: 4-bit processing-element area at 22 nm (paper Table 11), µm².
PE_AREA_UM2: Dict[int, float] = {22: 50.01}


@dataclass(frozen=True)
class AreaEntry:
    """One row of an area table."""

    component: str
    count: int
    unit_area_um2: float

    @property
    def total_mm2(self) -> float:
        """Total area of this component in mm²."""
        return self.count * self.unit_area_um2 * 1e-6

    def ratio_of(self, reference_mm2: float) -> float:
        """This component's share of ``reference_mm2`` (a fraction)."""
        if reference_mm2 <= 0:
            return 0.0
        return self.total_mm2 / reference_mm2


def gpu_decoder_area(config: TuringGPUConfig = TuringGPUConfig()) -> List[AreaEntry]:
    """Table 10: the OVP decoders added to every EDP lane of the GPU.

    One 4-bit decoder per 4-bit multiplier pair and one 8-bit decoder per
    8-bit multiplier pair, i.e. 139,264 and 69,632 decoders respectively.
    """
    return [
        AreaEntry("4-bit decoder", config.int4_multipliers, DECODER_AREA_UM2[(4, config.process_nm)]),
        AreaEntry("8-bit decoder", config.int8_multipliers, DECODER_AREA_UM2[(8, config.process_nm)]),
    ]


def systolic_area_breakdown(config: SystolicArrayConfig = SystolicArrayConfig()) -> List[AreaEntry]:
    """Table 11: area breakdown of the OliVe systolic array at 22 nm.

    Decoders sit only on the array borders (n + m of them, Sec. 4.3); every PE
    is a 4-bit exponent-integer MAC.
    """
    four_bit_decoders = config.rows + config.cols
    eight_bit_decoders = (config.rows + config.cols) // 2
    return [
        AreaEntry("4-bit decoder", four_bit_decoders, DECODER_AREA_UM2[(4, config.process_nm)]),
        AreaEntry("8-bit decoder", eight_bit_decoders, DECODER_AREA_UM2[(8, config.process_nm)]),
        AreaEntry("4-bit PE", config.num_pes, PE_AREA_UM2[config.process_nm]),
    ]
