"""Energy model (AccelWattch/GPUWattch/CACTI-style accounting, paper Sec. 5.1).

Energy is split the same way the paper's Fig. 9b / Fig. 10b stacks are:

* **constant** — idle/board power drawn for the whole runtime (GPU only);
* **static** — leakage proportional to runtime;
* **DRAM / L2 / L1+shared / register+core** — dynamic energy proportional to
  bytes moved at each level and to the number of MACs at each precision.

The per-byte and per-MAC energies are standard published figures (45 nm
numbers from Horowitz's ISSCC keynote scaled to the modelled nodes); what
matters for reproducing the paper is the *relative* cost of FP16 vs int8 vs
int4 arithmetic and of DRAM vs on-chip accesses, which these constants
preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyModel", "EnergyBreakdown", "GPU_ENERGY_MODEL", "ACCEL_ENERGY_MODEL"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (joules) per reporting category of Fig. 9b / Fig. 10b."""

    constant: float = 0.0
    static: float = 0.0
    dram: float = 0.0
    l2: float = 0.0
    l1: float = 0.0
    core: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.constant + self.static + self.dram + self.l2 + self.l1 + self.core

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view used by the experiment report writers."""
        return {
            "constant": self.constant,
            "static": self.static,
            "dram": self.dram,
            "l2": self.l2,
            "l1": self.l1,
            "core": self.core,
            "total": self.total,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Per-access and per-op energy constants plus idle/leakage power."""

    #: dynamic energy per byte moved (joules/byte)
    dram_energy_per_byte: float = 20e-12
    l2_energy_per_byte: float = 2.0e-12
    l1_energy_per_byte: float = 0.6e-12
    #: dynamic energy per MAC, keyed by operand bit width (joules)
    mac_energy: Dict[int, float] = field(
        default_factory=lambda: {4: 0.15e-12, 8: 0.45e-12, 16: 1.6e-12, 32: 3.5e-12}
    )
    #: decoder energy per decoded element (joules); tiny, per the paper's area results
    decoder_energy_per_element: float = 0.02e-12
    #: leakage and constant power (watts)
    static_power_w: float = 35.0
    constant_power_w: float = 55.0

    def mac_energy_for_bits(self, bits: int) -> float:
        """Per-MAC dynamic energy at the closest supported precision."""
        for candidate in sorted(self.mac_energy):
            if bits <= candidate:
                return self.mac_energy[candidate]
        return self.mac_energy[max(self.mac_energy)]

    def compute(
        self,
        runtime_s: float,
        macs: float,
        mac_bits: int,
        dram_bytes: float,
        l2_bytes: float,
        l1_bytes: float,
        decoded_elements: float = 0.0,
    ) -> EnergyBreakdown:
        """Combine traffic, compute and runtime into an energy breakdown."""
        return EnergyBreakdown(
            constant=self.constant_power_w * runtime_s,
            static=self.static_power_w * runtime_s,
            dram=dram_bytes * self.dram_energy_per_byte,
            l2=l2_bytes * self.l2_energy_per_byte,
            l1=l1_bytes * self.l1_energy_per_byte,
            core=macs * self.mac_energy_for_bits(mac_bits)
            + decoded_elements * self.decoder_energy_per_element,
        )


#: GPU-class energy model (RTX 2080 Ti scale: significant constant power).
GPU_ENERGY_MODEL = EnergyModel()

#: Accelerator-class energy model: no GPU board overhead, smaller leakage,
#: DRAM relatively more expensive because the core itself is tiny.
ACCEL_ENERGY_MODEL = EnergyModel(
    dram_energy_per_byte=20e-12,
    l2_energy_per_byte=1.5e-12,
    l1_energy_per_byte=0.5e-12,
    static_power_w=2.0,
    constant_power_w=0.0,
)
