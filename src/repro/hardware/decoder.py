"""Bit-accurate behavioural models of the OliVe hardware decoders (paper Sec. 4.2).

Two decoders are modelled:

* :class:`AbfloatDecoder` — Fig. 7: turns a 4-bit (or 8-bit) abfloat code plus
  the instruction-supplied bias into an ``(exponent, integer)`` pair.
* :class:`OVPDecoder` — Fig. 6b: reads one byte (exactly one 4-bit value pair,
  or one element of an 8-bit pair), detects the outlier identifier, zeroes the
  victim slot and routes the outlier nibble through the abfloat decoder.  The
  output is the pair of exponent-integer operands consumed by the OliVe MAC
  units.

Both classes also expose area/power/latency figures taken from the paper's
synthesis results (Tables 10–11) so the area model can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.abfloat import ABFLOAT_E2M1, ABFLOAT_E4M3, AbfloatType
from repro.core.dtypes import INT4, INT8, NormalDataType, get_normal_dtype
from repro.core.errors import DecodingError

__all__ = ["ExponentIntegerPair", "AbfloatDecoder", "OVPDecoder"]


@dataclass(frozen=True)
class ExponentIntegerPair:
    """The unified operand format produced by every decoder (Sec. 4.4).

    The represented value is ``integer << exponent`` (with sign carried by the
    integer), which the MAC unit consumes directly.
    """

    exponent: int
    integer: int

    @property
    def value(self) -> int:
        """The decoded numerical value."""
        return self.integer * (1 << self.exponent)


class AbfloatDecoder:
    """The outlier decoder of Fig. 7: abfloat code + bias → exponent/integer."""

    #: Synthesised area of the 4-bit decoder at 22 nm (paper Table 11), µm².
    AREA_4BIT_22NM_UM2 = 37.22 * 0.45   # the abfloat decoder is a sub-block of the OVP decoder

    def __init__(self, abfloat_type: AbfloatType, bias: int) -> None:
        self.abfloat_type = abfloat_type
        self.bias = int(bias)

    def decode(self, code: int) -> ExponentIntegerPair:
        """Decode one abfloat code into an exponent-integer pair."""
        exponent, integer = self.abfloat_type.exponent_integer_pair(code, self.bias)
        return ExponentIntegerPair(exponent=exponent, integer=integer)


class OVPDecoder:
    """The outlier-victim pair decoder of Fig. 6b.

    ``bits`` selects the 4-bit (int4/flint4 + E2M1) or 8-bit (int8 + E4M3)
    variant.  The 4-bit decoder consumes one byte per call — the smallest
    addressable unit, holding exactly one pair; the 8-bit decoder consumes two
    bytes.
    """

    #: Synthesised decoder areas (µm²) from the paper.
    AREA_UM2 = {
        (4, 22): 37.22,   # Table 11
        (8, 22): 49.50,   # Table 11
        (4, 12): 13.53,   # Table 10
        (8, 12): 18.00,   # Table 10
    }

    def __init__(self, bits: int = 4, normal_dtype: str = None, bias: int = None) -> None:
        if bits not in (4, 8):
            raise DecodingError("OVP decoders exist in 4- and 8-bit variants only")
        self.bits = bits
        if normal_dtype is None:
            normal_dtype = "int4" if bits == 4 else "int8"
        self.normal_dtype: NormalDataType = get_normal_dtype(normal_dtype)
        abfloat = ABFLOAT_E2M1 if bits == 4 else ABFLOAT_E4M3
        if bias is None:
            bias = 2 if bits == 4 else 4
        self.outlier_decoder = AbfloatDecoder(abfloat, bias)

    # ------------------------------------------------------------------ #
    # Single-pair decode
    # ------------------------------------------------------------------ #
    def decode_pair(self, code1: int, code2: int) -> Tuple[ExponentIntegerPair, ExponentIntegerPair]:
        """Decode a code pair into two exponent-integer operands.

        Normal values get exponent 0 (the decoder "appends a 0000₂ exponent",
        Sec. 4.2); the victim slot becomes the zero operand.
        """
        identifier = self.normal_dtype.identifier_code
        if code2 == identifier:
            return self.outlier_decoder.decode(code1), ExponentIntegerPair(0, 0)
        if code1 == identifier:
            return ExponentIntegerPair(0, 0), self.outlier_decoder.decode(code2)
        return (
            ExponentIntegerPair(0, int(self.normal_dtype.decode(code1))),
            ExponentIntegerPair(0, int(self.normal_dtype.decode(code2))),
        )

    def decode_byte(self, byte: int) -> Tuple[ExponentIntegerPair, ExponentIntegerPair]:
        """Decode one byte of a 4-bit OVP stream (high nibble first)."""
        if self.bits != 4:
            raise DecodingError("decode_byte is only meaningful for the 4-bit decoder")
        if byte < 0 or byte > 0xFF:
            raise DecodingError("byte out of range")
        return self.decode_pair((byte >> 4) & 0xF, byte & 0xF)

    # ------------------------------------------------------------------ #
    # Stream decode
    # ------------------------------------------------------------------ #
    def decode_stream(self, data: np.ndarray) -> List[ExponentIntegerPair]:
        """Decode a packed byte stream into a flat list of operands."""
        data = np.asarray(data, dtype=np.uint8)
        operands: List[ExponentIntegerPair] = []
        if self.bits == 4:
            for byte in data:
                a, b = self.decode_byte(int(byte))
                operands.extend((a, b))
        else:
            if data.size % 2:
                raise DecodingError("8-bit OVP streams must contain an even number of bytes")
            for i in range(0, data.size, 2):
                a, b = self.decode_pair(int(data[i]), int(data[i + 1]))
                operands.extend((a, b))
        return operands

    def decode_stream_values(self, data: np.ndarray) -> np.ndarray:
        """Decode a packed byte stream directly to integer grid values."""
        return np.array([op.value for op in self.decode_stream(data)], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Physical characteristics
    # ------------------------------------------------------------------ #
    def area_um2(self, process_nm: int = 22) -> float:
        """Synthesised decoder area at the given process node (paper Tables 10-11)."""
        try:
            return self.AREA_UM2[(self.bits, process_nm)]
        except KeyError as exc:
            raise DecodingError(
                f"no synthesis data for a {self.bits}-bit decoder at {process_nm} nm"
            ) from exc
