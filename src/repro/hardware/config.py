"""Hardware configuration objects (paper Table 5 and Sec. 5.1).

Two platforms are modelled:

* :class:`TuringGPUConfig` — the RTX 2080 Ti (Turing) GPU the paper integrates
  OliVe into: 68 SMs × 8 tensor cores, 34,816 16-bit multipliers, with 2× /
  4× throughput at 8-bit / 4-bit (Table 5), plus the memory hierarchy and
  clock/bandwidth parameters used by the performance model.
* :class:`SystolicArrayConfig` — the 64×64 output-stationary systolic array
  used for the accelerator comparison (4096 4-bit PEs, Table 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = ["TuringGPUConfig", "SystolicArrayConfig", "TURING_2080TI", "SYSTOLIC_64X64"]


@dataclass(frozen=True)
class TuringGPUConfig:
    """Turing-class GPU description (paper Table 5 + RTX 2080 Ti datasheet)."""

    name: str = "rtx-2080ti"
    num_sms: int = 68
    tensor_cores_per_sm: int = 8
    fp16_multipliers: int = 34_816       # Table 5: 16-bit units
    int8_multipliers: int = 69_632       # Table 5: 8-bit units (2×)
    int4_multipliers: int = 139_264      # Table 5: 4-bit units (4×)
    clock_ghz: float = 1.545
    dram_bandwidth_gbs: float = 616.0
    l2_bandwidth_gbs: float = 2_000.0
    l2_size_mb: float = 5.5
    dram_size_gb: float = 11.0
    die_area_mm2: float = 754.0          # paper Sec. 5.3
    process_nm: int = 12

    def multipliers_for_bits(self, bits: int) -> int:
        """Number of parallel multipliers available at a given precision."""
        if bits <= 4:
            return self.int4_multipliers
        if bits <= 8:
            return self.int8_multipliers
        return self.fp16_multipliers

    def peak_macs_per_second(self, bits: int) -> float:
        """Peak multiply-accumulate throughput at a given operand precision."""
        return self.multipliers_for_bits(bits) * self.clock_ghz * 1e9

    @property
    def total_tensor_cores(self) -> int:
        """Total tensor cores on the die (68 × 8 = 544)."""
        return self.num_sms * self.tensor_cores_per_sm


@dataclass(frozen=True)
class SystolicArrayConfig:
    """Output-stationary systolic-array accelerator description (Sec. 4.3, Table 11)."""

    name: str = "olive-sa-64x64"
    rows: int = 64
    cols: int = 64
    clock_ghz: float = 1.0
    dram_bandwidth_gbs: float = 128.0
    sram_bandwidth_gbs: float = 1_024.0
    weight_buffer_kb: int = 512
    input_buffer_kb: int = 512
    output_buffer_kb: int = 256
    pe_bits: int = 4                     # native PE precision (Sec. 4.5)
    process_nm: int = 22

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("systolic array dimensions must be positive")

    @property
    def num_pes(self) -> int:
        """Number of processing elements (4096 for the 64×64 array)."""
        return self.rows * self.cols

    @property
    def num_edge_decoders(self) -> int:
        """OVP decoders needed along the array borders (n + m, Sec. 4.3)."""
        return self.rows + self.cols

    def peak_macs_per_second(self, bits: int) -> float:
        """Peak MAC throughput; ``bits`` wider than the PE width gangs 4 PEs (Sec. 4.5)."""
        if bits <= self.pe_bits:
            effective = self.num_pes
        else:
            effective = self.num_pes // 4
        return effective * self.clock_ghz * 1e9


#: Default platform instances used throughout the simulators.
TURING_2080TI = TuringGPUConfig()
SYSTOLIC_64X64 = SystolicArrayConfig()
