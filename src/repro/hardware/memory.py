"""Memory-hierarchy traffic model for GEMM workloads.

The performance and energy simulators need, for every GEMM, the number of
bytes that cross each level of the memory hierarchy.  A simple but standard
tile-reuse model is used:

* **DRAM** — each operand tensor is streamed once (weights are resident in
  DRAM between layers; activations are produced by the previous layer but are
  too large for on-chip persistence at the evaluated batch sizes), the output
  is written once.
* **L2** — sees the DRAM traffic plus one extra pass of the streamed operands
  (tile re-fetch across tile rows/columns).
* **L1 / shared memory** — each operand element is loaded once per output
  tile it participates in; with ``tile × tile`` output tiles the A operand is
  re-read ``N / tile`` times and B ``M / tile`` times.
* **Register file** — one access per MAC operand (captured by the energy
  model's per-MAC cost rather than explicit traffic).

The same model is applied to every scheme; what changes between schemes is the
*bytes per element* of each operand, which is exactly how OliVe, GOBO, ANT and
int8 differ (paper Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GemmTraffic", "gemm_traffic"]


@dataclass(frozen=True)
class GemmTraffic:
    """Bytes crossing each memory level for one GEMM."""

    dram_bytes: float
    l2_bytes: float
    l1_bytes: float
    output_bytes: float

    def scaled(self, factor: float) -> "GemmTraffic":
        """Uniformly scale all traffic (used for sparse-index overheads)."""
        return GemmTraffic(
            dram_bytes=self.dram_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            l1_bytes=self.l1_bytes * factor,
            output_bytes=self.output_bytes * factor,
        )


def gemm_traffic(
    m: int,
    k: int,
    n: int,
    activation_bytes: float,
    weight_bytes: float,
    output_bytes: float = 2.0,
    tile: int = 64,
    index_overhead: float = 0.0,
) -> GemmTraffic:
    """Traffic of a GEMM ``C[M,N] = A[M,K] @ B[K,N]``.

    Parameters
    ----------
    activation_bytes / weight_bytes:
        Bytes per element of the A (activation) and B (weight) operands under
        the scheme being simulated (0.5 for 4-bit, 1 for 8-bit, 2 for FP16...).
    output_bytes:
        Bytes per element of the produced C tensor.
    tile:
        Output tile edge used for the L1 reuse estimate.
    index_overhead:
        Extra fractional traffic for sparse outlier indices (coordinate lists,
        bitmaps); 0 for aligned schemes such as OliVe.
    """
    a_bytes = m * k * activation_bytes
    b_bytes = k * n * weight_bytes
    c_bytes = m * n * output_bytes

    dram = a_bytes + b_bytes + c_bytes
    l2 = a_bytes * 2.0 + b_bytes * 2.0 + c_bytes
    a_reuse = max(1.0, n / tile)
    b_reuse = max(1.0, m / tile)
    l1 = a_bytes * a_reuse + b_bytes * b_reuse + c_bytes
    traffic = GemmTraffic(dram_bytes=dram, l2_bytes=l2, l1_bytes=l1, output_bytes=c_bytes)
    if index_overhead:
        traffic = traffic.scaled(1.0 + index_overhead)
    return traffic
