"""Hardware substrate: decoders, MAC units, GPU/systolic-array timing, energy and area."""

from repro.hardware.area import (
    AreaEntry,
    DECODER_AREA_UM2,
    PE_AREA_UM2,
    gpu_decoder_area,
    systolic_area_breakdown,
)
from repro.hardware.config import (
    SYSTOLIC_64X64,
    SystolicArrayConfig,
    TURING_2080TI,
    TuringGPUConfig,
)
from repro.hardware.decoder import AbfloatDecoder, ExponentIntegerPair, OVPDecoder
from repro.hardware.energy import ACCEL_ENERGY_MODEL, GPU_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from repro.hardware.isa import MMA_S4, MmaInstruction, execute_mma_ovp, mma_ovp_for
from repro.hardware.mac import FourPEInt8Multiplier, Int32Accumulator, OliveMacUnit
from repro.hardware.memory import GemmTraffic, gemm_traffic
from repro.hardware.systolic import SystolicArrayModel, SystolicGemmResult
from repro.hardware.tensor_core import TensorCoreGemmResult, TensorCoreModel

__all__ = [
    "TuringGPUConfig",
    "SystolicArrayConfig",
    "TURING_2080TI",
    "SYSTOLIC_64X64",
    "ExponentIntegerPair",
    "AbfloatDecoder",
    "OVPDecoder",
    "OliveMacUnit",
    "FourPEInt8Multiplier",
    "Int32Accumulator",
    "GemmTraffic",
    "gemm_traffic",
    "EnergyModel",
    "EnergyBreakdown",
    "GPU_ENERGY_MODEL",
    "ACCEL_ENERGY_MODEL",
    "AreaEntry",
    "DECODER_AREA_UM2",
    "PE_AREA_UM2",
    "gpu_decoder_area",
    "systolic_area_breakdown",
    "SystolicArrayModel",
    "SystolicGemmResult",
    "TensorCoreModel",
    "TensorCoreGemmResult",
    "MmaInstruction",
    "MMA_S4",
    "mma_ovp_for",
    "execute_mma_ovp",
]
