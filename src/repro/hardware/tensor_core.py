"""GPU tensor-core GEMM timing model (paper Sec. 4.1 / 5.3).

The model follows the roofline the paper's GPGPU-Sim experiments obey to first
order: every GEMM takes the larger of

* its **compute time** — MACs divided by the peak MAC rate at the precision
  the scheme computes in (Table 5: 34,816 / 69,632 / 139,264 multipliers for
  16-/8-/4-bit), de-rated by an achievable-utilisation factor that matches
  CUTLASS efficiency on large GEMMs; and
* its **memory time** — DRAM traffic divided by the DRAM bandwidth.

Decode of OVP operands happens in the operand path of every EDP (Fig. 6a) and
does not add cycles; GOBO-style DRAM-only compression adds decompression work
but, more importantly, still computes in FP16 — which is what the model
charges it for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.hardware.config import TuringGPUConfig
from repro.hardware.memory import GemmTraffic

__all__ = ["TensorCoreGemmResult", "TensorCoreModel"]


@dataclass(frozen=True)
class TensorCoreGemmResult:
    """Timing summary of one GEMM on the GPU."""

    m: int
    k: int
    n: int
    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        """Roofline execution time."""
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def is_memory_bound(self) -> bool:
        """True when DRAM bandwidth limits this GEMM."""
        return self.memory_seconds > self.compute_seconds


class TensorCoreModel:
    """Roofline GEMM model of a Turing-class GPU."""

    def __init__(
        self,
        config: TuringGPUConfig = TuringGPUConfig(),
        compute_efficiency: float = 0.75,
        bandwidth_efficiency: float = 0.80,
    ) -> None:
        if not (0 < compute_efficiency <= 1.0 and 0 < bandwidth_efficiency <= 1.0):
            raise SimulationError("efficiencies must be in (0, 1]")
        self.config = config
        self.compute_efficiency = compute_efficiency
        self.bandwidth_efficiency = bandwidth_efficiency

    def gemm(
        self,
        m: int,
        k: int,
        n: int,
        compute_bits: int,
        traffic: GemmTraffic,
        compute_overhead: float = 0.0,
    ) -> TensorCoreGemmResult:
        """Roofline time of one GEMM.

        ``compute_overhead`` is a fractional slowdown of the math pipeline
        (used for schemes that interleave extra instructions, e.g. sparse
        outlier handling on the CUDA cores).
        """
        if min(m, k, n) <= 0:
            raise SimulationError("GEMM dimensions must be positive")
        macs = float(m) * k * n
        peak = self.config.peak_macs_per_second(compute_bits) * self.compute_efficiency
        compute_seconds = macs / peak * (1.0 + max(compute_overhead, 0.0))
        bandwidth = self.config.dram_bandwidth_gbs * 1e9 * self.bandwidth_efficiency
        memory_seconds = traffic.dram_bytes / bandwidth
        return TensorCoreGemmResult(
            m=m, k=k, n=n, compute_seconds=compute_seconds, memory_seconds=memory_seconds
        )
