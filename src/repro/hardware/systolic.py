"""Cycle-level model of the output-stationary systolic array (paper Sec. 4.3).

A GEMM ``C[M,N] = A[M,K] @ B[K,N]`` is executed tile by tile: each ``rows ×
cols`` output tile stays resident in the PEs while the corresponding ``K``
operand slices are streamed through the array.  The per-tile cycle count is
the classic output-stationary expression ``K + rows + cols − 2`` (streaming
depth plus pipeline fill/drain), and tiles execute back to back.

Precisions wider than the native 4-bit PE gang four PEs per MAC (Sec. 4.5),
which the model captures by shrinking the effective array.  Schemes that need
an outlier controller (OLAccel/GOBO-style sparse handling) pay a per-outlier
serialisation penalty, which is how the paper explains their lower benefit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.hardware.config import SystolicArrayConfig

__all__ = ["SystolicGemmResult", "SystolicArrayModel"]


@dataclass(frozen=True)
class SystolicGemmResult:
    """Cycle/utilisation summary of one GEMM on the systolic array."""

    m: int
    k: int
    n: int
    cycles: float
    macs: float
    effective_rows: int
    effective_cols: int

    @property
    def utilization(self) -> float:
        """Achieved MAC utilisation of the (effective) array."""
        peak = self.cycles * self.effective_rows * self.effective_cols
        return float(self.macs / peak) if peak > 0 else 0.0


class SystolicArrayModel:
    """Output-stationary systolic-array GEMM timing model."""

    def __init__(self, config: SystolicArrayConfig = SystolicArrayConfig()) -> None:
        self.config = config

    def effective_dims(self, bits: int) -> tuple:
        """Effective array dimensions once PE ganging for wide operands is applied."""
        rows, cols = self.config.rows, self.config.cols
        if bits > self.config.pe_bits:
            # Four 4-bit PEs per 8-bit MAC: halve each dimension (Sec. 4.5).
            rows //= 2
            cols //= 2
        if rows == 0 or cols == 0:
            raise SimulationError("systolic array too small for the requested precision")
        return rows, cols

    def gemm(
        self,
        m: int,
        k: int,
        n: int,
        bits: int = 4,
        outlier_serialisation: float = 0.0,
    ) -> SystolicGemmResult:
        """Cycle count of one GEMM.

        Parameters
        ----------
        bits:
            Operand precision; > 4 bits gangs four PEs per MAC.
        outlier_serialisation:
            Fractional extra cycles spent by an outlier controller
            (0 for OliVe — its decode is in the operand path).
        """
        if min(m, k, n) <= 0:
            raise SimulationError("GEMM dimensions must be positive")
        rows, cols = self.effective_dims(bits)
        tiles_m = math.ceil(m / rows)
        tiles_n = math.ceil(n / cols)
        per_tile = k + rows + cols - 2
        cycles = tiles_m * tiles_n * per_tile
        cycles *= 1.0 + max(outlier_serialisation, 0.0)
        return SystolicGemmResult(
            m=m,
            k=k,
            n=n,
            cycles=float(cycles),
            macs=float(m) * k * n,
            effective_rows=rows,
            effective_cols=cols,
        )

    def gemm_seconds(self, m: int, k: int, n: int, bits: int = 4, outlier_serialisation: float = 0.0) -> float:
        """Wall-clock seconds of one GEMM at the configured clock."""
        result = self.gemm(m, k, n, bits, outlier_serialisation)
        return result.cycles / (self.config.clock_ghz * 1e9)
