"""The ``mma.ovp`` instruction (paper Sec. 4.6).

The Turing tensor core exposes ``mma.s32.s4.s4.s32`` (int32 += int4 × int4).
OliVe adds ``mmaovp.s32.ovpi4.ovpf4.s32.s4`` whose A/B operands are OVP-encoded
tiles (int4- or flint4-based) and whose extra ``s4`` operand is the abfloat
bias.  Because the encoding is memory aligned, the instruction is a drop-in
replacement: the operand fetch path is unchanged and only the per-lane OVP
decoders are new.

This module provides a small symbolic ISA layer: instruction descriptors, an
encoder from quantizer settings to an instruction instance, and a functional
executor that runs the instruction on packed operands using the bit-accurate
decoder and MAC models.  It is what ties the quantization framework to the
hardware model in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.errors import SimulationError
from repro.hardware.decoder import OVPDecoder
from repro.hardware.mac import OliveMacUnit

__all__ = ["MmaInstruction", "MMA_S4", "mma_ovp_for", "execute_mma_ovp"]


@dataclass(frozen=True)
class MmaInstruction:
    """A matrix-multiply-accumulate instruction descriptor."""

    mnemonic: str
    accumulator_type: str
    a_type: str
    b_type: str
    bias: int = 0

    @property
    def is_ovp(self) -> bool:
        """True for the OVP-enabled variant."""
        return self.mnemonic == "mmaovp"

    def render(self) -> str:
        """PTX-like textual form, e.g. ``mmaovp.s32.ovpi4.ovpi4.s32.s4``."""
        text = f"{self.mnemonic}.{self.accumulator_type}.{self.a_type}.{self.b_type}.{self.accumulator_type}"
        if self.is_ovp:
            text += ".s4"
        return text


#: The baseline Turing 4-bit integer MMA.
MMA_S4 = MmaInstruction("mma", "s32", "s4", "s4")


def mma_ovp_for(normal_dtype: str, bias: int) -> MmaInstruction:
    """Build the ``mmaovp`` instruction for a given normal data type and abfloat bias."""
    type_code = {"int4": "ovpi4", "flint4": "ovpf4", "int8": "ovpi8"}.get(normal_dtype)
    if type_code is None:
        raise SimulationError(f"no mmaovp encoding for normal data type {normal_dtype!r}")
    return MmaInstruction("mmaovp", "s32", type_code, type_code, bias=int(bias))


def execute_mma_ovp(
    instruction: MmaInstruction,
    a_packed: np.ndarray,
    b_packed: np.ndarray,
    accumulator: int = 0,
    bits: int = 4,
) -> int:
    """Functionally execute one OVP dot-product instruction.

    ``a_packed`` and ``b_packed`` are byte streams holding the same number of
    OVP-encoded elements; the result is the int32 dot product of the decoded
    integer-grid values added to ``accumulator`` (D = A·B + C).
    """
    if not instruction.is_ovp:
        raise SimulationError("execute_mma_ovp only executes mmaovp instructions")
    decoder = OVPDecoder(bits=bits, bias=instruction.bias)
    a_ops = decoder.decode_stream(np.asarray(a_packed, dtype=np.uint8))
    b_ops = decoder.decode_stream(np.asarray(b_packed, dtype=np.uint8))
    if len(a_ops) != len(b_ops):
        raise SimulationError("operand streams must decode to the same length")
    mac = OliveMacUnit()
    mac.accumulator.value = int(accumulator)
    result = int(accumulator)
    for a, b in zip(a_ops, b_ops):
        result = mac.mac(a, b)
    return result
