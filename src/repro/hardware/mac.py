"""OliVe MAC units (paper Sec. 4.4-4.5).

After decoding, both normal values and outliers are exponent-integer pairs
``<e, i>`` representing ``i << e``.  A multiply of two such pairs is

    <a, b> × <c, d> = <a + c, b × d>

i.e. one integer multiply plus one exponent add; the shift happens when the
product is accumulated into the 32-bit integer accumulator.  Higher precision
(int8, 8-bit abfloat) is composed from four 4-bit PEs by splitting each
operand into high/low nibbles (Sec. 4.5).

These models are *bit-accurate* (they operate on Python ints and reproduce
the exact arithmetic including the 2^15 outlier clip and int32 accumulator
semantics), and they also carry per-operation energy estimates used by the
energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.core.errors import SimulationError
from repro.hardware.decoder import ExponentIntegerPair

__all__ = ["OliveMacUnit", "FourPEInt8Multiplier", "Int32Accumulator"]

#: Paper Sec. 4.5: outliers are clipped to 2^15 so products fit int32.
MAX_OUTLIER_MAGNITUDE = 1 << 15
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


@dataclass
class Int32Accumulator:
    """The 32-bit signed accumulator at the end of every dot-product lane."""

    value: int = 0

    def add(self, product: int) -> int:
        """Accumulate with int32 wrap-around semantics (as the hardware would)."""
        total = self.value + product
        # Wrap into the signed 32-bit range.
        total = (total - INT32_MIN) % (1 << 32) + INT32_MIN
        self.value = total
        return self.value

    def reset(self) -> None:
        """Clear the accumulator."""
        self.value = 0


class OliveMacUnit:
    """A single 4-bit exponent-integer MAC lane (Fig. 8, the ``OliVe MAC Unit``)."""

    def __init__(self) -> None:
        self.accumulator = Int32Accumulator()

    @staticmethod
    def multiply(a: ExponentIntegerPair, b: ExponentIntegerPair) -> int:
        """``<ea, ia> × <eb, ib> = (ia × ib) << (ea + eb)``."""
        product_int = a.integer * b.integer
        shift = a.exponent + b.exponent
        product = product_int << shift if product_int >= 0 else -((-product_int) << shift)
        if product > INT32_MAX or product < INT32_MIN:
            raise SimulationError(
                "product overflows the 32-bit accumulator; outliers must be "
                f"clipped to {MAX_OUTLIER_MAGNITUDE} before multiplication"
            )
        return product

    def mac(self, a: ExponentIntegerPair, b: ExponentIntegerPair) -> int:
        """Multiply-accumulate one operand pair; returns the running sum."""
        return self.accumulator.add(self.multiply(a, b))

    def dot_product(
        self,
        lhs: Iterable[ExponentIntegerPair],
        rhs: Iterable[ExponentIntegerPair],
    ) -> int:
        """Dot product of two operand sequences (the 16EDP of Fig. 6a)."""
        self.accumulator.reset()
        result = 0
        for a, b in zip(lhs, rhs):
            result = self.mac(a, b)
        return result


class FourPEInt8Multiplier:
    """8-bit multiplication composed from four 4-bit PEs (paper Sec. 4.5).

    An int8 value ``x`` splits into ``x = (h_x << 4) + l_x``; the product of
    two int8 values is the sum of the four cross terms, each computed by one
    4-bit PE.  The same composition handles 8-bit abfloat by adding the
    decoded exponent to both halves.
    """

    @staticmethod
    def split_int8(value: int) -> Tuple[int, int]:
        """Split a signed 8-bit value into (high nibble, low nibble) with ``x = (h<<4)+l``."""
        if value < -128 or value > 127:
            raise SimulationError("value out of int8 range")
        low = value & 0xF
        high = (value - low) >> 4
        return high, low

    @classmethod
    def multiply_int8(cls, x: int, y: int) -> int:
        """Exact int8 × int8 product using the four-PE decomposition."""
        hx, lx = cls.split_int8(x)
        hy, ly = cls.split_int8(y)
        pe0 = (hx * hy) << 8
        pe1 = (hx * ly) << 4
        pe2 = (lx * hy) << 4
        pe3 = lx * ly
        return pe0 + pe1 + pe2 + pe3

    @classmethod
    def multiply_abfloat8(
        cls, x: ExponentIntegerPair, y: ExponentIntegerPair
    ) -> int:
        """8-bit abfloat product: the four-PE int product shifted by both exponents."""
        product = cls.multiply_int8(_clip_int8_integer(x.integer), _clip_int8_integer(y.integer))
        return product << (x.exponent + y.exponent)


def _clip_int8_integer(integer: int) -> int:
    """Decoded abfloat integers fit in 8 bits by construction; guard anyway."""
    if integer < -128 or integer > 127:
        raise SimulationError("decoded abfloat integer exceeds 8 bits")
    return integer
