"""OliVe reproduction: outlier-victim pair quantization for LLMs (ISCA 2023).

Public API overview
-------------------
* :mod:`repro.core` — the OVP encoding, abfloat data type, tensor quantizer
  and model-level PTQ framework (the paper's contribution).
* :mod:`repro.quant` — the baseline quantizers the paper compares against.
* :mod:`repro.nn` / :mod:`repro.models` — the NumPy transformer substrate and
  the synthetic, outlier-bearing model zoo.
* :mod:`repro.data` — synthetic GLUE/SQuAD/LM workloads and metrics.
* :mod:`repro.hardware` / :mod:`repro.sim` — decoder/MAC/systolic-array/GPU
  hardware models and the end-to-end performance, energy and area simulators.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import (
    OVPairCodec,
    OVPTensorQuantizer,
    OVPQuantizerConfig,
    PackedOVPTensor,
    QuantizationScheme,
    SCHEMES,
    get_scheme,
    make_quantizer,
    quantize_model,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "OVPairCodec",
    "OVPTensorQuantizer",
    "OVPQuantizerConfig",
    "PackedOVPTensor",
    "QuantizationScheme",
    "SCHEMES",
    "get_scheme",
    "make_quantizer",
    "quantize_model",
]
