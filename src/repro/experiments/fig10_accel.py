"""Fig. 10 — accelerator speedup and energy of OliVe vs ANT, OLAccel, AdaFloat."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.sim.accelerator import simulate_accelerator_comparison
from repro.sim.results import ComparisonTable
from repro.utils.tables import format_nested_dict

__all__ = ["Fig10Result", "run_fig10", "format_fig10", "FIG10_MODELS"]

#: Models of the paper's Fig. 10 x-axis.
FIG10_MODELS = ["bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1"]


@dataclass
class Fig10Result:
    """Speedup and normalised-energy tables of the accelerator comparison."""

    table: ComparisonTable

    @property
    def speedups(self) -> Dict[str, Dict[str, float]]:
        """Model (+ geomean) → scheme → speedup over AdaFloat."""
        return self.table.speedup_table()

    @property
    def energies(self) -> Dict[str, Dict[str, float]]:
        """Model (+ geomean) → scheme → energy normalised to AdaFloat."""
        return self.table.energy_table()

    def geomean_speedup(self, scheme: str = "olive") -> float:
        """Geometric-mean speedup of a scheme over AdaFloat."""
        return self.table.geomean_speedup(scheme)

    def geomean_energy(self, scheme: str = "olive") -> float:
        """Geometric-mean normalised energy of a scheme."""
        return self.table.geomean_normalized_energy(scheme)


def run_fig10(models: Iterable[str] = tuple(FIG10_MODELS)) -> Fig10Result:
    """Run the accelerator performance/energy comparison."""
    return Fig10Result(table=simulate_accelerator_comparison(models=models))


def format_fig10(result: Fig10Result) -> str:
    """Markdown rendering: a speedup table and an energy table."""
    return (
        "Speedup over AdaFloat\n\n"
        + format_nested_dict(result.speedups)
        + "\n\nNormalised energy (AdaFloat = 1)\n\n"
        + format_nested_dict(result.energies)
    )
