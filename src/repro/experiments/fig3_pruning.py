"""Fig. 3 — why victims are cheap and outliers are not.

The experiment applies three weight-tensor treatments to the full-precision
BERT-base analogue and measures GLUE-task accuracy:

* **clip outliers** to 3σ (what outlier-oblivious quantization does),
* **prune victims** (zero the pair partner of every outlier — OliVe's cost),
* **prune random normal values** (the same count as the outliers).

The paper finds clipping outliers destroys accuracy while either pruning is
essentially free; the same ordering is reproduced here.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.core.pruning import apply_to_tensors
from repro.data.glue import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.models.zoo import build_classifier
from repro.nn.layers import Linear
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "run_fig3", "format_fig3", "FIG3_METHODS"]

#: Treatments in presentation order (matching the paper's legend).
FIG3_METHODS = ["source", "clip-outlier", "prune-victim", "prune-normal"]


@dataclass
class Fig3Result:
    """Task → treatment → metric value (percent)."""

    scores: Dict[str, Dict[str, float]]

    def average_drop(self, method: str) -> float:
        """Mean score drop of ``method`` relative to the untouched model."""
        drops = [
            self.scores[task]["source"] - self.scores[task][method] for task in self.scores
        ]
        return float(np.mean(drops)) if drops else 0.0


def _apply_method(model, method: str, seed: int):
    """Return a copy of ``model`` with one Fig. 3 treatment applied to its weights."""
    treated = copy.deepcopy(model)
    tensors = {}
    modules = {}
    for name, module in treated.named_modules():
        if isinstance(module, Linear):
            tensors[name] = module.weight.data
            modules[name] = module
    transformed = apply_to_tensors(tensors, method, seed=seed)
    for name, module in modules.items():
        module.weight.copy_(transformed[name])
    return treated


def run_fig3(
    tasks: Iterable[str] = ("CoLA", "SST-2", "MNLI", "QQP", "MRPC"),
    model_name: str = "bert-base",
    num_examples: int = 64,
    seq_len: int = 32,
    seed: int = 0,
    oversample: int = 16,
) -> Fig3Result:
    """Evaluate the three treatments on a subset of the GLUE-like tasks."""
    scores: Dict[str, Dict[str, float]] = {}
    for task_name in tasks:
        spec = GLUE_TASKS[task_name]
        num_classes = max(spec.num_classes, 2) if spec.num_classes > 1 else 1
        head_classes = num_classes if num_classes > 1 else 1
        model = build_classifier(model_name, num_classes=max(head_classes, 1), seed=seed)
        dataset = make_glue_dataset(
            spec, model, vocab_size=model.config.vocab_size,
            num_examples=num_examples, seq_len=seq_len, seed=seed + 1, oversample=oversample,
        )
        per_method: Dict[str, float] = {}
        for method in FIG3_METHODS:
            treated = model if method == "source" else _apply_method(model, method, seed)
            per_method[method] = evaluate_classifier(treated, dataset)
        scores[task_name] = per_method
    return Fig3Result(scores=scores)


def format_fig3(result: Fig3Result) -> str:
    """Markdown rendering of the Fig. 3 scores."""
    rows: List[List[object]] = []
    for task, per_method in result.scores.items():
        rows.append([task] + [round(per_method[m], 2) for m in FIG3_METHODS])
    return format_table(["task"] + FIG3_METHODS, rows)
