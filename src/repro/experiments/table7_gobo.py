"""Table 7 — weight-only comparison against GOBO (MNLI and STS-B).

GOBO quantizes only weights and computes in full precision, so the fair
comparison (and the one the paper runs) restricts OliVe to weight-only 4-bit
quantization as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.core.framework import get_scheme, quantize_model
from repro.data.glue import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.models.zoo import build_classifier
from repro.utils.tables import format_table

__all__ = ["Table7Result", "run_table7", "format_table7", "TABLE7_SCHEMES"]

#: Schemes of the weight-only comparison.
TABLE7_SCHEMES = ["fp32", "olive-4bit-weights", "gobo"]


@dataclass
class Table7Result:
    """task → scheme → metric value (percent)."""

    scores: Dict[str, Dict[str, float]]


def run_table7(
    tasks: Iterable[str] = ("MNLI", "STS-B"),
    model_name: str = "bert-base",
    num_examples: int = 64,
    seq_len: int = 32,
    seed: int = 0,
    oversample: int = 16,
) -> Table7Result:
    """Evaluate the weight-only schemes on the paper's two Table 7 tasks."""
    scores: Dict[str, Dict[str, float]] = {}
    for task_name in tasks:
        spec = GLUE_TASKS[task_name]
        num_classes = spec.num_classes if spec.num_classes > 1 else 1
        teacher = build_classifier(model_name, num_classes=max(num_classes, 1), seed=seed)
        dataset = make_glue_dataset(
            spec, teacher, vocab_size=teacher.config.vocab_size,
            num_examples=num_examples, seq_len=seq_len, seed=seed + 1, oversample=oversample,
        )
        per_scheme: Dict[str, float] = {}
        for scheme_name in TABLE7_SCHEMES:
            scheme = get_scheme(scheme_name)
            quantized = quantize_model(teacher, scheme, dataset.calibration_batch())
            per_scheme[scheme_name] = evaluate_classifier(quantized, dataset)
        scores[task_name] = per_scheme
    return Table7Result(scores=scores)


def format_table7(result: Table7Result) -> str:
    """Markdown rendering of the weight-only comparison."""
    rows = []
    for task, per_scheme in result.scores.items():
        rows.append([task] + [round(per_scheme[s], 2) for s in TABLE7_SCHEMES])
    return format_table(["task"] + TABLE7_SCHEMES, rows)
