"""Table 6 — GLUE accuracy of OliVe 4-bit PTQ versus the baselines.

For every evaluated model analogue (BERT-base, BERT-large, BART-base) and
GLUE-like task, the full-precision teacher is quantized under each scheme and
scored against the teacher-labelled dataset.  The paper's headline finding —
4-bit OliVe PTQ stays within ~1 point of FP32 and beats the 4-/6-bit PTQ
baselines — is the property this experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.framework import get_scheme, quantize_model
from repro.data.glue import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.models.zoo import build_classifier
from repro.utils.tables import format_table

__all__ = ["Table6Result", "run_table6", "format_table6", "TABLE6_SCHEMES", "TABLE6_TASKS"]

#: Quantization schemes reported in our Table 6 reproduction.
TABLE6_SCHEMES = ["fp32", "olive-4bit", "ant-4bit", "os-4bit", "os-6bit", "q8bert"]

#: GLUE tasks shown in the paper's Table 6.
TABLE6_TASKS = ["CoLA", "SST-2", "MNLI", "QQP", "MRPC"]


@dataclass
class Table6Result:
    """(model, task) → scheme → metric value (percent)."""

    scores: Dict[Tuple[str, str], Dict[str, float]]

    def model_average(self, model: str, scheme: str) -> float:
        """Average metric of ``scheme`` over the tasks evaluated for ``model``."""
        values = [v[scheme] for (m, _), v in self.scores.items() if m == model and scheme in v]
        return float(sum(values) / len(values)) if values else 0.0

    def accuracy_drop(self, model: str, scheme: str) -> float:
        """Average drop of ``scheme`` relative to fp32 on ``model``."""
        return self.model_average(model, "fp32") - self.model_average(model, scheme)


def run_table6(
    models: Iterable[str] = ("bert-base", "bert-large", "bart-base"),
    tasks: Iterable[str] = tuple(TABLE6_TASKS),
    schemes: Iterable[str] = tuple(TABLE6_SCHEMES),
    num_examples: int = 64,
    seq_len: int = 32,
    seed: int = 0,
    oversample: int = 16,
) -> Table6Result:
    """Evaluate each (model, task, scheme) combination."""
    scores: Dict[Tuple[str, str], Dict[str, float]] = {}
    for model_name in models:
        for task_name in tasks:
            spec = GLUE_TASKS[task_name]
            num_classes = spec.num_classes if spec.num_classes > 1 else 1
            teacher = build_classifier(model_name, num_classes=max(num_classes, 1), seed=seed)
            dataset = make_glue_dataset(
                spec, teacher, vocab_size=teacher.config.vocab_size,
                num_examples=num_examples, seq_len=seq_len, seed=seed + 1,
                oversample=oversample,
            )
            per_scheme: Dict[str, float] = {}
            for scheme_name in schemes:
                scheme = get_scheme(scheme_name)
                quantized = quantize_model(teacher, scheme, dataset.calibration_batch())
                per_scheme[scheme_name] = evaluate_classifier(quantized, dataset)
            scores[(model_name, task_name)] = per_scheme
    return Table6Result(scores=scores)


def format_table6(result: Table6Result) -> str:
    """Markdown rendering in the paper's model-block layout."""
    schemes = sorted({s for v in result.scores.values() for s in v})
    rows: List[List[object]] = []
    for (model, task), per_scheme in result.scores.items():
        rows.append([model, task] + [round(per_scheme.get(s, float("nan")), 2) for s in schemes])
    return format_table(["model", "task"] + schemes, rows)
