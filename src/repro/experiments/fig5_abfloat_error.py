"""Fig. 5 — rounding error of the largest outliers under each abfloat config.

The paper quantizes the largest outlier of every tensor with the four 4-bit
abfloat layouts (E0M3, E1M2, E2M1, E3M0) and finds E2M1 gives the smallest
error, which is why OliVe adopts it.  This experiment repeats the study on the
analogue models' weight tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.abfloat import ABFLOAT_4BIT_CONFIGS, default_bias_for
from repro.core.analysis import largest_outliers
from repro.models.zoo import transformer_analogue_tensors
from repro.utils.tables import format_table

__all__ = ["Fig5Result", "run_fig5", "format_fig5", "FIG5_MODELS"]

#: The models the paper's Fig. 5 evaluates.
FIG5_MODELS = ["bert-base", "bert-large", "bart-base", "gpt2-xl"]


@dataclass
class Fig5Result:
    """Mean relative rounding error per (model, abfloat config)."""

    errors: Dict[str, Dict[str, float]]

    def best_config(self, model: str) -> str:
        """The abfloat layout with the smallest error for ``model``."""
        per_config = self.errors[model]
        return min(per_config, key=per_config.get)

    def best_overall(self) -> str:
        """The layout that wins on the most models (the paper's answer: E2M1)."""
        wins: Dict[str, int] = {}
        for model in self.errors:
            winner = self.best_config(model)
            wins[winner] = wins.get(winner, 0) + 1
        return max(wins, key=wins.get)


def run_fig5(
    models: Iterable[str] = tuple(FIG5_MODELS), seed: int = 0, normal_max: float = 7.0
) -> Fig5Result:
    """Quantize each model's largest outliers with every 4-bit abfloat layout."""
    errors: Dict[str, Dict[str, float]] = {}
    for model in models:
        tensors = transformer_analogue_tensors(model, seed)
        outliers = largest_outliers(tensors, top_k=1)
        per_config: Dict[str, float] = {}
        for config in ABFLOAT_4BIT_CONFIGS:
            bias = default_bias_for(normal_max, config)
            per_config[config.name] = config.mean_relative_error(outliers, bias)
        errors[model] = per_config
    return Fig5Result(errors=errors)


def format_fig5(result: Fig5Result) -> str:
    """Markdown rendering of the per-model, per-config errors."""
    configs = [c.name for c in ABFLOAT_4BIT_CONFIGS]
    rows: List[List[object]] = []
    for model, per_config in result.errors.items():
        rows.append([model] + [round(per_config[c], 4) for c in configs])
    return format_table(["model"] + configs, rows)
