"""Run every experiment and emit a combined markdown report.

``python -m repro.experiments.runner`` regenerates the measured side of
EXPERIMENTS.md.  Each experiment accepts size parameters so the quick profile
(used by CI and the benchmark harness) finishes in minutes while the full
profile evaluates every model/task combination the paper reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments.fig2_outliers import format_fig2, run_fig2
from repro.experiments.fig3_pruning import format_fig3, run_fig3
from repro.experiments.fig5_abfloat_error import format_fig5, run_fig5
from repro.experiments.fig9_gpu import format_fig9, run_fig9
from repro.experiments.fig10_accel import format_fig10, run_fig10
from repro.experiments.table2_pairs import format_table2, run_table2
from repro.experiments.table6_glue import format_table6, run_table6
from repro.experiments.table7_gobo import format_table7, run_table7
from repro.experiments.table8_squad import format_table8, run_table8
from repro.experiments.table9_llm import format_table9, run_table9
from repro.experiments.tables_area import (
    format_table10,
    format_table11,
    run_table10,
    run_table11,
)

__all__ = ["EXPERIMENTS", "run_all", "main"]


def _quick_table6():
    return run_table6(models=("bert-base",), tasks=("SST-2", "MNLI"), num_examples=48)


def _quick_fig3():
    return run_fig3(tasks=("SST-2", "MNLI"), num_examples=48)


def _quick_table8():
    return run_table8(models=("bert-base",), num_examples=32)


def _quick_table9():
    return run_table9(models=("gpt2-xl", "opt-6.7b"), num_sequences=8)


#: Experiment registry: id → (full runner, quick runner, formatter).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "fig2": (run_fig2, run_fig2, format_fig2),
    "table2": (run_table2, run_table2, format_table2),
    "fig3": (run_fig3, _quick_fig3, format_fig3),
    "fig5": (run_fig5, run_fig5, format_fig5),
    "table6": (run_table6, _quick_table6, format_table6),
    "table7": (run_table7, run_table7, format_table7),
    "table8": (run_table8, _quick_table8, format_table8),
    "table9": (run_table9, _quick_table9, format_table9),
    "fig9": (run_fig9, run_fig9, format_fig9),
    "fig10": (run_fig10, run_fig10, format_fig10),
    "table10": (run_table10, run_table10, format_table10),
    "table11": (run_table11, run_table11, format_table11),
}


def run_all(quick: bool = True, only: List[str] = None) -> str:
    """Run the selected experiments and return a combined markdown report."""
    sections = []
    for exp_id, (full, quick_fn, formatter) in EXPERIMENTS.items():
        if only and exp_id not in only:
            continue
        start = time.time()
        result = (quick_fn if quick else full)()
        elapsed = time.time() - start
        sections.append(
            f"## {exp_id}\n\n{formatter(result)}\n\n_(ran in {elapsed:.1f} s)_\n"
        )
    return "\n".join(sections)


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Run OliVe reproduction experiments")
    parser.add_argument("--full", action="store_true", help="run the full-size experiments")
    parser.add_argument("--only", nargs="*", default=None, help="experiment ids to run")
    parser.add_argument("--output", default=None, help="write the report to this file")
    args = parser.parse_args(argv)
    report = run_all(quick=not args.full, only=args.only)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
