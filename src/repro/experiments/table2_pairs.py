"""Table 2 — census of adjacent value pairs under the 3σ rule.

For each large-model analogue, pairs every two adjacent weight values and
counts normal-normal, outlier-normal and outlier-outlier pairs.  The paper's
observation (and OliVe's enabling fact) is that ~99 % of pairs are
normal-normal and outlier-outlier pairs are below ~0.06 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.analysis import PairCensus, model_pair_census
from repro.models.zoo import transformer_analogue_tensors
from repro.utils.tables import format_table

__all__ = ["Table2Result", "run_table2", "format_table2", "TABLE2_MODELS"]

#: The four models the paper's Table 2 reports.
TABLE2_MODELS = ["bert-base", "bert-large", "gpt2-xl", "opt-6.7b"]


@dataclass
class Table2Result:
    """Per-model pair-shape fractions."""

    censuses: Dict[str, PairCensus]

    def fractions(self) -> Dict[str, Dict[str, float]]:
        """Model → pair shape → fraction."""
        return {model: census.fractions for model, census in self.censuses.items()}


def run_table2(models: Iterable[str] = tuple(TABLE2_MODELS), seed: int = 0) -> Table2Result:
    """Run the pair census over each model analogue's weight tensors."""
    censuses = {
        model: model_pair_census(transformer_analogue_tensors(model, seed))
        for model in models
    }
    return Table2Result(censuses=censuses)


def format_table2(result: Table2Result) -> str:
    """Markdown rendering matching the layout of paper Table 2 (percentages)."""
    rows: List[List[object]] = []
    for model, fractions in result.fractions().items():
        rows.append(
            [
                model,
                f"{fractions['normal-normal'] * 100:.2f}%",
                f"{fractions['outlier-normal'] * 100:.2f}%",
                f"{fractions['outlier-outlier'] * 100:.2f}%",
            ]
        )
    return format_table(["model", "normal-normal", "outlier-normal", "outlier-outlier"], rows)
