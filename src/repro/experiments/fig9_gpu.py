"""Fig. 9 — GPU speedup and normalised energy of OliVe vs ANT, int8 and GOBO."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.sim.gpu import simulate_gpu_comparison
from repro.sim.results import ComparisonTable
from repro.utils.tables import format_nested_dict

__all__ = ["Fig9Result", "run_fig9", "format_fig9", "FIG9_MODELS"]

#: Models of the paper's Fig. 9 x-axis.
FIG9_MODELS = ["bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1"]


@dataclass
class Fig9Result:
    """Speedup and normalised-energy tables of the GPU comparison."""

    table: ComparisonTable

    @property
    def speedups(self) -> Dict[str, Dict[str, float]]:
        """Model (+ geomean) → scheme → speedup over GOBO."""
        return self.table.speedup_table()

    @property
    def energies(self) -> Dict[str, Dict[str, float]]:
        """Model (+ geomean) → scheme → energy normalised to GOBO."""
        return self.table.energy_table()

    def geomean_speedup(self, scheme: str = "olive") -> float:
        """Geometric-mean speedup of a scheme over GOBO."""
        return self.table.geomean_speedup(scheme)

    def geomean_energy(self, scheme: str = "olive") -> float:
        """Geometric-mean normalised energy of a scheme."""
        return self.table.geomean_normalized_energy(scheme)


def run_fig9(models: Iterable[str] = tuple(FIG9_MODELS)) -> Fig9Result:
    """Run the GPU performance/energy comparison."""
    return Fig9Result(table=simulate_gpu_comparison(models=models))


def format_fig9(result: Fig9Result) -> str:
    """Markdown rendering: a speedup table and an energy table."""
    return (
        "Speedup over GOBO\n\n"
        + format_nested_dict(result.speedups)
        + "\n\nNormalised energy (GOBO = 1)\n\n"
        + format_nested_dict(result.energies)
    )
