"""Table 8 — SQuAD v1.1 / v2.0 span-extraction accuracy under PTQ.

BERT-base and BART-base analogues are quantized with 4-bit OliVe and the
6-bit Outlier Suppression baseline and scored with F1 / exact match on the
teacher-labelled span datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.framework import get_scheme, quantize_model
from repro.data.squad import SQUAD_VARIANTS, evaluate_span_model, make_squad_dataset
from repro.models.zoo import build_span_model
from repro.utils.tables import format_table

__all__ = ["Table8Result", "run_table8", "format_table8", "TABLE8_SCHEMES"]

#: Schemes compared on SQuAD in the paper's Table 8.
TABLE8_SCHEMES = ["fp32", "olive-4bit", "os-6bit"]


@dataclass
class Table8Result:
    """(model, variant) → scheme → (F1, EM) percentages."""

    scores: Dict[Tuple[str, str], Dict[str, Tuple[float, float]]]


def run_table8(
    models: Iterable[str] = ("bert-base", "bart-base"),
    variants: Iterable[str] = tuple(SQUAD_VARIANTS),
    schemes: Iterable[str] = tuple(TABLE8_SCHEMES),
    num_examples: int = 48,
    seq_len: int = 32,
    seed: int = 0,
) -> Table8Result:
    """Evaluate each (model, SQuAD variant, scheme) combination."""
    scores: Dict[Tuple[str, str], Dict[str, Tuple[float, float]]] = {}
    for model_name in models:
        for variant in variants:
            teacher = build_span_model(model_name, seed=seed)
            dataset = make_squad_dataset(
                variant, teacher, vocab_size=teacher.config.vocab_size,
                num_examples=num_examples, seq_len=seq_len, seed=seed + 1,
            )
            per_scheme: Dict[str, Tuple[float, float]] = {}
            for scheme_name in schemes:
                scheme = get_scheme(scheme_name)
                quantized = quantize_model(teacher, scheme, dataset.calibration_batch())
                per_scheme[scheme_name] = evaluate_span_model(quantized, dataset)
            scores[(model_name, variant)] = per_scheme
    return Table8Result(scores=scores)


def format_table8(result: Table8Result) -> str:
    """Markdown rendering in the paper's "F1/EM" style."""
    schemes = sorted({s for v in result.scores.values() for s in v})
    rows = []
    for (model, variant), per_scheme in result.scores.items():
        cells = [f"{per_scheme[s][0]:.2f}/{per_scheme[s][1]:.2f}" for s in schemes]
        rows.append([model, variant] + cells)
    return format_table(["model", "dataset"] + schemes, rows)
