"""One module per paper table/figure, plus a runner that regenerates them all."""

from repro.experiments.fig2_outliers import Fig2Result, run_fig2
from repro.experiments.fig3_pruning import Fig3Result, run_fig3
from repro.experiments.fig5_abfloat_error import Fig5Result, run_fig5
from repro.experiments.fig9_gpu import Fig9Result, run_fig9
from repro.experiments.fig10_accel import Fig10Result, run_fig10
from repro.experiments.table2_pairs import Table2Result, run_table2
from repro.experiments.table6_glue import Table6Result, run_table6
from repro.experiments.table7_gobo import Table7Result, run_table7
from repro.experiments.table8_squad import Table8Result, run_table8
from repro.experiments.table9_llm import Table9Result, run_table9
from repro.experiments.tables_area import (
    Table10Result,
    Table11Result,
    run_table10,
    run_table11,
)
from repro.experiments.runner import EXPERIMENTS, run_all

__all__ = [
    "run_fig2", "Fig2Result",
    "run_table2", "Table2Result",
    "run_fig3", "Fig3Result",
    "run_fig5", "Fig5Result",
    "run_table6", "Table6Result",
    "run_table7", "Table7Result",
    "run_table8", "Table8Result",
    "run_table9", "Table9Result",
    "run_fig9", "Fig9Result",
    "run_fig10", "Fig10Result",
    "run_table10", "Table10Result",
    "run_table11", "Table11Result",
    "EXPERIMENTS", "run_all",
]
