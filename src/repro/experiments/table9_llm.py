"""Table 9 — large-language-model perplexity under PTQ.

GPT2-XL, BLOOM-7B1 and OPT-6.7B analogues are evaluated on the WikiText- and
C4-like corpora under six settings: FP32, int8, 8-bit OliVe, int4, 4-bit ANT
and 4-bit OliVe.  The paper's qualitative results are:

* 8-bit OliVe matches FP32 on every model, while plain int8 degrades sharply
  on OPT-6.7B (whose activation outliers are the largest);
* int4 and 4-bit ANT are catastrophically bad everywhere;
* 4-bit OliVe stays usable (close to int8) on GPT2-XL/BLOOM and degrades —
  but far less than the baselines — on OPT-6.7B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.framework import get_scheme, quantize_model
from repro.data.lm import LM_CORPORA, evaluate_perplexity, make_lm_dataset
from repro.models.zoo import build_causal_lm
from repro.utils.tables import format_table

__all__ = ["Table9Result", "run_table9", "format_table9", "TABLE9_SCHEMES"]

#: Schemes of the paper's Table 9, in presentation order.
TABLE9_SCHEMES = ["fp32", "int8", "olive-8bit", "int4", "ant-4bit", "olive-4bit"]


@dataclass
class Table9Result:
    """(model, corpus) → scheme → perplexity."""

    perplexities: Dict[Tuple[str, str], Dict[str, float]]

    def perplexity(self, model: str, corpus: str, scheme: str) -> float:
        """Convenience accessor."""
        return self.perplexities[(model, corpus)][scheme]


def run_table9(
    models: Iterable[str] = ("gpt2-xl", "bloom-7b1", "opt-6.7b"),
    corpora: Iterable[str] = tuple(LM_CORPORA),
    schemes: Iterable[str] = tuple(TABLE9_SCHEMES),
    num_sequences: int = 16,
    seq_len: int = 32,
    seed: int = 0,
) -> Table9Result:
    """Evaluate each (model, corpus, scheme) perplexity."""
    perplexities: Dict[Tuple[str, str], Dict[str, float]] = {}
    for model_name in models:
        teacher = build_causal_lm(model_name, seed=seed)
        for corpus in corpora:
            dataset = make_lm_dataset(
                corpus, teacher, vocab_size=teacher.config.vocab_size,
                num_sequences=num_sequences, seq_len=seq_len, seed=seed + 1,
            )
            per_scheme: Dict[str, float] = {}
            for scheme_name in schemes:
                scheme = get_scheme(scheme_name)
                quantized = quantize_model(teacher, scheme, dataset.calibration_batch())
                per_scheme[scheme_name] = evaluate_perplexity(quantized, dataset)
            perplexities[(model_name, corpus)] = per_scheme
    return Table9Result(perplexities=perplexities)


def format_table9(result: Table9Result) -> str:
    """Markdown rendering in the paper's Table 9 layout."""
    schemes = TABLE9_SCHEMES
    rows = []
    for (model, corpus), per_scheme in result.perplexities.items():
        rows.append([model, corpus] + [round(per_scheme.get(s, float("nan")), 2) for s in schemes])
    return format_table(["model", "corpus"] + schemes, rows)
