"""Fig. 2 — outlier comparison between a CNN (ResNet-18) and a Transformer (BERT).

Reproduces the paper's motivation plot: per-tensor maximum magnitude in units
of σ, and the fraction of values beyond 3σ / 6σ, for every tensor of both
model families.  The headline observation is that the Transformer's maximum
σ-normalised magnitude is roughly an order of magnitude larger than the CNN's
while the >3σ fraction stays below ~0.5 % in both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.analysis import TensorOutlierStats, model_outlier_profile
from repro.models.zoo import resnet18_tensors, transformer_analogue_tensors
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "run_fig2", "format_fig2"]


@dataclass
class Fig2Result:
    """Per-model outlier profiles plus the headline summary statistics."""

    cnn_profile: List[TensorOutlierStats]
    transformer_profile: List[TensorOutlierStats]

    @property
    def cnn_max_sigma(self) -> float:
        """Largest σ-normalised magnitude over all CNN tensors."""
        return max(s.max_sigma for s in self.cnn_profile)

    @property
    def transformer_max_sigma(self) -> float:
        """Largest σ-normalised magnitude over all transformer tensors."""
        return max(s.max_sigma for s in self.transformer_profile)

    @property
    def max_sigma_ratio(self) -> float:
        """How much larger the transformer's outliers are (paper: ~one order of magnitude)."""
        return self.transformer_max_sigma / max(self.cnn_max_sigma, 1e-12)

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by EXPERIMENTS.md and the tests."""
        return {
            "cnn_max_sigma": self.cnn_max_sigma,
            "transformer_max_sigma": self.transformer_max_sigma,
            "max_sigma_ratio": self.max_sigma_ratio,
            "cnn_mean_frac_gt_3sigma": float(
                np.mean([s.frac_gt_3sigma for s in self.cnn_profile])
            ),
            "transformer_mean_frac_gt_3sigma": float(
                np.mean([s.frac_gt_3sigma for s in self.transformer_profile])
            ),
        }


def run_fig2(transformer: str = "bert-base", seed: int = 0) -> Fig2Result:
    """Compute the Fig. 2 profiles for ResNet-18 vs a transformer analogue."""
    cnn = model_outlier_profile(resnet18_tensors(seed))
    trans = model_outlier_profile(transformer_analogue_tensors(transformer, seed))
    return Fig2Result(cnn_profile=cnn, transformer_profile=trans)


def format_fig2(result: Fig2Result) -> str:
    """Markdown rendering of the Fig. 2 summary."""
    summary = result.summary()
    rows = [[k, v] for k, v in summary.items()]
    return format_table(["statistic", "value"], rows)
