"""Tables 10 and 11 — area of the OliVe decoders on the GPU and the systolic array."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.area import AreaEntry, gpu_decoder_area, systolic_area_breakdown
from repro.hardware.config import SystolicArrayConfig, TuringGPUConfig
from repro.utils.tables import format_table

__all__ = [
    "Table10Result",
    "Table11Result",
    "run_table10",
    "run_table11",
    "format_table10",
    "format_table11",
]


@dataclass
class Table10Result:
    """Decoder area added to the GPU die (paper Table 10)."""

    entries: List[AreaEntry]
    die_area_mm2: float

    def ratios(self) -> Dict[str, float]:
        """Component → fraction of the GPU die."""
        return {e.component: e.ratio_of(self.die_area_mm2) for e in self.entries}

    @property
    def total_overhead_ratio(self) -> float:
        """Total decoder area as a fraction of the die."""
        return sum(self.ratios().values())


@dataclass
class Table11Result:
    """Area breakdown of the OliVe systolic array at 22 nm (paper Table 11)."""

    entries: List[AreaEntry]

    @property
    def core_area_mm2(self) -> float:
        """Total core area (decoders + PEs)."""
        return sum(e.total_mm2 for e in self.entries)

    def ratios(self) -> Dict[str, float]:
        """Component → fraction of the core area."""
        core = self.core_area_mm2
        return {e.component: e.ratio_of(core) for e in self.entries}


def run_table10(config: TuringGPUConfig = TuringGPUConfig()) -> Table10Result:
    """Compute the GPU decoder-area table."""
    return Table10Result(entries=gpu_decoder_area(config), die_area_mm2=config.die_area_mm2)


def run_table11(config: SystolicArrayConfig = SystolicArrayConfig()) -> Table11Result:
    """Compute the systolic-array area breakdown."""
    return Table11Result(entries=systolic_area_breakdown(config))


def format_table10(result: Table10Result) -> str:
    """Markdown rendering of Table 10."""
    rows = [
        [e.component, e.count, round(e.unit_area_um2, 2), round(e.total_mm2, 3),
         f"{e.ratio_of(result.die_area_mm2) * 100:.3f}%"]
        for e in result.entries
    ]
    return format_table(["component", "count", "unit area (um^2)", "area (mm^2)", "ratio of die"], rows)


def format_table11(result: Table11Result) -> str:
    """Markdown rendering of Table 11."""
    core = result.core_area_mm2
    rows = [
        [e.component, e.count, round(e.unit_area_um2, 2), round(e.total_mm2, 5),
         f"{e.ratio_of(core) * 100:.1f}%"]
        for e in result.entries
    ]
    return format_table(["component", "count", "unit area (um^2)", "area (mm^2)", "ratio of core"], rows)
