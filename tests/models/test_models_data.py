"""Tests for the synthetic model zoo and the workload/data generators."""

import numpy as np
import pytest

from repro.data.glue import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.data.lm import evaluate_perplexity, make_lm_dataset
from repro.data.metrics import (
    accuracy,
    exact_match,
    f1_score,
    matthews_corrcoef,
    pearson_corrcoef,
    perplexity_from_nll,
    span_f1,
)
from repro.data.squad import evaluate_span_model, make_squad_dataset
from repro.core.analysis import model_outlier_profile, model_pair_census
from repro.models import (
    ACCURACY_MODELS,
    LLM_MODELS,
    PAPER_CONFIGS,
    analogue_config,
    build_causal_lm,
    build_classifier,
    build_span_model,
    inject_tensor_outliers,
    model_weight_tensors,
    paper_config,
    resnet18_tensors,
    transformer_analogue_tensors,
)


class TestConfigs:
    def test_paper_configs_cover_evaluated_models(self):
        for name in ("bert-base", "bert-large", "bart-base", "gpt2-xl", "bloom-7b1", "opt-6.7b"):
            assert name in PAPER_CONFIGS

    def test_bert_base_dimensions(self):
        cfg = paper_config("bert-base")
        assert (cfg.hidden_size, cfg.num_layers, cfg.num_heads) == (768, 12, 12)

    def test_model_size_ordering(self):
        # The analogues preserve the parameter-count ordering of the originals.
        assert paper_config("opt-6.7b").approx_parameters > paper_config("gpt2-xl").approx_parameters
        assert paper_config("bert-large").approx_parameters > paper_config("bert-base").approx_parameters

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            paper_config("llama-7b")
        with pytest.raises(KeyError):
            analogue_config("llama-7b")


class TestOutlierInjection:
    def test_injection_reaches_target_sigma(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, size=100000)
        injected = inject_tensor_outliers(x, ratio=0.003, max_sigma=60.0, rng=rng)
        normalized = np.abs(injected - injected.mean()) / x.std()
        assert normalized.max() > 10.0

    def test_injection_deterministic(self):
        x = np.random.default_rng(1).normal(0, 1, size=1000)
        a = inject_tensor_outliers(x, 0.01, 30, np.random.default_rng(42))
        b = inject_tensor_outliers(x, 0.01, 30, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_zero_ratio_is_identity(self):
        x = np.random.default_rng(2).normal(0, 1, size=100)
        np.testing.assert_array_equal(
            inject_tensor_outliers(x, 0.0, 30, np.random.default_rng(0)), x
        )


class TestZoo:
    def test_builders_are_deterministic(self):
        a = build_classifier("bert-base", 2, seed=7)
        b = build_classifier("bert-base", 2, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_transformer_outliers_exceed_cnn_outliers(self):
        """The Fig. 2 contrast is built into the zoo."""
        cnn = model_outlier_profile(resnet18_tensors(0))
        bert = model_outlier_profile(transformer_analogue_tensors("bert-base", 0))
        assert max(s.max_sigma for s in bert) > 2 * max(s.max_sigma for s in cnn)

    def test_pair_census_matches_paper_shape(self):
        """Table 2 shape: ~99% normal-normal, <0.1% outlier-outlier."""
        census = model_pair_census(transformer_analogue_tensors("bert-base", 0))
        fractions = census.fractions
        assert fractions["normal-normal"] > 0.97
        assert fractions["outlier-outlier"] < 0.002

    def test_causal_lm_only_for_decoder_models(self):
        with pytest.raises(ValueError):
            build_causal_lm("bert-base")

    def test_weight_tensor_collection(self):
        model = build_classifier("bert-base", 2, seed=0)
        tensors = model_weight_tensors(model)
        assert len(tensors) > 10
        assert all(t.ndim == 2 for t in tensors.values())

    def test_all_accuracy_and_llm_models_build(self):
        for name in ACCURACY_MODELS:
            assert build_classifier(name, 2, seed=0)(np.zeros((1, 4), dtype=int)).shape == (1, 2)
        for name in LLM_MODELS:
            lm = build_causal_lm(name, seed=0)
            out = lm(np.zeros((1, 4), dtype=int))
            assert out.shape == (1, 4, lm.config.vocab_size)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(66.67, abs=0.1)

    def test_matthews_perfect_and_random(self):
        labels = np.array([0, 1] * 20)
        assert matthews_corrcoef(labels, labels) == 100.0
        assert matthews_corrcoef(1 - labels, labels) == -100.0

    def test_pearson(self):
        x = np.arange(10.0)
        assert pearson_corrcoef(x, 2 * x + 1) == pytest.approx(100.0)
        assert pearson_corrcoef(x, -x) == pytest.approx(-100.0)

    def test_f1(self):
        assert f1_score(np.array([1, 1, 0]), np.array([1, 0, 0])) == pytest.approx(66.67, abs=0.1)

    def test_span_metrics(self):
        pred = [(1, 3), (5, 6)]
        gold = [(1, 3), (0, 1)]
        assert exact_match(pred, gold) == 50.0
        assert span_f1(pred, gold) == pytest.approx(50.0)

    def test_perplexity_cap(self):
        assert perplexity_from_nll(1000.0) == pytest.approx(1e9, rel=1e-6)
        assert perplexity_from_nll(0.0) == 1.0


class TestDatasets:
    def test_glue_dataset_shapes_and_determinism(self):
        model = build_classifier("bert-base", 2, seed=0)
        a = make_glue_dataset(GLUE_TASKS["SST-2"], model, 96, num_examples=16, seq_len=8,
                              seed=3, oversample=2)
        b = make_glue_dataset(GLUE_TASKS["SST-2"], model, 96, num_examples=16, seq_len=8,
                              seed=3, oversample=2)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.num_examples == 16

    def test_fp32_model_scores_well_on_its_own_dataset(self):
        model = build_classifier("bert-base", 2, seed=0)
        ds = make_glue_dataset(GLUE_TASKS["SST-2"], model, model.config.vocab_size,
                               num_examples=32, seq_len=16, seed=1, oversample=4)
        assert evaluate_classifier(model, ds) > 80.0

    def test_regression_task_labels_are_float(self):
        model = build_classifier("bert-base", 1, seed=0)
        ds = make_glue_dataset(GLUE_TASKS["STS-B"], model, model.config.vocab_size,
                               num_examples=16, seq_len=8, seed=1, oversample=2)
        assert ds.labels.dtype == np.float64

    def test_squad_dataset_and_eval(self):
        model = build_span_model("bert-base", seed=0)
        ds = make_squad_dataset("squad-v1.1", model, model.config.vocab_size,
                                num_examples=16, seq_len=16, seed=1)
        f1, em = evaluate_span_model(model, ds)
        assert 0.0 <= em <= f1 <= 100.0
        assert f1 > 60.0

    def test_unknown_squad_variant(self):
        model = build_span_model("bert-base", seed=0)
        with pytest.raises(ValueError):
            make_squad_dataset("squad-v3", model, 96)

    def test_lm_dataset_and_perplexity(self):
        lm = build_causal_lm("gpt2-xl", seed=0)
        ds = make_lm_dataset("wikitext", lm, lm.config.vocab_size, num_sequences=4, seq_len=16, seed=1)
        ppl = evaluate_perplexity(lm, ds)
        assert 1.0 <= ppl < lm.config.vocab_size

    def test_unknown_corpus(self):
        lm = build_causal_lm("gpt2-xl", seed=0)
        with pytest.raises(ValueError):
            make_lm_dataset("the-pile", lm, lm.config.vocab_size)
