"""Document QA pipeline: chunking, aggregation, confidence floors, grading."""

import numpy as np
import pytest

from repro.serve.engine import ServingEngine
from repro.serve.gateway import Gateway, GatewayConfig, TenantConfig
from repro.serve.kvcache import KVCacheConfig
from repro.serve.repository import ModelRepository
from repro.serve.requests import ServingError, WorkloadFamily
from repro.workloads.docqa import (
    DocQAPipeline,
    ExpectedAnswer,
    Question,
    chunk_document,
    run_harness,
)


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("bert-base", WorkloadFamily.SPAN)
    return repository


def make_pipeline(repo, **kwargs):
    config = GatewayConfig(tenants=(
        TenantConfig(name="docqa", api_key="key-d", max_concurrent=64),
    ))
    engine = ServingEngine(
        repo,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        num_slots=2,
        admission=config.admission_policy(),
        health=config.health_config(),
    )
    gateway = Gateway(engine, config)
    return DocQAPipeline(gateway, "key-d", **kwargs)


def make_inputs(doc_len=120, num_questions=3, seed=42):
    rng = np.random.default_rng(seed)
    document = [int(t) for t in rng.integers(0, 96, size=doc_len)]
    questions = [
        Question(f"q{i}", tuple(int(t) for t in rng.integers(0, 96, size=6)))
        for i in range(num_questions)
    ]
    return document, questions


class TestChunking:
    def test_windows_cover_document_with_overlap(self):
        chunks = chunk_document(list(range(100)), chunk_tokens=40, overlap=10)
        assert chunks[0][0] == 0
        # Successive windows share `overlap` tokens.
        assert chunks[1][0] == 30
        covered = set()
        for offset, window in chunks:
            covered.update(range(offset, offset + len(window)))
        assert covered == set(range(100))

    def test_short_document_single_chunk(self):
        chunks = chunk_document([1, 2, 3], chunk_tokens=10)
        assert chunks == [(0, (1, 2, 3))]

    def test_validation(self):
        with pytest.raises(ServingError):
            chunk_document([], 10)
        with pytest.raises(ServingError):
            chunk_document([1], 0)
        with pytest.raises(ServingError):
            chunk_document([1], 4, overlap=4)


class TestPipeline:
    def test_every_question_gets_an_answer_per_chunk(self, repo):
        document, questions = make_inputs()
        pipeline = make_pipeline(repo, chunk_tokens=48, overlap=8)
        results = pipeline.ask(questions, document)
        num_chunks = len(chunk_document(document, 48, 8))
        for question in questions:
            result = results[question.question_id]
            assert len(result.chunk_answers) == num_chunks
            assert result.answer is not None
            assert 0.0 <= result.confidence <= 1.0
            start, end = result.span
            assert 0 <= start <= end < len(document)

    def test_deterministic_across_runs(self, repo):
        document, questions = make_inputs()
        first = make_pipeline(repo).ask(questions, document)
        second = make_pipeline(repo).ask(questions, document)
        for qid in first:
            assert first[qid].span == second[qid].span
            assert first[qid].confidence == pytest.approx(
                second[qid].confidence, abs=0.0
            )

    def test_winner_is_highest_confidence_in_document_span(self, repo):
        document, questions = make_inputs(num_questions=1)
        pipeline = make_pipeline(repo)
        result = pipeline.ask(questions, document)[questions[0].question_id]
        in_doc = [a for a in result.chunk_answers if not a.in_question]
        if in_doc:
            assert result.answer.confidence == max(
                a.confidence for a in in_doc
            )
            assert not result.answer.in_question

    def test_confidence_present_in_span_outputs(self, repo):
        """The engine's span family now reports normalized confidence."""
        engine = ServingEngine(repo, kv_cache_config=KVCacheConfig(bits=4))
        from repro.serve.requests import InferenceRequest

        request = InferenceRequest(
            "bert-base", WorkloadFamily.SPAN,
            np.arange(24, dtype=np.int64) % 96,
        )
        engine.submit(request)
        results = engine.step(force=True)
        output = results[0].output
        assert 0.0 < output["confidence"] <= 1.0
        assert output["start"] <= output["end"]


class TestHarness:
    def test_floors_from_reference_run_hold(self, repo):
        document, questions = make_inputs()
        reference = make_pipeline(repo).ask(questions, document)
        expectations = [
            ExpectedAnswer(
                question_id=qid,
                min_confidence=round(result.confidence * 0.9, 6),
                expected_span=result.span,
            )
            for qid, result in reference.items()
        ]
        report = run_harness(
            make_pipeline(repo), questions, expectations, document
        )
        assert report["passed"]
        for entry in report["questions"].values():
            assert entry["confidence_ok"] and entry["span_ok"]
            assert entry["confidence"] >= entry["min_confidence"]

    def test_unreachable_floor_fails_the_harness(self, repo):
        document, questions = make_inputs(num_questions=1)
        expectations = [
            ExpectedAnswer(questions[0].question_id, min_confidence=1.0)
        ]
        report = run_harness(
            make_pipeline(repo), questions, expectations, document
        )
        assert not report["passed"]
        entry = report["questions"][questions[0].question_id]
        assert not entry["confidence_ok"]

    def test_wrong_expected_span_fails(self, repo):
        document, questions = make_inputs(num_questions=1)
        expectations = [
            ExpectedAnswer(
                questions[0].question_id,
                min_confidence=0.0,
                expected_span=(0, 0) ,
            )
        ]
        reference = make_pipeline(repo).ask(questions, document)
        if reference[questions[0].question_id].span != (0, 0):
            report = run_harness(
                make_pipeline(repo), questions, expectations, document
            )
            assert not report["passed"]

    def test_missing_expectation_raises(self, repo):
        document, questions = make_inputs(num_questions=2)
        with pytest.raises(ServingError):
            run_harness(make_pipeline(repo), questions, [], document)
