"""Tests for outlier analysis (Fig. 2 / Table 2 machinery) and pruning ablations (Fig. 3)."""

import numpy as np
import pytest

from repro.core.analysis import (
    largest_outliers,
    model_pair_census,
    pair_census,
    tensor_outlier_stats,
)
from repro.core.pruning import (
    apply_to_tensors,
    clip_outliers,
    prune_random_normals,
    prune_victims,
)


def _tensor_with_outliers(seed=0, n=10000, ratio=0.004, scale=30.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, size=n)
    idx = rng.choice(n, int(n * ratio), replace=False)
    x[idx] *= scale
    return x


class TestOutlierStats:
    def test_gaussian_tensor_max_sigma_moderate(self):
        stats = tensor_outlier_stats(np.random.default_rng(0).normal(0, 1, 100000))
        assert 3.0 < stats.max_sigma < 7.0
        assert stats.frac_gt_3sigma < 0.01

    def test_outlier_tensor_max_sigma_large(self):
        stats = tensor_outlier_stats(_tensor_with_outliers())
        assert stats.max_sigma > 10.0

    def test_empty_and_constant_tensors(self):
        assert tensor_outlier_stats(np.array([])).num_elements == 0
        assert tensor_outlier_stats(np.full(10, 5.0)).max_sigma == 0.0

    def test_scale_invariance(self):
        x = _tensor_with_outliers(seed=1)
        a = tensor_outlier_stats(x)
        b = tensor_outlier_stats(x * 123.0)
        assert a.max_sigma == pytest.approx(b.max_sigma)
        assert a.frac_gt_3sigma == pytest.approx(b.frac_gt_3sigma)


class TestPairCensus:
    def test_fractions_sum_to_one(self):
        census = pair_census(_tensor_with_outliers())
        fractions = census.fractions
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_outlier_outlier_rare_for_random_placement(self):
        census = pair_census(_tensor_with_outliers(n=200000))
        assert census.fractions["outlier-outlier"] < 0.001
        assert census.fractions["normal-normal"] > 0.97

    def test_merge(self):
        a = pair_census(_tensor_with_outliers(seed=2))
        b = pair_census(_tensor_with_outliers(seed=3))
        merged = a.merged(b)
        assert merged.total == a.total + b.total

    def test_model_census(self):
        tensors = {"a": _tensor_with_outliers(seed=4), "b": _tensor_with_outliers(seed=5)}
        census = model_pair_census(tensors)
        assert census.total == sum(pair_census(t).total for t in tensors.values())

    def test_largest_outliers_positive(self):
        tensors = {"a": _tensor_with_outliers(seed=6)}
        top = largest_outliers(tensors, top_k=3)
        assert top.shape == (3,)
        assert np.all(top > 3.0)


class TestPruning:
    def test_clip_outliers_bounds_values(self):
        x = _tensor_with_outliers(seed=7)
        clipped = clip_outliers(x, 3.0)
        sigma = np.std(x - x.mean())
        assert np.max(np.abs(clipped - x.mean())) <= 3.0 * sigma + 1e-9

    def test_prune_victims_zeroes_partner_of_outliers(self):
        x = np.full(100, 0.1)
        x[10] = 30.0    # outlier in pair (10, 11) → victim is index 11
        x[55] = -30.0   # outlier in pair (54, 55) → victim is index 54
        pruned = prune_victims(x, 3.0)
        assert pruned[10] == 30.0 and pruned[11] == 0.0
        assert pruned[55] == -30.0 and pruned[54] == 0.0
        # Every other element is untouched.
        untouched = np.delete(pruned, [10, 11, 54, 55])
        np.testing.assert_array_equal(untouched, np.full(96, 0.1))

    def test_prune_victims_preserves_count(self):
        x = _tensor_with_outliers(seed=8)
        assert prune_victims(x).shape == x.shape

    def test_prune_random_normals_matches_outlier_count(self):
        x = _tensor_with_outliers(seed=9, n=20000)
        sigma = np.std(x - x.mean())
        n_outliers = int(np.sum(np.abs(x - x.mean()) > 3 * sigma))
        pruned = prune_random_normals(x, 3.0, np.random.default_rng(0))
        n_new_zeros = int(np.sum((pruned == 0) & (x != 0)))
        assert n_new_zeros == n_outliers

    def test_victim_energy_much_smaller_than_outlier_energy(self):
        """The Fig. 3 insight: what the victims carry is negligible next to the outliers."""
        x = _tensor_with_outliers(seed=10, n=50000)
        victim_loss = float(np.sum((x - prune_victims(x)) ** 2))
        clip_loss = float(np.sum((x - clip_outliers(x)) ** 2))
        assert victim_loss < clip_loss / 10.0

    def test_apply_to_tensors_dispatch(self):
        tensors = {"w": _tensor_with_outliers(seed=11)}
        for method in ("source", "clip-outlier", "prune-victim", "prune-normal"):
            out = apply_to_tensors(tensors, method)
            assert out["w"].shape == tensors["w"].shape
        with pytest.raises(ValueError):
            apply_to_tensors(tensors, "unknown")

    def test_source_is_identity(self):
        tensors = {"w": _tensor_with_outliers(seed=12)}
        np.testing.assert_array_equal(apply_to_tensors(tensors, "source")["w"], tensors["w"])
