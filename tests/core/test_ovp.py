"""Unit and property tests for the OVP pair codec (paper Algorithm 1, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.abfloat import ABFLOAT_E2M1, ABFLOAT_E4M3
from repro.core.dtypes import FLINT4, INT4, INT8
from repro.core.errors import EncodingError
from repro.core.ovp import OVPairCodec, PairKind


@pytest.fixture
def codec4():
    return OVPairCodec(INT4, ABFLOAT_E2M1, bias=2)


@pytest.fixture
def codec8():
    return OVPairCodec(INT8, ABFLOAT_E4M3, bias=4)


class TestPairClassification:
    def test_normal_normal(self, codec4):
        assert codec4.classify_pair(1.0, -3.0, threshold=7) == PairKind.NORMAL_NORMAL

    def test_outlier_normal(self, codec4):
        assert codec4.classify_pair(20.0, 2.0, threshold=7) == PairKind.OUTLIER_NORMAL
        assert codec4.classify_pair(2.0, -20.0, threshold=7) == PairKind.OUTLIER_NORMAL

    def test_outlier_outlier(self, codec4):
        assert codec4.classify_pair(20.0, -30.0, threshold=7) == PairKind.OUTLIER_OUTLIER


class TestEncodePair:
    def test_normal_pair_round_trip(self, codec4):
        c1, c2 = codec4.encode_pair(3.0, -5.0, threshold=7)
        assert codec4.decode_pair(c1, c2) == (3.0, -5.0)

    def test_left_outlier_gets_right_victim(self, codec4):
        c1, c2 = codec4.encode_pair(40.0, 2.0, threshold=7)
        assert c2 == INT4.identifier_code
        v1, v2 = codec4.decode_pair(c1, c2)
        assert v2 == 0.0           # victim pruned to zero
        assert v1 in ABFLOAT_E2M1.magnitude_values(2)

    def test_right_outlier_gets_left_victim(self, codec4):
        c1, c2 = codec4.encode_pair(2.0, -40.0, threshold=7)
        assert c1 == INT4.identifier_code
        v1, v2 = codec4.decode_pair(c1, c2)
        assert v1 == 0.0
        assert -v2 in ABFLOAT_E2M1.magnitude_values(2)

    def test_outlier_outlier_keeps_larger(self, codec4):
        c1, c2 = codec4.encode_pair(20.0, -50.0, threshold=7)
        v1, v2 = codec4.decode_pair(c1, c2)
        assert v1 == 0.0            # the smaller outlier becomes the victim
        assert v2 != 0.0

    def test_codes_fit_in_4_bits(self, codec4):
        for pair in [(3.0, 2.0), (40.0, 1.0), (1.0, -90.0), (50.0, 60.0)]:
            c1, c2 = codec4.encode_pair(*pair, threshold=7)
            assert 0 <= c1 <= 0xF and 0 <= c2 <= 0xF

    def test_normal_codes_never_equal_identifier(self, codec4):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = rng.uniform(-7, 7, size=2)
            c1, c2 = codec4.encode_pair(a, b, threshold=7)
            assert c1 != INT4.identifier_code
            assert c2 != INT4.identifier_code


class TestFakeQuantGrid:
    def test_matches_bit_accurate_path(self, codec4):
        rng = np.random.default_rng(1)
        grid = rng.normal(0, 2.5, size=512)
        grid[::50] *= 15
        fake = codec4.fake_quantize_grid(grid, threshold=7)
        packed = codec4.encode_tensor(grid, scale=1.0, threshold=7)
        decoded = codec4.decode_tensor(packed)
        np.testing.assert_allclose(fake, decoded, atol=1e-9)

    def test_odd_length_preserved(self, codec4):
        grid = np.array([1.0, 2.0, 30.0])
        out = codec4.fake_quantize_grid(grid, threshold=7)
        assert out.shape == (3,)

    def test_shape_preserved(self, codec4):
        grid = np.zeros((6, 10))
        assert codec4.fake_quantize_grid(grid, threshold=7).shape == (6, 10)

    def test_victims_are_zero(self, codec4):
        grid = np.array([40.0, 3.0, 2.0, -1.0])
        out = codec4.fake_quantize_grid(grid, threshold=7)
        assert out[1] == 0.0          # victim of the left outlier
        assert out[2] == 2.0 and out[3] == -1.0

    @given(st.lists(st.floats(min_value=-200, max_value=200), min_size=2, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_fake_quant_idempotent_on_normals(self, values):
        """Quantizing twice gives the same result as quantizing once."""
        codec = OVPairCodec(INT4, ABFLOAT_E2M1, bias=2)
        grid = np.asarray(values, dtype=np.float64)
        once = codec.fake_quantize_grid(grid, threshold=7)
        twice = codec.fake_quantize_grid(once, threshold=7)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestPackedTensor:
    def test_memory_is_aligned_half_byte_per_element(self, codec4):
        tensor = np.random.default_rng(2).normal(0, 1, size=(32, 32))
        packed = codec4.encode_tensor(tensor, scale=0.5, threshold=7)
        # 4-bit OVP: exactly one byte per pair, no side tables.
        assert packed.nbytes == tensor.size // 2

    def test_8bit_packing_one_byte_per_element(self, codec8):
        tensor = np.random.default_rng(3).normal(0, 20, size=256)
        packed = codec8.encode_tensor(tensor, scale=1.0, threshold=127)
        assert packed.nbytes == tensor.size

    def test_round_trip_error_bounded_by_scale(self, codec4):
        rng = np.random.default_rng(4)
        tensor = rng.normal(0, 1.0, size=1000)
        scale = 3.0 * np.std(tensor) / 7.0
        packed = codec4.encode_tensor(tensor, scale=scale, threshold=7)
        decoded = codec4.decode_tensor(packed)
        normal_mask = np.abs(tensor / scale) <= 7
        assert np.max(np.abs(decoded[normal_mask] - tensor[normal_mask])) <= scale

    def test_invalid_scale_raises(self, codec4):
        with pytest.raises(EncodingError):
            codec4.encode_tensor(np.ones(4), scale=0.0, threshold=7)

    def test_mismatched_widths_rejected(self):
        with pytest.raises(EncodingError):
            OVPairCodec(INT4, ABFLOAT_E4M3, bias=4)

    def test_flint4_codec_round_trip(self):
        codec = OVPairCodec(FLINT4, ABFLOAT_E2M1, bias=3)
        grid = np.array([1.0, 16.0, 40.0, 2.0, -3.0, 6.0])
        packed = codec.encode_tensor(grid, scale=1.0, threshold=16)
        decoded = codec.decode_tensor(packed)
        assert decoded.shape == grid.shape
        # 40 is an outlier; its partner (2.0) becomes the victim.
        assert decoded[2] in ABFLOAT_E2M1.magnitude_values(3)
        assert decoded[3] == 0.0


class TestBatchCodecPaths:
    """encode_tensor_batch / decode_tensor_batch vs the single-tensor paths."""

    def test_decode_batch_matches_individual(self, codec4):
        rng = np.random.default_rng(0)
        tensors = [rng.normal(0, 2.0, size=(4, 8, 16)) for _ in range(5)]
        packed = [codec4.encode_tensor(t, 0.7 + 0.1 * i, 7.0) for i, t in enumerate(tensors)]
        stacked = codec4.decode_tensor_batch(packed)
        assert stacked.shape == (5, 4, 8, 16)
        for row, p in enumerate(packed):
            np.testing.assert_array_equal(stacked[row], codec4.decode_tensor(p))

    def test_decode_batch_padded_odd_streams(self, codec4):
        rng = np.random.default_rng(1)
        tensors = [rng.normal(0, 2.0, size=7) for _ in range(3)]
        packed = [codec4.encode_tensor(t, 1.0, 7.0) for t in tensors]
        assert all(p.padded for p in packed)
        stacked = codec4.decode_tensor_batch(packed)
        for row, p in enumerate(packed):
            np.testing.assert_array_equal(stacked[row], codec4.decode_tensor(p))

    def test_decode_batch_shape_mismatch_rejected(self, codec4):
        rng = np.random.default_rng(2)
        a = codec4.encode_tensor(rng.normal(size=8), 1.0, 7.0)
        b = codec4.encode_tensor(rng.normal(size=10), 1.0, 7.0)
        with pytest.raises(EncodingError):
            codec4.decode_tensor_batch([a, b])
        with pytest.raises(EncodingError):
            codec4.decode_tensor_batch([])

    def test_decode_batch_codec_mismatch_rejected(self, codec4, codec8):
        packed = codec8.encode_tensor(np.zeros(8), 1.0, 127.0)
        with pytest.raises(EncodingError):
            codec4.decode_tensor_batch([packed])

    def test_encode_batch_matches_individual(self, codec4):
        rng = np.random.default_rng(3)
        tensors = [rng.normal(0, 3.0, size=(2, 32)) for _ in range(4)]
        for t in tensors:
            t[0, ::5] *= 10.0
        scales = [0.5, 1.0, 1.5, 2.0]
        batch = codec4.encode_tensor_batch(tensors, scales, 7.0)
        for packed, tensor, scale in zip(batch, tensors, scales):
            single = codec4.encode_tensor(tensor, scale, 7.0)
            np.testing.assert_array_equal(packed.data, single.data)
            assert packed.scale == single.scale
            assert packed.shape == single.shape
            np.testing.assert_array_equal(
                codec4.decode_tensor(packed), codec4.decode_tensor(single)
            )

    def test_encode_batch_rejects_odd_sizes_and_bad_scales(self, codec4):
        with pytest.raises(EncodingError):
            codec4.encode_tensor_batch([np.zeros(7)], [1.0], 7.0)
        with pytest.raises(EncodingError):
            codec4.encode_tensor_batch([np.zeros(8)], [0.0], 7.0)
        with pytest.raises(EncodingError):
            codec4.encode_tensor_batch([np.zeros(8)], [1.0, 2.0], 7.0)
        with pytest.raises(EncodingError):
            codec4.encode_tensor_batch([], [], 7.0)
