"""Tests for the tensor-level OVP quantizer and its MSE threshold search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import QuantizationError
from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer, make_quantizer
from repro.quant.uniform import Int4Quantizer


def _outlier_tensor(seed=0, n=8192, outlier_every=512, outlier_scale=40.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1.0, size=n)
    x[::outlier_every] *= outlier_scale
    return x


class TestFitAndQuantize:
    def test_fit_required_before_scale(self):
        q = make_quantizer(4)
        with pytest.raises(QuantizationError):
            _ = q.scale

    def test_fit_sets_threshold_near_3_sigma(self):
        q = make_quantizer(4).fit(np.random.default_rng(0).normal(0, 1, 4096))
        assert 1.0 <= q.threshold_sigma <= 12.0

    def test_empty_tensor_rejected(self):
        with pytest.raises(QuantizationError):
            make_quantizer(4).fit(np.array([]))

    def test_quantize_preserves_shape_and_dtype(self):
        q = make_quantizer(4)
        x = _outlier_tensor().reshape(64, 128)
        out = q.quantize(x, fit=True)
        assert out.shape == x.shape

    def test_constant_tensor_handled(self):
        q = make_quantizer(4)
        out = q.quantize(np.full(16, 3.0), fit=True)
        assert out.shape == (16,)

    def test_olive_beats_int4_on_outlier_tensor(self):
        """The core claim: OVP handles outliers far better than uniform int4."""
        x = _outlier_tensor()
        olive = make_quantizer(4)
        olive_mse = olive.quantization_mse(x)
        int4_mse = Int4Quantizer().fit(x).quantization_mse(x)
        assert olive_mse < int4_mse / 3.0

    def test_8bit_quantizer_more_accurate_than_4bit(self):
        x = _outlier_tensor(seed=1)
        mse4 = make_quantizer(4).quantization_mse(x)
        mse8 = make_quantizer(8).quantization_mse(x)
        assert mse8 < mse4

    def test_invalid_bits_rejected(self):
        with pytest.raises(QuantizationError):
            make_quantizer(6)

    def test_invalid_bits_rejected_even_with_explicit_dtype(self):
        """bits is validated before the dtype default is derived."""
        with pytest.raises(QuantizationError):
            make_quantizer(bits=16, normal_dtype="int4")

    def test_bits_dtype_mismatch_rejected(self):
        with pytest.raises(QuantizationError):
            make_quantizer(bits=8, normal_dtype="int4")
        with pytest.raises(QuantizationError):
            make_quantizer(bits=4, normal_dtype="int8")

    def test_explicit_matching_dtype_accepted(self):
        q = make_quantizer(bits=4, normal_dtype="flint4")
        assert q.normal_dtype.name == "flint4"

    def test_flint4_variant(self):
        q = OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype="flint4"))
        x = _outlier_tensor(seed=2)
        assert q.quantization_mse(x) < np.var(x)


class TestEncodeDecode:
    def test_encode_decode_matches_fake_quant(self):
        x = _outlier_tensor(seed=3, n=2048)
        q = make_quantizer(4)
        fake = q.quantize(x, fit=True)
        decoded = q.decode(q.encode(x))
        np.testing.assert_allclose(decoded, fake, atol=1e-9)

    def test_encoded_size_is_half_byte_per_element(self):
        x = _outlier_tensor(seed=4, n=4096)
        q = make_quantizer(4)
        packed = q.encode(x)
        assert packed.nbytes == x.size // 2

    def test_8bit_encoded_size(self):
        x = _outlier_tensor(seed=5, n=1024)
        q = make_quantizer(8)
        packed = q.encode(x)
        assert packed.nbytes == x.size


class TestPairStatistics:
    def test_fractions_sum_to_one(self):
        q = make_quantizer(4)
        stats = q.pair_statistics(_outlier_tensor(seed=6))
        assert sum(stats.values()) == pytest.approx(1.0)

    def test_odd_length_pads_like_encode(self):
        """The trailing odd element is padded with a zero, not dropped."""
        x = np.array([1.0, 2.0, 50.0])  # the outlier lands in the padded pair
        q = make_quantizer(4)
        q.fit(_outlier_tensor(seed=9))
        stats = q.pair_statistics(x)
        assert sum(stats.values()) == pytest.approx(1.0)
        # Two pairs: (1, 2) normal-normal and (50, pad-zero) outlier-normal —
        # the dropped-element bug reported zero outlier-normal pairs here.
        assert stats["outlier-normal"] == pytest.approx(0.5)

    def test_empty_tensor_rejected(self):
        q = make_quantizer(4)
        q.fit(_outlier_tensor(seed=11))
        with pytest.raises(QuantizationError):
            q.pair_statistics(np.array([]))

    def test_statistics_match_encoded_stream_pair_count(self):
        x = _outlier_tensor(seed=10, n=1001)
        q = make_quantizer(4)
        q.fit(x)
        stats = q.pair_statistics(x)
        packed = q.encode(x)
        # 4-bit packing stores one pair per byte; the census must use the
        # same pair count as the encoded stream (the padded (size+1)//2, not
        # the dropped size//2), so fraction × stream-pairs are whole pairs.
        n_pairs = packed.nbytes
        assert n_pairs == (x.size + 1) // 2
        counts = {kind: fraction * n_pairs for kind, fraction in stats.items()}
        for count in counts.values():
            assert count == pytest.approx(round(count), abs=1e-9)
        assert sum(counts.values()) == pytest.approx(n_pairs)

    def test_outlier_outlier_pairs_rare(self):
        """Paper Table 2: outlier-outlier pairs are well below 1%."""
        q = make_quantizer(4)
        stats = q.pair_statistics(_outlier_tensor(seed=7))
        assert stats["outlier-outlier"] < 0.01
        assert stats["normal-normal"] > 0.9


class TestPerChannel:
    def test_per_channel_pair_statistics_use_channel_scales(self):
        """Each channel is classified against its own scale, not channel 0's."""
        rng = np.random.default_rng(13)
        x = np.stack([rng.normal(0, 0.01, 256), rng.normal(0, 1.0, 256)])
        q = OVPTensorQuantizer(OVPQuantizerConfig(per_channel_axis=0))
        q.fit(x)
        stats = q.pair_statistics(x)
        assert sum(stats.values()) == pytest.approx(1.0)
        # With channel-0's tiny scale applied globally, channel 1 would be
        # ~50% outlier-outlier; per-channel scaling keeps the census sane.
        assert stats["outlier-outlier"] < 0.01
        assert stats["normal-normal"] > 0.9

    def test_per_channel_encode_rejected(self):
        rng = np.random.default_rng(14)
        x = rng.normal(0, 1, size=(4, 64))
        q = OVPTensorQuantizer(OVPQuantizerConfig(per_channel_axis=0))
        q.fit(x)
        with pytest.raises(QuantizationError):
            q.encode(x)

    def test_per_channel_quantization(self):
        rng = np.random.default_rng(8)
        x = rng.normal(0, 1, size=(8, 256))
        x[3] *= 50.0  # one channel with a wildly different scale
        per_channel = OVPTensorQuantizer(OVPQuantizerConfig(per_channel_axis=0))
        per_channel.fit(x)
        out = per_channel.quantize(x)
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))
        # One scale per channel, and the amplified channel gets a larger scale.
        scales = np.asarray(per_channel.scale).ravel()
        assert scales.shape == (8,)
        assert scales[3] > 5 * np.median(np.delete(scales, 3))


class TestPropertyBased:
    @given(
        st.integers(min_value=2, max_value=256),
        st.floats(min_value=0.1, max_value=10.0),
        st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_bounded(self, n, sigma, seed):
        """Normal-range error is bounded by one grid step; no NaNs ever appear."""
        rng = np.random.default_rng(seed)
        x = rng.normal(0, sigma, size=n)
        q = make_quantizer(4)
        out = q.quantize(x, fit=True)
        assert np.all(np.isfinite(out))
        scale = float(np.asarray(q.scale).ravel()[0])
        normal_mask = np.abs(x / scale) <= 7
        if np.any(normal_mask):
            # A normal value is either rounded (error ≤ one grid step) or, when it
            # sits next to an outlier, pruned as a victim (error = its own magnitude).
            errors = np.abs(out[normal_mask] - x[normal_mask])
            bound = np.maximum(scale, np.abs(x[normal_mask])) + 1e-9
            assert np.all(errors <= bound)


class TestVectorizedFitSweep:
    """The stacked candidate sweep must match the per-candidate oracle."""

    @given(
        st.integers(min_value=2, max_value=4097),
        st.floats(min_value=0.1, max_value=8.0),
        st.integers(min_value=0, max_value=2 ** 16),
        st.sampled_from(["int4", "flint4", "int8"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_bitwise(self, n, sigma, seed, dtype):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, sigma, size=n)
        x[:: max(n // 8, 1)] *= 25.0
        q = OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype=dtype, search_points=9))
        assert q._fit_flat(x) == q._fit_flat_reference(x)

    def test_candidate_blocks_chunk_identically(self):
        x = _outlier_tensor(seed=3)
        q = OVPTensorQuantizer(OVPQuantizerConfig(search_points=24))
        full = q._fit_flat(x)
        q._SWEEP_BLOCK_ELEMENTS = x.size + 1  # force block size 1
        assert q._fit_flat(x) == full

    def test_oversized_tensors_fall_back_to_reference(self):
        x = _outlier_tensor(seed=4)
        q = OVPTensorQuantizer(OVPQuantizerConfig(search_points=6))
        uncapped = q._fit_flat(x)  # vectorized: x.size is below the cap
        q._SWEEP_BLOCK_ELEMENTS = x.size - 1
        # Over the cap the fallback must agree with the vectorized sweep.
        assert q._fit_flat(x) == uncapped

    def test_per_channel_fit_uses_vectorized_sweep(self):
        x = _outlier_tensor(seed=5, n=4096).reshape(8, 512)
        per_channel = OVPTensorQuantizer(
            OVPQuantizerConfig(search_points=8, per_channel_axis=0)
        ).fit(x)
        reference = OVPTensorQuantizer(OVPQuantizerConfig(search_points=8))
        for channel in range(8):
            scale, _, mse = reference._fit_flat_reference(x[channel])
            assert np.asarray(per_channel.scale).ravel()[channel] == scale
