"""Unit tests for the abfloat outlier data type (paper Sec. 3.3, Table 4, Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.abfloat import (
    ABFLOAT_E0M3,
    ABFLOAT_E1M2,
    ABFLOAT_E2M1,
    ABFLOAT_E3M0,
    ABFLOAT_E4M3,
    default_bias_for,
    get_abfloat,
)
from repro.core.errors import DecodingError, EncodingError


class TestE2M1Table4:
    """The 3-bit unsigned E2M1 values of paper Table 4 (bias = 0)."""

    def test_value_table(self):
        expected = {0b000: 0, 0b001: 3, 0b010: 4, 0b011: 6,
                    0b100: 8, 0b101: 12, 0b110: 16, 0b111: 24}
        for code, value in expected.items():
            assert ABFLOAT_E2M1.decode_magnitude(code, bias=0) == value

    def test_bias_2_range_matches_paper(self):
        # Paper Sec. 3.3: bias 2 extends E2M1 to {12, ..., 96}.
        mags = ABFLOAT_E2M1.magnitude_values(2)
        assert mags[0] == 12
        assert mags[-1] == 96

    def test_bias_3_range_matches_paper(self):
        # Paper Sec. 3.3: bias 3 extends the range to {24, ..., 192} for flint4.
        mags = ABFLOAT_E2M1.magnitude_values(3)
        assert mags[0] == 24
        assert mags[-1] == 192

    def test_worked_example_from_section_4_2(self):
        # Paper Sec. 4.2: with bias 2, the code 0101₂ decodes to 48.
        assert ABFLOAT_E2M1.decode(0b0101, bias=2) == 48

    def test_exponent_integer_pair(self):
        exp, integer = ABFLOAT_E2M1.exponent_integer_pair(0b0101, bias=2)
        assert (integer << exp) == 48


class TestEncoding:
    def test_encode_decode_round_trip_on_grid(self):
        for bias in (0, 2, 3):
            for mag in ABFLOAT_E2M1.magnitude_values(bias):
                for sign in (1, -1):
                    code = ABFLOAT_E2M1.encode(sign * mag, bias)
                    assert ABFLOAT_E2M1.decode(code, bias) == sign * mag

    def test_small_values_saturate_to_min_code(self):
        code = ABFLOAT_E2M1.encode(1.0, bias=2)
        assert ABFLOAT_E2M1.decode(code, bias=2) == 12

    def test_large_values_saturate_to_max(self):
        code = ABFLOAT_E2M1.encode(1e6, bias=2)
        assert ABFLOAT_E2M1.decode(code, bias=2) == 96

    def test_zero_codes_never_produced(self):
        # 0000 and 1000 are disabled for outliers (identifier conflict).
        for value in (0.0, 0.5, 20.0, -13.0, 1e9):
            code = ABFLOAT_E2M1.encode(value, bias=2)
            assert code & 0b0111 != 0

    def test_negative_sign_bit(self):
        code = ABFLOAT_E2M1.encode(-48, bias=2)
        assert code >> 3 == 1
        assert ABFLOAT_E2M1.decode(code, bias=2) == -48

    def test_out_of_range_code_raises(self):
        with pytest.raises(DecodingError):
            ABFLOAT_E2M1.decode(16, bias=0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(EncodingError):
            ABFLOAT_E2M1.encode_magnitude(-1.0, bias=0)

    @given(st.floats(min_value=1.0, max_value=3.0e4), st.integers(min_value=0, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_encode_is_near_nearest_grid_point(self, value, bias):
        """Algorithm 2 lands on a representable value within one grid step of the input."""
        grid = ABFLOAT_E2M1.magnitude_values(bias)
        code = ABFLOAT_E2M1.encode(value, bias)
        decoded = abs(ABFLOAT_E2M1.decode(code, bias))
        # The decoded value must be a representable magnitude...
        assert decoded in grid
        # ...and no further from the input than the best grid point times a
        # small slack for the algorithm's round-to-even behaviour on ties.
        best = grid[np.argmin(np.abs(grid - min(max(value, grid[0]), grid[-1])))]
        assert abs(decoded - value) <= abs(best - value) * 1.5 + 1e-9 or decoded == best


class TestConfigurations:
    def test_all_4bit_configs_have_4_bits(self):
        for config in (ABFLOAT_E0M3, ABFLOAT_E1M2, ABFLOAT_E2M1, ABFLOAT_E3M0):
            assert config.bits == 4

    def test_e4m3_has_8_bits(self):
        assert ABFLOAT_E4M3.bits == 8

    def test_registry(self):
        assert get_abfloat("E2M1") is ABFLOAT_E2M1
        with pytest.raises(EncodingError):
            get_abfloat("E5M2")

    def test_default_bias_int4(self):
        # Paper: bias 2 for int4 normals (max 7).
        assert default_bias_for(7, ABFLOAT_E2M1) == 2

    def test_default_bias_flint4(self):
        # Paper: bias 3 for flint4 normals (max 16).
        assert default_bias_for(16, ABFLOAT_E2M1) == 3

    def test_default_bias_starts_above_normal_range(self):
        for normal_max in (7.0, 16.0, 127.0):
            for config in (ABFLOAT_E2M1, ABFLOAT_E4M3):
                bias = default_bias_for(normal_max, config)
                assert config.min_magnitude(bias) > normal_max

    def test_mean_relative_error_zero_on_grid(self):
        grid = ABFLOAT_E2M1.magnitude_values(2)
        assert ABFLOAT_E2M1.mean_relative_error(grid, 2) == pytest.approx(0.0)

    def test_e2m1_beats_e3m0_on_moderate_outliers(self):
        """The Fig. 5 conclusion: E2M1 has lower error than the extreme layouts."""
        rng = np.random.default_rng(0)
        outliers = rng.uniform(20, 90, size=200)
        e2m1 = ABFLOAT_E2M1.mean_relative_error(outliers, default_bias_for(7, ABFLOAT_E2M1))
        e0m3 = ABFLOAT_E0M3.mean_relative_error(outliers, default_bias_for(7, ABFLOAT_E0M3))
        e3m0 = ABFLOAT_E3M0.mean_relative_error(outliers, default_bias_for(7, ABFLOAT_E3M0))
        assert e2m1 <= e0m3
        assert e2m1 <= e3m0
