"""Property-style round-trip tests pinning the vectorized codec.

Two invariants are enforced for random tensors across all normal data types,
odd and even lengths, and per-channel configurations:

* ``decode(encode(x)) == fake_quantize(x) * scale`` — the bit-packed path and
  the vectorized fake-quantization path agree exactly;
* the vectorized ``encode_tensor``/``decode_tensor`` are bit-identical to the
  scalar per-pair Algorithm 1 loops (``encode_tensor_scalar`` /
  ``decode_tensor_scalar``), which remain the bit-accuracy oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.abfloat import ABFLOAT_E2M1, ABFLOAT_E4M3
from repro.core.dtypes import FLINT4, INT4, INT8
from repro.core.ovp import OVPairCodec
from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer

CODEC_CONFIGS = {
    "int4": (INT4, ABFLOAT_E2M1, 2, 7.0),
    "flint4": (FLINT4, ABFLOAT_E2M1, 3, 16.0),
    "int8": (INT8, ABFLOAT_E4M3, 4, 127.0),
}


def make_codec(name):
    dtype, abf, bias, threshold = CODEC_CONFIGS[name]
    return OVPairCodec(dtype, abf, bias), threshold


def outlier_tensor(rng, size, spread):
    """Gaussian tensor with injected transformer-style outliers."""
    tensor = rng.normal(0.0, spread, size=size)
    heavy = rng.random(size) < 0.05
    tensor[heavy] *= 30.0
    extreme = rng.random(size) < 0.01
    tensor[extreme] *= 4000.0  # beyond the accumulator clip
    return tensor


class TestRoundTripEqualsFakeQuantize:
    @pytest.mark.parametrize("name", sorted(CODEC_CONFIGS))
    @pytest.mark.parametrize("size", [1, 2, 3, 17, 256, 1001])
    def test_decode_encode_matches_fake_quantize(self, name, size):
        codec, threshold = make_codec(name)
        rng = np.random.default_rng(size * 13 + len(name))
        tensor = outlier_tensor(rng, size, threshold / 3.0)
        scale = 0.37
        decoded = codec.decode_tensor(codec.encode_tensor(tensor, scale, threshold))
        expected = codec.fake_quantize_grid(tensor / scale, threshold) * scale
        np.testing.assert_allclose(decoded, expected, atol=1e-9)

    @pytest.mark.parametrize("name", sorted(CODEC_CONFIGS))
    def test_round_trip_preserves_shape(self, name):
        codec, threshold = make_codec(name)
        tensor = np.random.default_rng(0).normal(0, 1, size=(5, 7))  # odd row count
        decoded = codec.decode_tensor(codec.encode_tensor(tensor, 1.0, threshold))
        assert decoded.shape == (5, 7)

    @pytest.mark.parametrize("name", sorted(CODEC_CONFIGS))
    def test_invariant_holds_at_exact_abfloat_midpoints(self, name):
        """Midpoints between representable outliers (e.g. 14 on the int4/E2M1
        grid {12, 16, 24, ...}) must round the same way in both paths —
        Algorithm 2's mantissa rounding, not an independent nearest search."""
        codec, threshold = make_codec(name)
        mags = codec._outlier_grid
        midpoints = (mags[:-1] + mags[1:]) / 2.0
        tensor = np.concatenate([midpoints, -midpoints, np.zeros(1)])
        decoded = codec.decode_tensor(codec.encode_tensor(tensor, 1.0, threshold))
        expected = codec.fake_quantize_grid(tensor, threshold)
        np.testing.assert_allclose(decoded, expected, atol=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=-500.0, max_value=500.0), min_size=1, max_size=65
        ),
        scale=st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip_int4(self, values, scale):
        codec, threshold = make_codec("int4")
        tensor = np.asarray(values, dtype=np.float64)
        decoded = codec.decode_tensor(codec.encode_tensor(tensor, scale, threshold))
        expected = codec.fake_quantize_grid(tensor / scale, threshold) * scale
        np.testing.assert_allclose(decoded, expected, atol=1e-9)


class TestVectorizedMatchesScalarOracle:
    @pytest.mark.parametrize("name", sorted(CODEC_CONFIGS))
    @pytest.mark.parametrize("size", [1, 2, 3, 64, 255, 1024])
    def test_encode_bits_identical(self, name, size):
        codec, threshold = make_codec(name)
        rng = np.random.default_rng(size * 7 + len(name))
        tensor = outlier_tensor(rng, size, threshold / 3.0)
        fast = codec.encode_tensor(tensor, 0.61, threshold)
        oracle = codec.encode_tensor_scalar(tensor, 0.61, threshold)
        np.testing.assert_array_equal(fast.data, oracle.data)
        assert fast.padded == oracle.padded
        assert fast.shape == oracle.shape

    @pytest.mark.parametrize("name", sorted(CODEC_CONFIGS))
    @pytest.mark.parametrize("size", [2, 3, 64, 255])
    def test_decode_values_identical(self, name, size):
        codec, threshold = make_codec(name)
        rng = np.random.default_rng(size * 11 + len(name))
        tensor = outlier_tensor(rng, size, threshold / 3.0)
        packed = codec.encode_tensor(tensor, 1.0, threshold)
        np.testing.assert_array_equal(
            codec.decode_tensor(packed), codec.decode_tensor_scalar(packed)
        )

    @given(st.lists(st.floats(min_value=-300, max_value=300), min_size=1, max_size=33))
    @settings(max_examples=80, deadline=None)
    def test_property_bits_identical_int4(self, values):
        codec, threshold = make_codec("int4")
        tensor = np.asarray(values, dtype=np.float64)
        fast = codec.encode_tensor(tensor, 1.0, threshold)
        oracle = codec.encode_tensor_scalar(tensor, 1.0, threshold)
        np.testing.assert_array_equal(fast.data, oracle.data)
        np.testing.assert_array_equal(
            codec.decode_tensor(fast), codec.decode_tensor_scalar(oracle)
        )


class TestQuantizerRoundTrip:
    @pytest.mark.parametrize("dtype_name", ["int4", "flint4", "int8"])
    @pytest.mark.parametrize("size", [63, 4096])
    def test_quantizer_encode_decode_equals_quantize(self, dtype_name, size):
        quantizer = OVPTensorQuantizer(OVPQuantizerConfig(normal_dtype=dtype_name))
        rng = np.random.default_rng(size)
        tensor = outlier_tensor(rng, size, 1.0)
        quantizer.fit(tensor)
        decoded = quantizer.decode(quantizer.encode(tensor))
        np.testing.assert_allclose(decoded, quantizer.quantize(tensor), atol=1e-9)

    def test_per_channel_quantize_matches_per_slice_codec(self):
        config = OVPQuantizerConfig(normal_dtype="int4", per_channel_axis=0)
        quantizer = OVPTensorQuantizer(config)
        rng = np.random.default_rng(5)
        tensor = outlier_tensor(rng, 6 * 33, 1.0).reshape(6, 33)  # odd channel length
        quantizer.fit(tensor)
        quantized = quantizer.quantize(tensor)
        scales = np.asarray(quantizer.scale).ravel()
        threshold = quantizer.normal_dtype.max_value
        for c in range(tensor.shape[0]):
            codec = quantizer.codec
            packed = codec.encode_tensor(tensor[c], scales[c], threshold)
            decoded = codec.decode_tensor(packed)
            np.testing.assert_allclose(decoded, quantized[c], atol=1e-9)
