"""Unit tests for the normal-value data types (paper Table 3)."""

import numpy as np
import pytest

from repro.core.dtypes import FLINT4, INT4, INT8, get_normal_dtype
from repro.core.errors import DecodingError, EncodingError


class TestInt4:
    def test_value_range_matches_paper_table3(self):
        assert INT4.values.min() == -7
        assert INT4.values.max() == 7
        assert len(INT4.values) == 15  # -7..7, no -8

    def test_identifier_is_1000(self):
        assert INT4.identifier_code == 0b1000

    def test_identifier_not_a_valid_code(self):
        with pytest.raises(DecodingError):
            INT4.decode(0b1000)

    def test_encode_decode_round_trip(self):
        for value in INT4.values:
            assert INT4.decode(INT4.encode(float(value))) == value

    def test_quantize_rounds_to_nearest(self):
        assert INT4.quantize(np.array([2.4]))[0] == 2
        assert INT4.quantize(np.array([2.6]))[0] == 3
        assert INT4.quantize(np.array([-6.7]))[0] == -7

    def test_quantize_saturates(self):
        assert INT4.quantize(np.array([100.0]))[0] == 7
        assert INT4.quantize(np.array([-100.0]))[0] == -7

    def test_encode_rejects_unrepresentable(self):
        with pytest.raises(EncodingError):
            INT4.encode(2.5)

    def test_max_value(self):
        assert INT4.max_value == 7


class TestFlint4:
    def test_value_set_matches_paper_table3(self):
        expected = {0, 1, 2, 3, 4, 6, 8, 16, -1, -2, -3, -4, -6, -8, -16}
        assert set(FLINT4.values.tolist()) == expected

    def test_identifier_is_negative_zero_code(self):
        assert FLINT4.identifier_code == 0b1000

    def test_max_value(self):
        assert FLINT4.max_value == 16

    def test_round_trip_all_values(self):
        for value in FLINT4.values:
            assert FLINT4.decode(FLINT4.encode(float(value))) == value

    def test_quantize_prefers_nearest_grid_point(self):
        # 5 is equidistant from 4 and 6; either is acceptable, but 7 snaps to 6 or 8.
        assert FLINT4.quantize(np.array([7.2]))[0] in (6, 8)
        assert FLINT4.quantize(np.array([12.0]))[0] in (8, 16)


class TestInt8:
    def test_value_range_matches_paper_table3(self):
        assert INT8.values.min() == -127
        assert INT8.values.max() == 127
        assert len(INT8.values) == 255

    def test_identifier_is_10000000(self):
        assert INT8.identifier_code == 0b1000_0000

    def test_round_trip_sample(self):
        for value in (-127, -1, 0, 1, 100, 127):
            assert INT8.decode(INT8.encode(float(value))) == value


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_normal_dtype("int4") is INT4
        assert get_normal_dtype("flint4") is FLINT4
        assert get_normal_dtype("int8") is INT8

    def test_unknown_name_raises(self):
        with pytest.raises(EncodingError):
            get_normal_dtype("int3")

    def test_array_encode_decode(self):
        values = INT4.quantize(np.array([[1.2, -3.4], [6.9, 0.1]]))
        codes = INT4.encode_array(values)
        assert np.array_equal(INT4.decode_array(codes), values)
