"""Integration tests: model-level PTQ framework → task metrics (the paper's headline claims)."""

import numpy as np
import pytest

from repro.core.framework import SCHEMES, get_scheme, quantize_model, quantize_tensors
from repro.data.glue import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.data.lm import evaluate_perplexity, make_lm_dataset
from repro.models import build_causal_lm, build_classifier
from repro.nn.fakequant import iter_quantized_linears


@pytest.fixture(scope="module")
def bert_and_dataset():
    model = build_classifier("bert-base", num_classes=2, seed=0)
    dataset = make_glue_dataset(
        GLUE_TASKS["SST-2"], model, vocab_size=model.config.vocab_size,
        num_examples=48, seq_len=24, seed=1, oversample=12,
    )
    return model, dataset


class TestQuantizeModel:
    def test_linears_are_wrapped(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        quantized = quantize_model(model, get_scheme("olive-4bit"), dataset.calibration_batch())
        assert len(list(iter_quantized_linears(quantized))) > 10

    def test_original_model_untouched(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        before = model.state_dict()
        quantize_model(model, get_scheme("olive-4bit"), dataset.calibration_batch())
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_fp32_scheme_is_identity(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        clone = quantize_model(model, get_scheme("fp32"))
        np.testing.assert_allclose(clone(dataset.inputs[:4]), model(dataset.inputs[:4]))

    def test_activation_scheme_requires_calibration(self, bert_and_dataset):
        model, _ = bert_and_dataset
        with pytest.raises(ValueError):
            quantize_model(model, get_scheme("olive-4bit"), calibration_inputs=None)

    def test_all_registered_schemes_run(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        for name in SCHEMES:
            quantized = quantize_model(model, get_scheme(name), dataset.calibration_batch())
            logits = quantized(dataset.inputs[:4])
            assert logits.shape == (4, 2)
            assert np.all(np.isfinite(logits))

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            get_scheme("fp4")

    def test_quantize_tensors_helper(self):
        tensors = {"a": np.random.default_rng(0).normal(0, 1, 128)}
        out = quantize_tensors(tensors, "int8")
        assert out["a"].shape == (128,)


class TestPaperAccuracyShape:
    """The qualitative accuracy claims of Tables 6 and 9."""

    def test_olive_4bit_close_to_fp32_and_beats_baselines(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        fp32 = evaluate_classifier(model, dataset)
        scores = {}
        for name in ("olive-4bit", "int4", "ant-4bit", "os-4bit"):
            quantized = quantize_model(model, get_scheme(name), dataset.calibration_batch())
            scores[name] = evaluate_classifier(quantized, dataset)
        # OliVe 4-bit stays within a few points of full precision...
        assert scores["olive-4bit"] >= fp32 - 12.0
        # ...and clearly beats every other 4-bit PTQ baseline.
        assert scores["olive-4bit"] > scores["int4"]
        assert scores["olive-4bit"] > scores["ant-4bit"]
        assert scores["olive-4bit"] > scores["os-4bit"]

    def test_olive_8bit_matches_fp32(self, bert_and_dataset):
        model, dataset = bert_and_dataset
        fp32 = evaluate_classifier(model, dataset)
        quantized = quantize_model(model, get_scheme("olive-8bit"), dataset.calibration_batch())
        assert evaluate_classifier(quantized, dataset) >= fp32 - 3.0

    def test_llm_perplexity_ordering(self):
        """Table 9 shape on the OPT analogue: OliVe-8bit << int8; 4-bit baselines collapse."""
        lm = build_causal_lm("opt-6.7b", seed=0)
        dataset = make_lm_dataset("wikitext", lm, lm.config.vocab_size,
                                  num_sequences=6, seq_len=24, seed=1)
        fp32 = evaluate_perplexity(lm, dataset)
        ppl = {}
        for name in ("int8", "olive-8bit", "int4"):
            quantized = quantize_model(lm, get_scheme(name), dataset.calibration_batch())
            ppl[name] = evaluate_perplexity(quantized, dataset)
        assert ppl["olive-8bit"] < ppl["int8"]          # OliVe-8bit survives OPT's outliers
        assert ppl["olive-8bit"] < 20 * fp32            # and stays in a usable range
        assert ppl["int4"] > 10 * fp32                  # plain int4 collapses
