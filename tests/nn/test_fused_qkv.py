"""Fused QKV projection: greedy tokens identical to the unfused oracle.

Decode rounds project Q, K and V with one GEMM against a concatenated
``(hidden, 3·hidden)`` operand instead of three separate ``(hidden,
hidden)`` GEMMs.  The fused product computes the same dot products, but a
wider BLAS kernel may reorder the float accumulation by ~1 ulp, so the
contract is the serving one: **greedy tokens must be identical** to the
unfused path (kept as the oracle behind ``qkv_mode``) at both the toy and
the scaled tier, over fp32 and packed caches, for single-token and m-token
(verify-style) rounds.
"""

import numpy as np
import pytest

from repro.models.zoo import build_causal_lm
from repro.nn.attention import MultiHeadAttention
from repro.serve.kvcache import KVCacheConfig, cache_for_model

VOCAB = 96


@pytest.fixture(scope="module")
def toy():
    return build_causal_lm("gpt2-xl", seed=0)


@pytest.fixture(scope="module")
def scaled():
    return build_causal_lm("gpt2-xl-scaled", seed=0)


def greedy_rounds(model, prompts, config, mode, new_tokens):
    """Prefill then greedily decode ``new_tokens`` batched rounds."""
    prev = MultiHeadAttention.qkv_mode
    MultiHeadAttention.qkv_mode = mode
    try:
        caches, step = [], []
        for prompt in prompts:
            cache = cache_for_model(model, config)
            log_probs = model.log_probs_incremental(prompt[None], [cache])
            caches.append(cache)
            step.append(int(np.argmax(log_probs[0, -1])))
        generated = [[t] for t in step]
        for _ in range(new_tokens - 1):
            log_probs = model.log_probs_incremental(
                np.array(step)[:, None], caches, batched_rounds=True
            )
            step = [int(t) for t in log_probs[:, -1].argmax(axis=-1)]
            for seq, token in zip(generated, step):
                seq.append(token)
        return generated
    finally:
        MultiHeadAttention.qkv_mode = prev


def m_token_round(model, prompts, config, mode, width, seed):
    """One verify-style round of ``width`` tokens; returns per-slot argmax."""
    prev = MultiHeadAttention.qkv_mode
    MultiHeadAttention.qkv_mode = mode
    try:
        caches = []
        for prompt in prompts:
            cache = cache_for_model(model, config)
            model.log_probs_incremental(prompt[None], [cache])
            caches.append(cache)
        step = np.random.default_rng(seed).integers(
            0, VOCAB, size=(len(prompts), width)
        )
        log_probs = model.log_probs_incremental(
            step, caches, batched_rounds=True
        )
        return log_probs.argmax(axis=-1)
    finally:
        MultiHeadAttention.qkv_mode = prev


CONFIGS = [
    pytest.param(KVCacheConfig(bits=4, page_size=8, quantize=False), id="fp32"),
    pytest.param(KVCacheConfig(bits=4, page_size=8), id="packed4"),
]


class TestGreedyTokenIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_toy_tier(self, toy, config):
        rng = np.random.default_rng(5)
        prompts = [rng.integers(0, VOCAB, size=n) for n in (4, 19, 11, 30)]
        fused = greedy_rounds(toy, prompts, config, "fused", 10)
        unfused = greedy_rounds(toy, prompts, config, "unfused", 10)
        assert fused == unfused

    @pytest.mark.parametrize("config", CONFIGS)
    def test_scaled_tier(self, scaled, config):
        rng = np.random.default_rng(7)
        prompts = [rng.integers(0, VOCAB, size=n) for n in (9, 41, 23)]
        fused = greedy_rounds(scaled, prompts, config, "fused", 6)
        unfused = greedy_rounds(scaled, prompts, config, "unfused", 6)
        assert fused == unfused

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("tier", ["toy", "scaled"])
    def test_m_token_rounds(self, toy, scaled, tier, config):
        model = toy if tier == "toy" else scaled
        rng = np.random.default_rng(13)
        prompts = [rng.integers(0, VOCAB, size=n) for n in (6, 27, 14)]
        fused = m_token_round(model, prompts, config, "fused", 3, 13)
        unfused = m_token_round(model, prompts, config, "unfused", 3, 13)
        np.testing.assert_array_equal(fused, unfused)


class TestFusedOperandCache:
    def test_operands_cached_until_weights_swap(self, toy):
        attention = toy.backbone.layer_0.self_attention
        first = attention._fused_qkv_operands()
        assert first is attention._fused_qkv_operands()
        # Packing replaces the weight arrays wholesale; the fused operand
        # must rebuild when any source array identity changes.
        attention.q_proj.weight.data = attention.q_proj.weight.data.copy()
        rebuilt = attention._fused_qkv_operands()
        assert rebuilt is not first
        np.testing.assert_array_equal(rebuilt[0], first[0])
        np.testing.assert_array_equal(rebuilt[1], first[1])

    def test_fused_matches_separate_projections(self, toy):
        attention = toy.backbone.layer_0.self_attention
        weight_t, bias = attention._fused_qkv_operands()
        hidden = np.random.default_rng(3).standard_normal((2, 4, 64))
        fused = hidden @ weight_t + bias
        separate = np.concatenate(
            [
                attention.q_proj.forward(hidden),
                attention.k_proj.forward(hidden),
                attention.v_proj.forward(hidden),
            ],
            axis=-1,
        )
        np.testing.assert_allclose(fused, separate, rtol=1e-12, atol=1e-12)
