"""Round-scratch reuse property: persistent buffers are bitwise-clean.

The continuous-batching scheduler keeps one ``AttendScratch`` alive across
decode/verify rounds and hands it back to ``forward_incremental`` every
round.  Buffers persist while bucket shapes churn, so any stale byte that
leaked into a live lane would show up as a logits diff.  The property here
is the contract the scheduler relies on: a decode trajectory driven through
one persistent scratch is **bitwise identical** to the same trajectory run
with a fresh scratch per round, across changing bucket shapes, m-token
rounds, fp32 and packed caches.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.zoo import build_causal_lm
from repro.nn.attention import AttendScratch
from repro.serve.kvcache import KVCacheConfig, cache_for_model

VOCAB = 96


@pytest.fixture(scope="module")
def model():
    return build_causal_lm("gpt2-xl", seed=0)


def run_rounds(model, prompts, round_widths, config, seed, scratch):
    """Prefill ``prompts`` then drive ``len(round_widths)`` batched rounds.

    Each round feeds ``round_widths[i]`` fresh tokens per sequence (an
    m-token verify-style round when > 1).  Returns the per-round logits.
    """
    caches = []
    for prompt in prompts:
        cache = cache_for_model(model, config)
        model.log_probs_incremental(prompt[None], [cache])
        caches.append(cache)
    rng = np.random.default_rng(seed)
    outputs = []
    for width in round_widths:
        step = rng.integers(0, VOCAB, size=(len(prompts), width))
        outputs.append(
            model.log_probs_incremental(
                step, caches, batched_rounds=True, scratch=scratch
            )
        )
    return outputs


class TestPersistentScratchBitwise:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=20), min_size=2, max_size=5
        ),
        round_widths=st.lists(
            st.integers(min_value=1, max_value=3), min_size=2, max_size=5
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        quantize=st.booleans(),
    )
    def test_rounds_match_fresh_scratch(
        self, model, lengths, round_widths, seed, quantize
    ):
        rng = np.random.default_rng(seed)
        prompts = [rng.integers(0, VOCAB, size=n) for n in lengths]
        config = KVCacheConfig(bits=4, page_size=8, quantize=quantize)
        persistent = AttendScratch()
        reused = run_rounds(
            model, prompts, round_widths, config, seed, persistent
        )
        fresh = run_rounds(model, prompts, round_widths, config, seed, None)
        for got, want in zip(reused, fresh):
            np.testing.assert_array_equal(got, want)

    def test_shrinking_and_growing_buckets(self, model):
        """Alternate wide and narrow rounds so buffers shrink then regrow."""
        rng = np.random.default_rng(11)
        prompts = [rng.integers(0, VOCAB, size=n) for n in (3, 17, 9, 26)]
        config = KVCacheConfig(bits=4, page_size=4)
        widths = [3, 1, 2, 1, 3]
        reused = run_rounds(model, prompts, widths, config, 11, AttendScratch())
        fresh = run_rounds(model, prompts, widths, config, 11, None)
        for got, want in zip(reused, fresh):
            np.testing.assert_array_equal(got, want)


class TestScratchBufferSemantics:
    def test_buffer_reused_for_same_key_and_shape(self):
        scratch = AttendScratch()
        first = scratch.buffer("qkv", (2, 3))
        scratch.begin_round()
        assert scratch.buffer("qkv", (2, 3)) is first
        # A shape change must hand back a different (correctly sized) array.
        grown = scratch.buffer("qkv", (4, 3))
        assert grown.shape == (4, 3)
        assert grown is not first

    def test_begin_round_clears_masks_only(self):
        scratch = AttendScratch()
        mask = scratch.mask("bucket", lambda: np.zeros((5, 5)))
        pads = scratch.pads("bucket", (2, 4, 5, 16))
        buf = scratch.buffer("scores", (2, 5))
        scratch.begin_round()
        assert scratch._masks == {}
        assert scratch.pads("bucket", (2, 4, 5, 16)) is pads
        assert scratch.buffer("scores", (2, 5)) is buf
        # Masks encode per-round lengths, so they rebuild — not replay.
        rebuilt = scratch.mask("bucket", lambda: np.ones((5, 5)))
        assert rebuilt is not mask
