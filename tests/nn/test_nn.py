"""Tests for the NumPy transformer substrate (modules, layers, attention, stacks)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.fakequant import QuantizedLinear, iter_quantized_linears, set_calibration
from repro.nn.heads import ClassificationHead, LMHead, SpanHead
from repro.nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from repro.nn.module import Module, Parameter
from repro.nn.transformer import (
    TransformerDecoder,
    TransformerEncoder,
    TransformerEncoderDecoder,
)
from repro.quant import Int8Quantizer


class TestFunctional:
    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(0).normal(0, 3, size=(4, 7))
        np.testing.assert_allclose(F.softmax(x).sum(axis=-1), 1.0)

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(1).normal(0, 3, size=(5, 9))
        np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x), atol=1e-12)

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(2).normal(5, 3, size=(8, 16))
        out = F.layer_norm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_causal_mask_blocks_future(self):
        mask = F.causal_mask(4)
        assert mask[0, 3] == -np.inf and mask[3, 0] == 0.0

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert F.cross_entropy(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-6)

    def test_gelu_matches_relu_asymptotically(self):
        x = np.array([-10.0, 10.0])
        np.testing.assert_allclose(F.gelu(x), [0.0, 10.0], atol=1e-3)


class TestModuleSystem:
    def test_parameter_tracking(self):
        lin = Linear(4, 3)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules_and_state_dict(self):
        enc = TransformerEncoder(vocab_size=11, hidden_size=8, num_layers=2,
                                 num_heads=2, intermediate_size=16, max_positions=10)
        state = enc.state_dict()
        assert len(state) > 10
        assert sum(v.size for v in state.values()) == enc.num_parameters()
        enc.load_state_dict(state)  # round trip

    def test_load_state_dict_mismatch_raises(self):
        lin = Linear(4, 3)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": lin.weight.data})

    def test_set_submodule_replaces_child(self):
        enc = TransformerEncoder(vocab_size=11, hidden_size=8, num_layers=1,
                                 num_heads=2, intermediate_size=16, max_positions=10)
        new_linear = Linear(8, 8)
        enc.set_submodule("layer_0.attention.q_proj", new_linear)
        assert enc.get_submodule("layer_0.attention.q_proj") is new_linear

    def test_parameter_copy_shape_check(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.copy_(np.zeros(3))


class TestLayers:
    def test_linear_shapes(self):
        lin = Linear(6, 4)
        out = lin(np.zeros((2, 5, 6)))
        assert out.shape == (2, 5, 4)

    def test_linear_gemm_shape(self):
        assert Linear(6, 4).gemm_shape(32) == (32, 6, 4)

    def test_embedding_lookup_and_bounds(self):
        emb = Embedding(10, 4)
        assert emb(np.array([[0, 9]])).shape == (1, 2, 4)
        with pytest.raises(ValueError):
            emb(np.array([10]))

    def test_positional_embedding_bounds(self):
        pos = PositionalEmbedding(8, 4)
        assert pos(8).shape == (8, 4)
        with pytest.raises(ValueError):
            pos(9)

    def test_layernorm_module(self):
        ln = LayerNorm(8)
        out = ln(np.random.default_rng(0).normal(0, 4, size=(3, 8)))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)


class TestAttentionAndStacks:
    def test_attention_output_shape(self):
        attn = MultiHeadAttention(8, 2)
        out = attn(np.random.default_rng(0).normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_causal_attention_ignores_future_tokens(self):
        attn = MultiHeadAttention(8, 2, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(1, 6, 8))
        out_full = attn(x, causal=True)
        x_changed = x.copy()
        x_changed[0, 5] += 10.0  # only the last position changes
        out_changed = attn(x_changed, causal=True)
        np.testing.assert_allclose(out_full[0, :5], out_changed[0, :5], atol=1e-9)

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_encoder_decoder_and_heads(self):
        tokens = np.random.default_rng(3).integers(0, 11, size=(2, 6))
        enc = TransformerEncoder(11, 8, 1, 2, 16, 10)
        dec = TransformerDecoder(11, 8, 1, 2, 16, 10)
        encdec = TransformerEncoderDecoder(11, 8, 1, 2, 16, 10)
        assert enc(tokens).shape == (2, 6, 8)
        assert dec(tokens).shape == (2, 6, 8)
        assert encdec(tokens).shape == (2, 6, 8)
        assert ClassificationHead(8, 3)(enc(tokens)).shape == (2, 3)
        start, end = SpanHead(8)(enc(tokens))
        assert start.shape == (2, 6) and end.shape == (2, 6)
        assert LMHead(8, 11)(dec(tokens)).shape == (2, 6, 11)


class TestFakeQuant:
    def test_quantized_linear_wraps_and_matches_roughly(self):
        lin = Linear(16, 8, rng=np.random.default_rng(4))
        x = np.random.default_rng(5).normal(size=(3, 16))
        wrapped = QuantizedLinear(lin, weight_quantizer=Int8Quantizer(),
                                  activation_quantizer=Int8Quantizer())
        wrapped.begin_calibration()
        wrapped(x)
        wrapped.end_calibration()
        out_q = wrapped(x)
        out_fp = lin(x)
        assert out_q.shape == out_fp.shape
        rel = np.linalg.norm(out_q - out_fp) / np.linalg.norm(out_fp)
        assert rel < 0.1

    def test_set_calibration_toggles_all(self):
        enc = TransformerEncoder(11, 8, 1, 2, 16, 10)
        enc.set_submodule("layer_0.attention.q_proj",
                          QuantizedLinear(Linear(8, 8), None, Int8Quantizer()))
        set_calibration(enc, True)
        assert all(m.calibrating for _, m in iter_quantized_linears(enc))
        set_calibration(enc, False)
        assert not any(m.calibrating for _, m in iter_quantized_linears(enc))
